//! Benchmark registry: lookup by name and per-set enumeration.

use grs_isa::Kernel;

use crate::{set1, set2, set3};

/// Which paper table a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchSet {
    /// Table II — register-limited.
    Set1,
    /// Table III — scratchpad-limited.
    Set2,
    /// Table IV — thread/block-limited.
    Set3,
}

/// Set-1 benchmarks in the paper's figure order.
pub fn set1_benchmarks() -> Vec<Kernel> {
    vec![
        set1::backprop(),
        set1::btree(),
        set1::hotspot(),
        set1::lib(),
        set1::mum(),
        set1::mri_q(),
        set1::sgemm(),
        set1::stencil(),
    ]
}

/// Short display names for Set-1, matching the paper's x-axis labels.
pub const SET1_NAMES: [&str; 8] = [
    "backprop", "b+tree", "hotspot", "LIB", "MUM", "mri-q", "sgemm", "stencil",
];

/// Set-2 benchmarks in the paper's figure order.
pub fn set2_benchmarks() -> Vec<Kernel> {
    vec![
        set2::conv1(),
        set2::conv2(),
        set2::lavamd(),
        set2::nw1(),
        set2::nw2(),
        set2::srad1(),
        set2::srad2(),
    ]
}

/// Short display names for Set-2.
pub const SET2_NAMES: [&str; 7] = ["CONV1", "CONV2", "lavaMD", "NW1", "NW2", "SRAD1", "SRAD2"];

/// Set-3 benchmarks in the paper's figure order.
pub fn set3_benchmarks() -> Vec<Kernel> {
    vec![
        set3::backprop_layerforward(),
        set3::bfs(),
        set3::gaussian(),
        set3::nn(),
    ]
}

/// Short display names for Set-3.
pub const SET3_NAMES: [&str; 4] = ["backprop", "BFS", "gaussian", "NN"];

/// All 19 benchmarks with their set tags.
pub fn all_benchmarks() -> Vec<(BenchSet, Kernel)> {
    set1_benchmarks()
        .into_iter()
        .map(|k| (BenchSet::Set1, k))
        .chain(set2_benchmarks().into_iter().map(|k| (BenchSet::Set2, k)))
        .chain(set3_benchmarks().into_iter().map(|k| (BenchSet::Set3, k)))
        .collect()
}

/// Look a benchmark up by its short display name (case-insensitive), or —
/// for names starting with `gen:` — build the generated kernel named by the
/// spec (`gen:<family>:<seed>[:<size>]`, see [`crate::gen`]). Set-3's
/// `backprop` is distinguished as `backprop-lf`.
pub fn benchmark(name: &str) -> Option<Kernel> {
    let n = name.to_ascii_lowercase();
    if n.starts_with("gen:") {
        return crate::gen::GenSpec::parse(&n).ok().map(|s| s.build());
    }
    let k = match n.as_str() {
        "backprop" => set1::backprop(),
        "b+tree" | "btree" => set1::btree(),
        "hotspot" => set1::hotspot(),
        "lib" => set1::lib(),
        "mum" => set1::mum(),
        "mri-q" | "mriq" => set1::mri_q(),
        "sgemm" => set1::sgemm(),
        "stencil" => set1::stencil(),
        "conv1" => set2::conv1(),
        "conv2" => set2::conv2(),
        "lavamd" => set2::lavamd(),
        "nw1" => set2::nw1(),
        "nw2" => set2::nw2(),
        "srad1" => set2::srad1(),
        "srad2" => set2::srad2(),
        "backprop-lf" => set3::backprop_layerforward(),
        "bfs" => set3::bfs(),
        "gaussian" => set3::gaussian(),
        "nn" => set3::nn(),
        _ => return None,
    };
    Some(k)
}

/// Canonicalize a scenario spec to the one stable spelling [`benchmark`]
/// documents: fixed names fold to lowercase with aliases resolved
/// (`BTREE` → `b+tree`), generator specs re-render through
/// [`crate::gen::GenSpec::scenario_name`] so defaults are made explicit
/// (`GEN:Bursty:7` → `gen:bursty:7:small`). Returns `None` exactly when
/// [`benchmark`] would. Two spellings with the same canonical form name the
/// same kernel, which is what lets a content-hashing sweep service treat
/// the canonical spec as part of a job's identity.
pub fn canonical_scenario(name: &str) -> Option<String> {
    let n = name.to_ascii_lowercase();
    if n.starts_with("gen:") {
        return crate::gen::GenSpec::parse(&n)
            .ok()
            .map(|s| s.scenario_name());
    }
    let canon = match n.as_str() {
        "b+tree" | "btree" => "b+tree",
        "mri-q" | "mriq" => "mri-q",
        "backprop" | "hotspot" | "lib" | "mum" | "sgemm" | "stencil" | "conv1" | "conv2"
        | "lavamd" | "nw1" | "nw2" | "srad1" | "srad2" | "backprop-lf" | "bfs" | "gaussian"
        | "nn" => n.as_str(),
        _ => return None,
    };
    Some(canon.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_19() {
        assert_eq!(all_benchmarks().len(), 19);
        assert_eq!(set1_benchmarks().len(), SET1_NAMES.len());
        assert_eq!(set2_benchmarks().len(), SET2_NAMES.len());
        assert_eq!(set3_benchmarks().len(), SET3_NAMES.len());
    }

    #[test]
    fn lookup_by_name() {
        for name in SET1_NAMES
            .iter()
            .chain(&SET2_NAMES)
            .chain(&["bfs", "gaussian", "nn"])
        {
            assert!(benchmark(name).is_some(), "{name}");
        }
        assert!(benchmark("backprop-lf").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn lookup_routes_generator_specs() {
        let k = benchmark("gen:mshr-thrash:42:small").expect("gen spec resolves");
        assert_eq!(k.name, "gen:mshr-thrash:42:small");
        // Same spec → identical kernel (the generator is pure).
        assert_eq!(benchmark("gen:mshr-thrash:42:small"), Some(k));
        // Size defaults to small; case-insensitive like the fixed names.
        assert_eq!(
            benchmark("gen:bursty:7"),
            benchmark("GEN:Bursty:7:SMALL"),
            "default size + case folding"
        );
        assert!(benchmark("gen:nope:1").is_none());
        assert!(benchmark("gen:bursty:notanumber").is_none());
    }

    #[test]
    fn canonicalization_folds_aliases_and_gen_defaults() {
        assert_eq!(canonical_scenario("BTREE").as_deref(), Some("b+tree"));
        assert_eq!(canonical_scenario("b+tree").as_deref(), Some("b+tree"));
        assert_eq!(canonical_scenario("MRIQ").as_deref(), Some("mri-q"));
        assert_eq!(canonical_scenario("Gaussian").as_deref(), Some("gaussian"));
        assert_eq!(
            canonical_scenario("GEN:Bursty:7").as_deref(),
            Some("gen:bursty:7:small"),
            "gen specs gain explicit defaults and lowercase"
        );
        assert_eq!(canonical_scenario("nope"), None);
        assert_eq!(canonical_scenario("gen:warp-yoga:1"), None);
        // Canonical forms are fixed points and always resolve.
        for name in ["btree", "MRIQ", "gen:MIXED:3133", "nw2"] {
            let canon = canonical_scenario(name).unwrap();
            assert_eq!(canonical_scenario(&canon).as_deref(), Some(canon.as_str()));
            assert_eq!(benchmark(&canon), benchmark(name), "{name}");
            assert!(benchmark(&canon).is_some());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all_benchmarks()
            .iter()
            .map(|(_, k)| k.name.clone())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 19);
    }
}
