//! # grs-workloads — synthetic models of the paper's benchmark suite
//!
//! The paper evaluates on 19 kernels from four suites (GPGPU-Sim, Rodinia,
//! CUDA-SDK, Parboil), split into three sets (Tables II–IV):
//!
//! * **Set-1** ([`set1`]): residency limited by **registers**;
//! * **Set-2** ([`set2`]): residency limited by **scratchpad**;
//! * **Set-3** ([`set3`]): residency limited by max threads or max blocks.
//!
//! We cannot ship the CUDA originals, so each benchmark is a *synthetic
//! model*: a kernel whose launch footprint (threads/block, registers/thread,
//! scratchpad/block) is copied **exactly** from the paper's tables — which
//! makes all occupancy/launch-plan results exact — and whose instruction mix
//! is engineered to reproduce the paper's qualitative description of that
//! benchmark (compute-bound vs memory-bound, working-set pressure on L1/L2,
//! barrier placement, which scratchpad offsets are touched). DESIGN.md
//! documents this substitution; each kernel's doc comment records the
//! behavioural contract it implements.

//!
//! Beyond the fixed 19, [`gen`] is a seeded random-kernel generator: named
//! stress-profile families (`gen:<family>:<seed>[:<size>]`) whose kernels
//! are pure functions of their spec — the workload frontend behind the
//! cross-engine differential harness and the `repro run gen:...` CLI.

pub mod gen;
pub mod set1;
pub mod set2;
pub mod set3;
pub mod suite;

pub use gen::{generate, pinned_corpus, Family, GenSpec, SizeClass};
pub use suite::{
    all_benchmarks, benchmark, canonical_scenario, set1_benchmarks, set2_benchmarks,
    set3_benchmarks, BenchSet,
};
