//! Seeded random-kernel generator: named stress-profile families.
//!
//! The hand-built Sets 1–3 model the paper's 19 benchmarks; this module
//! blows the scenario space open. Each **family** is a deterministic
//! function `(seed, size class) → Kernel` that draws a kernel's launch
//! footprint and instruction stream from a seeded xorshift stream, shaped
//! to stress one corner of the machine:
//!
//! * [`Family::PointerChase`] — chains of uncoalesced scatter loads with
//!   load-to-use dependences (MUM-style suffix-tree walks): latency-bound,
//!   many transactions per access.
//! * [`Family::Bursty`] — alternating memory bursts and long arithmetic
//!   phases: exercises the fast-forward engine's sleep/wake transitions and
//!   the schedulers' ability to overlap the phases of different warps.
//! * [`Family::BarrierHeavy`] — scratchpad traffic fenced by multiple
//!   block-wide barriers per iteration: stresses barrier bookkeeping and
//!   the scratchpad-sharing automaton's lock interleavings.
//! * [`Family::DivergentTile`] — two loop phases with very different
//!   working-set tiles and register windows: small-tile address arithmetic
//!   in a low register window, then wide-tile compute — the shape the
//!   paper's declaration-reordering pass targets.
//! * [`Family::MshrThrash`] — back-to-back wide scatter loads over a span
//!   far larger than the L2: drives the event memory model's finite MSHR
//!   tables and DRAM queues into sustained back-pressure
//!   (`mshr_full_stalls > 0` on the bench machine).
//! * [`Family::Mixed`] — a seeded composition of the other families'
//!   phases, one small loop per segment.
//!
//! Every generated kernel passes [`grs_isa::validate`] *by construction*
//! (the builder's `build()` re-validates), fits the Table I machine, and is
//! a pure function of its [`GenSpec`] — which is what lets the differential
//! harness (`tests/generated_differential.rs`) use the simulator's own
//! determinism contract as an oracle: the same kernel must produce
//! bit-identical `SimStats` across every engine, memory model, telemetry
//! setting and checkpoint cut.
//!
//! Specs have a stable string form, `gen:<family>:<seed>[:<size>]`
//! (e.g. `gen:pointer-chase:42:small`), accepted by
//! [`crate::benchmark`] and the `repro run` CLI.

use grs_isa::{GlobalPattern, Kernel, KernelBuilder};

/// Seeds of the pinned differential corpus: every family × these seeds is
/// exercised by `tests/generated_differential.rs` in CI. Chosen arbitrarily
/// and then **frozen** — changing them silently retires regression coverage.
pub const PINNED_SEEDS: [u64; 3] = [1, 42, 3133];

/// A stress-profile family (see the module docs for what each stresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Chained uncoalesced scatter loads.
    PointerChase,
    /// Alternating memory bursts and arithmetic phases.
    Bursty,
    /// Scratchpad traffic fenced by several barriers per iteration.
    BarrierHeavy,
    /// Two loop phases with contrasting tiles and register windows.
    DivergentTile,
    /// Wide scatter loads that exhaust finite MSHR/DRAM buffers.
    MshrThrash,
    /// Seeded composition of the other families' phases.
    Mixed,
}

impl Family {
    /// Every family, in stable order.
    pub const ALL: [Family; 6] = [
        Family::PointerChase,
        Family::Bursty,
        Family::BarrierHeavy,
        Family::DivergentTile,
        Family::MshrThrash,
        Family::Mixed,
    ];

    /// Stable kebab-case name used in spec strings and scenario labels.
    pub fn name(self) -> &'static str {
        match self {
            Family::PointerChase => "pointer-chase",
            Family::Bursty => "bursty",
            Family::BarrierHeavy => "barrier-heavy",
            Family::DivergentTile => "divergent-tile",
            Family::MshrThrash => "mshr-thrash",
            Family::Mixed => "mixed",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// How big a generated kernel is: grid blocks and loop trip counts scale
/// with the class, the instruction *shape* does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// A few blocks, short loops — differential-test sized.
    Small,
    /// A few waves on the Table I machine.
    Medium,
    /// Benchmark-suite sized grids.
    Large,
}

impl SizeClass {
    /// Every size class, in stable order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Stable name used in spec strings.
    pub fn name(self) -> &'static str {
        match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<SizeClass> {
        SizeClass::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Inclusive grid-blocks band.
    fn grid_band(self) -> (u64, u64) {
        match self {
            SizeClass::Small => (4, 10),
            SizeClass::Medium => (24, 56),
            SizeClass::Large => (96, 168),
        }
    }

    /// Multiplier applied to loop trip counts.
    fn trip_mult(self) -> u16 {
        match self {
            SizeClass::Small => 1,
            SizeClass::Medium => 2,
            SizeClass::Large => 4,
        }
    }
}

/// A fully-specified generated kernel: `(family, seed, size) → Kernel` is a
/// pure function ([`GenSpec::build`] twice yields identical kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GenSpec {
    /// Stress-profile family.
    pub family: Family,
    /// Generator seed; any value is legal.
    pub seed: u64,
    /// Size class (grid and trip-count scaling).
    pub size: SizeClass,
}

impl GenSpec {
    /// Spec for `family` at `seed`, [`SizeClass::Small`].
    pub fn new(family: Family, seed: u64) -> Self {
        GenSpec {
            family,
            seed,
            size: SizeClass::Small,
        }
    }

    /// Replace the size class.
    pub fn with_size(mut self, size: SizeClass) -> Self {
        self.size = size;
        self
    }

    /// Parse the stable string form `gen:<family>:<seed>[:<size>]`.
    pub fn parse(s: &str) -> Result<GenSpec, String> {
        let body = s
            .strip_prefix("gen:")
            .ok_or_else(|| format!("generator specs start with `gen:`, got `{s}`"))?;
        let mut parts = body.split(':');
        let family = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("`{s}` names no family"))?;
        let family = Family::from_name(family).ok_or_else(|| {
            let names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
            format!("unknown family `{family}` (families: {})", names.join(", "))
        })?;
        let seed = parts
            .next()
            .ok_or_else(|| format!("`{s}` carries no seed (expected gen:<family>:<seed>)"))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("seed `{seed}` is not a u64"))?;
        let size = match parts.next() {
            None => SizeClass::Small,
            Some(sz) => SizeClass::from_name(sz).ok_or_else(|| {
                format!("unknown size class `{sz}` (sizes: small, medium, large)")
            })?,
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing spec component `{extra}` in `{s}`"));
        }
        Ok(GenSpec { family, seed, size })
    }

    /// Stable scenario name, `gen:<family>:<seed>:<size>`; re-parses to
    /// `self`.
    pub fn scenario_name(&self) -> String {
        format!(
            "gen:{}:{}:{}",
            self.family.name(),
            self.seed,
            self.size.name()
        )
    }

    /// Generate the kernel.
    pub fn build(&self) -> Kernel {
        generate(self.family, self.seed, self.size)
    }
}

/// The pinned differential corpus: every family × [`PINNED_SEEDS`], small
/// size class. `tests/generated_differential.rs` asserts bit-identical
/// `SimStats` for each entry across every engine/memory/telemetry/
/// checkpoint combination.
pub fn pinned_corpus() -> Vec<GenSpec> {
    Family::ALL
        .into_iter()
        .flat_map(|f| PINNED_SEEDS.into_iter().map(move |s| GenSpec::new(f, s)))
        .collect()
}

/// xorshift64* stream; deterministic, no external entropy ever.
struct GenRng(u64);

impl GenRng {
    fn new(seed: u64) -> Self {
        // SplitMix64 finalizer over the raw seed so that nearby seeds (0,
        // 1, 2, ...) land in unrelated stream states; the `| 1` guards the
        // xorshift zero fixed point.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        GenRng((z ^ (z >> 31)) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from the inclusive band `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

/// Mix the family and size discriminants into the user seed so
/// `gen:bursty:7` and `gen:pointer-chase:7` differ beyond their shape
/// templates.
fn stream_for(family: Family, seed: u64, size: SizeClass) -> GenRng {
    let fam = Family::ALL.iter().position(|f| *f == family).unwrap() as u64;
    let sz = SizeClass::ALL.iter().position(|s| *s == size).unwrap() as u64;
    GenRng::new(seed ^ (fam.wrapping_mul(0x00FF_00FF_0000_0101)) ^ (sz << 56))
}

/// Draw a thread count: `warps` full warps, occasionally trimmed to a
/// partial final warp (exercises warp-granularity rounding).
fn draw_threads(rng: &mut GenRng, min_warps: u64, max_warps: u64) -> u32 {
    let warps = rng.range(min_warps, max_warps) as u32;
    let threads = warps * 32;
    if rng.chance(20) && threads > 32 {
        threads - rng.range(1, 16) as u32
    } else {
        threads
    }
}

/// Generate the `family` kernel for `(seed, size)`. Pure and total: every
/// `(family, seed, size)` triple yields a kernel that passes
/// [`grs_isa::validate`] and fits the Table I machine.
pub fn generate(family: Family, seed: u64, size: SizeClass) -> Kernel {
    let rng = &mut stream_for(family, seed, size);
    let (glo, ghi) = size.grid_band();
    let grid = rng.range(glo, ghi) as u32;
    let mult = size.trip_mult();
    let name = GenSpec { family, seed, size }.scenario_name();
    let b = match family {
        Family::PointerChase => pointer_chase(rng, &name, grid, mult),
        Family::Bursty => bursty(rng, &name, grid, mult),
        Family::BarrierHeavy => barrier_heavy(rng, &name, grid, mult),
        Family::DivergentTile => divergent_tile(rng, &name, grid, mult),
        Family::MshrThrash => mshr_thrash(rng, &name, grid, mult),
        Family::Mixed => mixed(rng, &name, grid, mult),
    };
    b.build()
}

fn pointer_chase(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 1, 2))
        .regs_per_thread(rng.range(12, 24) as u32)
        .grid_blocks(grid);
    let top = b.here();
    for _ in 0..rng.range(2, 3) {
        b = b
            .ld_global(GlobalPattern::scatter(
                rng.range(64, 512) as u32,
                rng.range(2, 8) as u8,
            ))
            .ialu(rng.range(1, 2) as u32);
    }
    b.loop_back(top, rng.range(6, 14) as u16 * mult)
        .st_global(GlobalPattern::Stream)
}

fn bursty(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 2, 4))
        .regs_per_thread(rng.range(16, 32) as u32)
        .grid_blocks(grid);
    let top = b.here();
    for _ in 0..rng.range(3, 6) {
        b = b.ld_global(GlobalPattern::Stream).ialu_independent(1);
    }
    b = b.ffma(rng.range(8, 16) as u32);
    if rng.chance(50) {
        b = b.sfu(rng.range(1, 2) as u32);
    }
    b.loop_back(top, rng.range(4, 10) as u16 * mult)
        .st_global(GlobalPattern::Stream)
}

fn barrier_heavy(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let smem = rng.range(1024, 4096) as u32 & !127; // 128 B aligned
    let chunk = (smem / 4).min(512);
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 2, 8))
        .regs_per_thread(rng.range(12, 24) as u32)
        .smem_per_block(smem)
        .grid_blocks(grid);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, chunk)
        .barrier()
        .ld_shared(smem / 2, chunk.min(smem - smem / 2))
        .ialu(rng.range(2, 4) as u32)
        .barrier();
    if rng.chance(40) {
        // A third fence with a deep-offset access: under scratchpad
        // sharing this lands in the shared region and meets the Fig. 4
        // lock right next to a barrier — the paper's deadlock-avoidance
        // scenario.
        b = b.ld_shared(smem - chunk, chunk).barrier();
    }
    b.loop_back(top, rng.range(6, 12) as u16 * mult)
        .st_global(GlobalPattern::Stream)
}

fn divergent_tile(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let regs = rng.range(20, 40) as u32;
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 2, 4))
        .regs_per_thread(regs)
        .grid_blocks(grid);
    // Phase 1: address arithmetic over a small hot tile, confined to a low
    // register window (the private partition under register sharing).
    b = b.reg_window(0, 6);
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::BlockTile {
            tile_lines: rng.range(2, 8) as u32,
        })
        .ialu(rng.range(2, 4) as u32)
        .loop_back(p1, rng.range(4, 8) as u16 * mult);
    // Phase 2: wide-tile compute across the rest of the register file.
    b = b.reg_window(6, regs as u16);
    let p2 = b.here();
    b = b
        .ld_global(GlobalPattern::BlockTile {
            tile_lines: rng.range(64, 256) as u32,
        })
        .ffma(rng.range(4, 10) as u32)
        .loop_back(p2, rng.range(4, 8) as u16 * mult);
    b.st_global(GlobalPattern::Stream)
}

fn mshr_thrash(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 4, 8))
        .regs_per_thread(rng.range(12, 20) as u32)
        .grid_blocks(grid);
    let top = b.here();
    for _ in 0..rng.range(3, 5) {
        // Spans far past the 768 KB L2 (6144 lines), so nearly every
        // transaction is a distinct-line miss holding an MSHR entry for a
        // full DRAM round trip.
        b = b
            .ld_global(GlobalPattern::scatter(
                rng.range(8192, 16384) as u32,
                rng.range(12, 24) as u8,
            ))
            .ialu(1);
    }
    b.loop_back(top, rng.range(4, 8) as u16 * mult)
        .st_global(GlobalPattern::Stream)
}

fn mixed(rng: &mut GenRng, name: &str, grid: u32, mult: u16) -> KernelBuilder {
    let smem = if rng.chance(60) {
        rng.range(1024, 4096) as u32 & !127
    } else {
        0
    };
    let mut b = KernelBuilder::new(name)
        .threads_per_block(draw_threads(rng, 2, 6))
        .regs_per_thread(rng.range(16, 32) as u32)
        .smem_per_block(smem)
        .grid_blocks(grid);
    for _ in 0..rng.range(3, 5) {
        let segment = rng.range(0, 3);
        let top = b.here();
        b = match segment {
            0 => b
                .ld_global(GlobalPattern::scatter(
                    rng.range(64, 1024) as u32,
                    rng.range(2, 8) as u8,
                ))
                .ialu(rng.range(1, 3) as u32),
            1 => b
                .ld_global(GlobalPattern::Stream)
                .ffma(rng.range(4, 10) as u32),
            2 if smem > 0 => {
                let chunk = (smem / 4).min(256);
                b.ld_global(GlobalPattern::Stream)
                    .st_shared(0, chunk)
                    .barrier()
                    .ld_shared(smem - chunk, chunk)
                    .ialu(2)
            }
            _ => b
                .ld_global(GlobalPattern::BlockTile {
                    tile_lines: rng.range(4, 64) as u32,
                })
                .ialu_independent(rng.range(1, 4) as u32),
        };
        b = b.loop_back(top, rng.range(3, 8) as u16 * mult);
    }
    b.st_global(GlobalPattern::Stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::validate;

    #[test]
    fn every_family_seed_size_point_validates_and_fits() {
        for family in Family::ALL {
            for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
                for size in SizeClass::ALL {
                    let k = generate(family, seed, size);
                    validate(&k).unwrap_or_else(|e| panic!("{family:?}/{seed}/{size:?}: {e}"));
                    // Fits the Table I SM with at least one block.
                    assert!(k.regs_per_block() <= 32768, "{family:?}/{seed}/{size:?}");
                    assert!(k.smem_per_block <= 16 * 1024, "{family:?}/{seed}/{size:?}");
                    assert!(k.regs_per_thread <= 64);
                    assert!(k.grid_blocks >= 1);
                }
            }
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_spec() {
        for family in Family::ALL {
            let a = generate(family, 7, SizeClass::Small);
            let b = generate(family, 7, SizeClass::Small);
            assert_eq!(a, b, "{family:?} not deterministic");
        }
    }

    #[test]
    fn seeds_and_families_actually_vary_the_kernel() {
        // Different seeds give different programs (overwhelmingly likely
        // for any reasonable generator; pinned here so a collapsed RNG is
        // caught).
        let a = generate(Family::Bursty, 1, SizeClass::Small);
        let b = generate(Family::Bursty, 2, SizeClass::Small);
        assert_ne!(a.program, b.program);
        // Same seed, different family: different shapes.
        let c = generate(Family::PointerChase, 1, SizeClass::Small);
        assert_ne!(a.program, c.program);
    }

    #[test]
    fn size_classes_scale_dynamic_work() {
        for family in Family::ALL {
            let small = generate(family, 9, SizeClass::Small);
            let large = generate(family, 9, SizeClass::Large);
            assert!(
                u64::from(large.grid_blocks) * large.dynamic_instrs_per_warp()
                    > u64::from(small.grid_blocks) * small.dynamic_instrs_per_warp(),
                "{family:?} large not larger"
            );
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for family in Family::ALL {
            for size in SizeClass::ALL {
                let spec = GenSpec::new(family, 123).with_size(size);
                let name = spec.scenario_name();
                assert_eq!(GenSpec::parse(&name), Ok(spec), "{name}");
            }
        }
        // Size defaults to small.
        assert_eq!(
            GenSpec::parse("gen:mixed:5"),
            Ok(GenSpec::new(Family::Mixed, 5))
        );
    }

    #[test]
    fn spec_parse_rejects_malformed_strings() {
        for bad in [
            "pointer-chase:1",
            "gen:",
            "gen:nope:1",
            "gen:mixed",
            "gen:mixed:notanumber",
            "gen:mixed:1:gigantic",
            "gen:mixed:1:small:extra",
        ] {
            assert!(GenSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn pinned_corpus_covers_every_family() {
        let corpus = pinned_corpus();
        assert_eq!(corpus.len(), Family::ALL.len() * PINNED_SEEDS.len());
        for family in Family::ALL {
            assert!(corpus.iter().any(|s| s.family == family));
        }
        // Scenario names are unique.
        let mut names: Vec<String> = corpus.iter().map(|s| s.scenario_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }
}
