//! Set-2: benchmarks whose residency is limited by **scratchpad memory**
//! (paper Table III).
//!
//! Footprints (threads/block, scratchpad bytes/block) are copied exactly
//! from Table III. Under scratchpad sharing at threshold `t`, a block's
//! private region is bytes `0 .. ⌊t·Rtb⌋`; accesses beyond it go through the
//! Fig. 4 block-pair lock, and a non-owner block busy-waits from its first
//! such access until the owner block completes. The placement of each
//! kernel's scratchpad accesses therefore *is* the behavioural knob the
//! paper discusses: lavaMD never touches its shared region (pure residency
//! win), the convolution/SRAD kernels work through a private prefix before
//! reaching shared offsets (partial non-owner progress), and SRAD2 has a
//! barrier adjacent to a shared access (paper Sec. VI-B).

use grs_isa::{GlobalPattern, Kernel, KernelBuilder};

/// Default grid size for Set-2 models.
pub const GRID: u32 = 672;

/// `convolutionSeparable` rows pass (CUDA-SDK), "CONV1": 64 threads, 2560 B.
/// Separable convolution: stage a tile in scratchpad, barrier, FMA over it.
/// Only 2 warps per block, so the 6 → 8 block bump adds sorely-needed warps
/// (paper: +4.33% with sharing alone, up to +15.85% with OWF).
pub fn conv1() -> Kernel {
    let mut b = KernelBuilder::new("CONV1/convolutionRowsKernel")
        .threads_per_block(64)
        .regs_per_thread(16)
        .smem_per_block(2560)
        .grid_blocks(GRID);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, 192)
        .barrier()
        .ld_shared(0, 192)
        .ffma(4)
        .ialu_independent(2)
        .st_global(GlobalPattern::Stream)
        .loop_back(top, 18);
    b.build()
}

/// `convolutionSeparable` columns pass, "CONV2": 128 threads, 5184 B. The
/// column pass first works a private-prefix set of rows, then walks the
/// deeper (shared) half of the staged tile (paper: +6.21% no-opt,
/// +15.85% with OWF).
pub fn conv2() -> Kernel {
    let mut b = KernelBuilder::new("CONV2/convolutionColumnsKernel")
        .threads_per_block(128)
        .regs_per_thread(16)
        .smem_per_block(5184)
        .grid_blocks(GRID);
    // Phase 1: rows in the private region (< 518 B at t = 0.1).
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, 256)
        .barrier()
        .ld_shared(0, 256)
        .ffma(4)
        .ialu_independent(2)
        .loop_back(p1, 10);
    // Phase 2: deep rows in the shared region.
    let p2 = b.here();
    b = b
        .ld_shared(4800, 256)
        .ffma(5)
        .st_global(GlobalPattern::Stream)
        .loop_back(p2, 8);
    b.build()
}

/// `lavaMD` / `kernel_gpu_cuda` (Rodinia): 128 threads, 7200 B. The paper's
/// scratchpad showcase (+29.96%): residency doubles 2 → 4 and — crucially —
/// **no executed access falls in the shared region**, so the extra blocks
/// never busy-wait. We model that by keeping every scratchpad offset below
/// `0.1 × 7200 = 720` bytes.
pub fn lavamd() -> Kernel {
    let mut b = KernelBuilder::new("lavaMD/kernel_gpu_cuda")
        .threads_per_block(128)
        .regs_per_thread(20)
        .smem_per_block(7200)
        .grid_blocks(GRID / 2);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::BlockTile { tile_lines: 10 })
        .st_shared(0, 256)
        .ld_shared(256, 256)
        .ffma(2)
        .ialu_independent(8)
        .ialu(1)
        .loop_back(top, 26);
    b = b.st_global(GlobalPattern::Stream);
    b.build()
}

/// `nw` / `needle_cuda_shared_1` (Rodinia), "NW1": 16 threads (one partial
/// warp), 2180 B. Wavefront dynamic programming: the diagonal sweep touches
/// rows at increasing offsets, staying inside the private region for most of
/// the sweep (paper: +5.62%).
pub fn nw1() -> Kernel {
    let mut b = KernelBuilder::new("NW1/needle_cuda_shared_1")
        .threads_per_block(16)
        .regs_per_thread(20)
        .smem_per_block(2180)
        .grid_blocks(GRID);
    b = b.ld_global(GlobalPattern::Stream).st_shared(0, 128);
    // Diagonal sweep: 8 unrolled segments at advancing offsets; the private
    // boundary at t = 0.1 is 218 B, so only the last two segments are
    // shared.
    for seg in 0..8u32 {
        let off = seg * 24;
        let top = b.here();
        b = b
            .ld_shared(off, 96)
            .ialu(3)
            .st_shared(off, 64)
            .loop_back(top, 3);
    }
    b = b.barrier().st_global(GlobalPattern::Stream);
    b.build()
}

/// `nw` / `needle_cuda_shared_2`, "NW2": same footprint as NW1, reverse
/// diagonal: starts mid-tile, so it crosses into the shared region earlier
/// but also finishes its shared phase sooner (paper: +9.03%).
pub fn nw2() -> Kernel {
    let mut b = KernelBuilder::new("NW2/needle_cuda_shared_2")
        .threads_per_block(16)
        .regs_per_thread(20)
        .smem_per_block(2180)
        .grid_blocks(GRID);
    b = b.ld_global(GlobalPattern::Stream).st_shared(0, 128);
    for seg in 0..8u32 {
        // Wider-stride sweep: crosses the 218 B private boundary at
        // segment 4, earlier than NW1's segment 6.
        let off = seg * 40;
        let top = b.here();
        b = b
            .ld_shared(off, 96)
            .ialu(3)
            .st_shared(off, 64)
            .loop_back(top, 3);
    }
    b = b.barrier().st_global(GlobalPattern::Stream);
    b.build()
}

/// `srad_v2` / `srad_cuda_1` (Rodinia), "SRAD1": 256 threads, 6144 B.
/// Diffusion stencil: a long private-prefix staging phase, then deep reads
/// (paper: +11.1% no-opt; Table VII peaks at 50% sharing, where the private
/// region covers the whole staging phase).
pub fn srad1() -> Kernel {
    let mut b = KernelBuilder::new("SRAD1/srad_cuda_1")
        .threads_per_block(256)
        .regs_per_thread(16)
        .smem_per_block(6144)
        .grid_blocks(GRID);
    // Staging phase: private at every threshold ≥ 10%.
    let stage = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, 512)
        .loop_back(stage, 3);
    b = b.barrier();
    let p1 = b.here();
    b = b
        .ld_shared(0, 512)
        .ffma(2)
        .ialu_independent(8)
        .loop_back(p1, 8);
    // Deep phase: offsets 2048.. are shared for t ≤ 0.5 but private at 50%.
    let p2 = b.here();
    b = b
        .ld_shared(2048, 512)
        .ffma(1)
        .ialu_independent(4)
        .st_global(GlobalPattern::Stream)
        .loop_back(p2, 12);
    b.build()
}

/// `srad_v2` / `srad_cuda_2`, "SRAD2": 256 threads, 5120 B. The paper notes
/// a barrier *immediately after* an access into shared scratchpad, which
/// pins non-owner progress to the owner's pace; with OWF the owner finishes
/// fast and SRAD2 still gains (Fig. 9(b): up to +25.73% with OWF).
pub fn srad2() -> Kernel {
    let mut b = KernelBuilder::new("SRAD2/srad_cuda_2")
        .threads_per_block(256)
        .regs_per_thread(16)
        .smem_per_block(5120)
        .grid_blocks(GRID);
    // Private staging sweep first (boundary at t = 0.1 is 512 B).
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, 448)
        .ld_shared(0, 448)
        .ffma(3)
        .ialu_independent(6)
        .loop_back(p1, 6);
    // Shared access with the adjacent barrier the paper calls out.
    let p2 = b.here();
    b = b
        .st_shared(4608, 256) // lands in the shared region for t ≤ 0.9
        .barrier() // barrier adjacent to the shared access (paper Sec. VI-B)
        .ld_shared(0, 448)
        .ffma(3)
        .st_global(GlobalPattern::Stream)
        .loop_back(p2, 6);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::{occupancy, GpuConfig, KernelFootprint};
    use grs_isa::validate;

    fn all() -> Vec<Kernel> {
        vec![conv1(), conv2(), lavamd(), nw1(), nw2(), srad1(), srad2()]
    }

    #[test]
    fn all_validate() {
        for k in all() {
            validate(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    /// Table III footprints, verbatim.
    #[test]
    fn footprints_match_table_iii() {
        let expect = [
            ("CONV1", 64, 2560),
            ("CONV2", 128, 5184),
            ("lavaMD", 128, 7200),
            ("NW1", 16, 2180),
            ("NW2", 16, 2180),
            ("SRAD1", 256, 6144),
            ("SRAD2", 256, 5120),
        ];
        for (k, (name, threads, smem)) in all().iter().zip(expect) {
            assert!(k.name.starts_with(name), "{} vs {name}", k.name);
            assert_eq!(k.threads_per_block, threads, "{name}");
            assert_eq!(k.smem_per_block, smem, "{name}");
        }
    }

    /// Paper Fig. 1(c): baseline resident blocks for Set-2.
    #[test]
    fn baseline_blocks_match_fig1c() {
        let sm = GpuConfig::paper_baseline().sm;
        let expect = [6, 3, 2, 7, 7, 2, 3];
        for (k, blocks) in all().iter().zip(expect) {
            let occ = occupancy(&sm, &KernelFootprint::of(k));
            assert_eq!(occ.blocks, blocks, "{}", k.name);
        }
    }

    #[test]
    fn scratchpad_limited() {
        let sm = GpuConfig::paper_baseline().sm;
        for k in all() {
            let occ = occupancy(&sm, &KernelFootprint::of(&k));
            assert_eq!(
                occ.blocks, occ.smem_limit,
                "{} should be scratchpad-limited",
                k.name
            );
        }
    }

    /// The lavaMD model's defining property: every scratchpad access stays
    /// inside the 90%-sharing private region (no busy-waiting ever).
    #[test]
    fn lavamd_never_touches_shared_region() {
        let k = lavamd();
        let boundary = (0.1 * f64::from(k.smem_per_block)).floor() as u32; // 720
        for i in &k.program.instrs {
            if let grs_isa::Op::LdShared(p) | grs_isa::Op::StShared(p) = i.op {
                assert!(
                    p.max_byte() < boundary,
                    "access at {} crosses {boundary}",
                    p.max_byte()
                );
            }
        }
    }

    /// The convolution/SRAD/NW models must have both private and shared
    /// accesses at t = 0.1 (partial non-owner progress), except lavaMD.
    #[test]
    fn mixed_kernels_have_private_prefix_and_shared_tail() {
        for k in [conv2(), nw1(), nw2(), srad1(), srad2()] {
            let boundary = (0.1 * f64::from(k.smem_per_block)).floor() as u32;
            let mut private = 0;
            let mut shared = 0;
            for i in &k.program.instrs {
                if let grs_isa::Op::LdShared(p) | grs_isa::Op::StShared(p) = i.op {
                    if p.max_byte() >= boundary {
                        shared += 1;
                    } else {
                        private += 1;
                    }
                }
            }
            assert!(
                private > 0 && shared > 0,
                "{}: private={private} shared={shared}",
                k.name
            );
            // The first scratchpad access must be private (prefix progress).
            let first = k
                .program
                .instrs
                .iter()
                .find_map(|i| match i.op {
                    grs_isa::Op::LdShared(p) | grs_isa::Op::StShared(p) => Some(p),
                    _ => None,
                })
                .unwrap();
            assert!(
                first.max_byte() < boundary,
                "{}: first access is shared",
                k.name
            );
        }
    }

    /// SRAD2's defining property: a barrier immediately follows an access
    /// into the shared region.
    #[test]
    fn srad2_has_barrier_adjacent_to_shared_access() {
        let k = srad2();
        let boundary = (0.1 * f64::from(k.smem_per_block)).floor() as u32; // 512
        let instrs = &k.program.instrs;
        let found = instrs.windows(2).any(|w| {
            let shared = match w[0].op {
                grs_isa::Op::LdShared(p) | grs_isa::Op::StShared(p) => p.max_byte() >= boundary,
                _ => false,
            };
            shared && matches!(w[1].op, grs_isa::Op::Barrier)
        });
        assert!(
            found,
            "SRAD2 model must have barrier next to a shared scratchpad access"
        );
    }
}
