//! Set-3: benchmarks limited by **max threads or max blocks** rather than by
//! registers or scratchpad (paper Table IV).
//!
//! For these kernels the launch plan degenerates (no shared pairs), so every
//! sharing configuration must behave exactly like its unshared counterpart —
//! the equivalences the paper demonstrates in Fig. 12 and that our
//! integration tests assert bit-for-bit.

use grs_isa::{GlobalPattern, Kernel, KernelBuilder};

/// Default grid size for Set-3 models.
pub const GRID: u32 = 672;

/// `backprop` / `bpnn_layerforward_CUDA` (Rodinia): thread-limited
/// (256 threads × 6 blocks = 1536). Light per-thread state, scratchpad
/// reduction with barriers.
pub fn backprop_layerforward() -> Kernel {
    let mut b = KernelBuilder::new("backprop/bpnn_layerforward_CUDA")
        .threads_per_block(256)
        .regs_per_thread(12)
        .smem_per_block(1088)
        .grid_blocks(GRID);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .st_shared(0, 256)
        .barrier()
        .ld_shared(0, 256)
        .ffma(3)
        .loop_back(top, 20);
    b = b.st_global(GlobalPattern::Stream);
    b.build()
}

/// `BFS` / `Kernel` (GPGPU-Sim suite): thread-limited frontier expansion,
/// scatter-heavy and memory-bound.
pub fn bfs() -> Kernel {
    let mut b = KernelBuilder::new("BFS/Kernel")
        .threads_per_block(512)
        .regs_per_thread(10)
        .smem_per_block(0)
        .grid_blocks(GRID / 2);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Scatter {
            span_lines: 1024,
            txns: 2,
        })
        .ialu(4)
        .st_global(GlobalPattern::Scatter {
            span_lines: 1024,
            txns: 1,
        })
        .loop_back(top, 16);
    b.build()
}

/// `gaussian` / `FAN2` (Rodinia): block-limited elimination step (small
/// blocks, 8-block cap binds first).
pub fn gaussian() -> Kernel {
    let mut b = KernelBuilder::new("gaussian/FAN2")
        .threads_per_block(64)
        .regs_per_thread(10)
        .smem_per_block(0)
        .grid_blocks(GRID);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .fadd(2)
        .ffma(2)
        .st_global(GlobalPattern::Stream)
        .loop_back(top, 20);
    b.build()
}

/// `NN` / `executeSecondLayer` (GPGPU-Sim suite): block-limited neural-net
/// layer with an L1-friendly weight tile.
pub fn nn() -> Kernel {
    let mut b = KernelBuilder::new("NN/executeSecondLayer")
        .threads_per_block(96)
        .regs_per_thread(12)
        .smem_per_block(0)
        .grid_blocks(GRID);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::KernelTile { tile_lines: 24 })
        .ffma(4)
        .loop_back(top, 24);
    b = b.st_global(GlobalPattern::Stream);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::occupancy::LimitingFactor;
    use grs_core::{
        compute_launch_plan, occupancy, GpuConfig, KernelFootprint, ResourceKind, Threshold,
    };
    use grs_isa::validate;

    fn all() -> Vec<Kernel> {
        vec![backprop_layerforward(), bfs(), gaussian(), nn()]
    }

    #[test]
    fn all_validate() {
        for k in all() {
            validate(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    /// Table IV: each kernel's binding constraint.
    #[test]
    fn limiting_factors_match_table_iv() {
        let sm = GpuConfig::paper_baseline().sm;
        let expect = [
            LimitingFactor::Threads,
            LimitingFactor::Threads,
            LimitingFactor::Blocks,
            LimitingFactor::Blocks,
        ];
        for (k, lim) in all().iter().zip(expect) {
            let occ = occupancy(&sm, &KernelFootprint::of(k));
            assert_eq!(occ.limiting, lim, "{}", k.name);
        }
    }

    /// Paper Sec. VI-B2: sharing launches no extra blocks for Set-3.
    #[test]
    fn sharing_plans_degenerate() {
        let sm = GpuConfig::paper_baseline().sm;
        for k in all() {
            for res in [ResourceKind::Registers, ResourceKind::Scratchpad] {
                let plan = compute_launch_plan(
                    &sm,
                    &KernelFootprint::of(&k),
                    Threshold::paper_default(),
                    res,
                );
                assert!(plan.is_degenerate(), "{} {res}: {plan:?}", k.name);
                assert_eq!(plan.max_blocks, plan.baseline_blocks, "{}", k.name);
            }
        }
    }
}
