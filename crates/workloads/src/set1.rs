//! Set-1: benchmarks whose residency is limited by **registers**
//! (paper Table II).
//!
//! Footprints (threads/block, registers/thread) are copied exactly from
//! Table II, so `⌊R/Rtb⌋` and every launch-plan quantity match the paper
//! bit-for-bit. Instruction mixes encode each benchmark's qualitative
//! behaviour as described in the paper's Sec. VI analysis: compute-bound
//! kernels are long dependency chains over cache-resident tiles (baseline
//! residency cannot hide the latency, doubled residency can), memory-bound
//! kernels stream or scatter against DRAM bandwidth, and the two
//! cache-sensitive kernels (mri-q, LIB) size their per-block tiles right at
//! the L1/L2 capacity edge so the extra shared blocks tip them into
//! thrashing.

use grs_isa::{GlobalPattern, Kernel, KernelBuilder};

/// Default grid size: a few waves of the maximum-residency configuration on
/// the 14-SM machine, enough for steady-state behaviour without slow runs.
pub const GRID: u32 = 672;

/// Rotate the declaration order of a kernel's *upper* registers (those used
/// by its register-rich compute phase) so that some carry adversarial
/// sequence numbers — the situation of paper Fig. 7(a), where `$p0`/`$r124`
/// sit at sequence 31/35. The low "pointer/index" registers (the ones the
/// memory-walking phase lives in) keep their natural early positions, which
/// is why the paper's kernels gain even with no reordering; the
/// unroll/reorder pass then recovers the last few percent (paper Fig. 9(a):
/// hotspot 13.65% -> 15.18%).
fn scramble_decls(kernel: &mut Kernel, rotation: u16, keep: u16) {
    let n = kernel.regs_per_thread as u16;
    let hi = n - keep;
    kernel.set_decl_order(
        (0..n)
            .map(|r| {
                if r < keep {
                    r
                } else {
                    keep + ((r - keep + rotation) % hi)
                }
            })
            .collect(),
    );
}

/// `backprop` / `bpnn_adjust_weights_cuda` (GPGPU-Sim suite): 256 threads,
/// 24 regs. Weight-update sweep: one streamed load/store pair per element
/// with a meaty FMA/SFU chain between. Moderately memory-bound; modest
/// sharing gain, helped mainly by OWF (paper: +5.82%).
pub fn backprop() -> Kernel {
    let mut b = KernelBuilder::new("backprop/bpnn_adjust_weights_cuda")
        .threads_per_block(256)
        .regs_per_thread(24)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Phase 1: streamed weight updates in the low index registers.
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::KernelTile { tile_lines: 64 })
        .ffma(6)
        .ialu(1)
        .st_global(GlobalPattern::Stream)
        .loop_back(p1, 12);
    // Phase 2: momentum/bias computation over the full register set.
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b
        .ffma(6)
        .sfu(1)
        .st_global(GlobalPattern::Stream)
        .loop_back(p2, 4);
    let mut k = b.build();
    scramble_decls(&mut k, 12, 4);
    k
}

/// `b+tree` / `findRangeK` (GPGPU-Sim suite): 508 threads (16 warps, last
/// partial), 24 regs. Pointer-chasing range search: a scattered node fetch
/// followed by dependent key comparisons. Latency-bound with irregular
/// per-warp progress; the third block hides misses (paper: +11.98%).
pub fn btree() -> Kernel {
    let mut b = KernelBuilder::new("b+tree/findRangeK")
        .threads_per_block(508)
        .regs_per_thread(24)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Phase 1: node walk — pointer chasing lives entirely in two registers.
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::Scatter {
            span_lines: 96,
            txns: 2,
        })
        .ialu(6)
        .loop_back(p1, 12);
    // Phase 2: range collection over the full register set.
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b.ialu(6).sfu(1).loop_back(p2, 3);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 10, 4);
    k
}

/// `hotspot` / `calculate_temp` (Rodinia): 256 threads, 36 regs. The paper's
/// compute-bound showcase: SFU/FMA dependency chains over an L1-resident
/// stencil tile, a barrier every few iterations. 24 resident warps cannot
/// cover the chain latency; 48 can (paper: +21.76%, +13.65% with no
/// optimization at all).
pub fn hotspot() -> Kernel {
    let mut b = KernelBuilder::new("hotspot/calculate_temp")
        .threads_per_block(256)
        .regs_per_thread(36)
        .smem_per_block(1024)
        .grid_blocks(GRID)
        .reg_window(0, 3);
    // Phase 1: the iterative stencil sweep runs in the low registers
    // (three of them: the scramble displaces the third, so the reorder
    // pass is what keeps phase 1 private — the paper's Fig. 7 situation).
    b = b.ld_global(GlobalPattern::BlockTile { tile_lines: 4 });
    let outer = b.here();
    let inner = b.here();
    b = b
        .sfu(2)
        .ffma(4)
        .ld_global(GlobalPattern::BlockTile { tile_lines: 4 })
        .loop_back(inner, 3);
    b = b.barrier().loop_back(outer, 4);
    // Phase 2: final temperature update uses the full register set.
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b.ffma(6).sfu(1).loop_back(p2, 2);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 18, 2);
    k
}

/// `LIB` / `Pathcalc_Portfolio_KernelGPU` (GPGPU-Sim suite): 192 threads,
/// 36 regs. Monte-Carlo path calculation: per-block working set sized so the
/// baseline's 4 blocks fit L2 but the shared 8 blocks do not — extra blocks
/// trade latency hiding for L2 misses and the net gain is tiny
/// (paper: +0.84%, slight OWF degradation).
pub fn lib() -> Kernel {
    let mut b = KernelBuilder::new("LIB/Pathcalc_Portfolio_KernelGPU")
        .threads_per_block(192)
        .regs_per_thread(36)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Short setup phase; almost all work happens in the register-rich
    // path-calculation loop, so non-owner warps contribute little.
    b = b.ld_global(GlobalPattern::Stream).ialu(2);
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b
        .ld_global(GlobalPattern::BlockTile { tile_lines: 96 })
        .ffma(4)
        .sfu(1)
        .ld_global(GlobalPattern::BlockTile { tile_lines: 96 })
        .ffma(4)
        .loop_back(p2, 22);
    let mut k = b.build();
    scramble_decls(&mut k, 20, 4);
    k
}

/// `MUM` / `mummergpuKernel` (GPGPU-Sim suite): 256 threads, 28 regs.
/// Suffix-tree matching: memory-bound scattered reads over a large per-block
/// span. Extra blocks add misses and queueing — only the Dyn throttle and
/// OWF turn that into the paper's best register-sharing result (+24.14%,
/// −0.15% with no optimizations).
pub fn mum() -> Kernel {
    let mut b = KernelBuilder::new("MUM/mummergpuKernel")
        .threads_per_block(256)
        .regs_per_thread(28)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Phase 1: suffix-tree walk — scattered pointer chasing in two
    // registers; non-owner warps issue many memory instructions here, which
    // is exactly the traffic the Dyn throttle moderates.
    let p1 = b.here();
    b = b
        .ld_global(GlobalPattern::Scatter {
            span_lines: 512,
            txns: 2,
        })
        .ialu(5)
        .ld_global(GlobalPattern::BlockTile { tile_lines: 16 })
        .ialu(2)
        .loop_back(p1, 12);
    // Phase 2: match emission over the full register set.
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b.ialu(6).loop_back(p2, 3);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 14, 4);
    k
}

/// `mri-q` / `ComputeQ_GPU` (Parboil): 256 threads, 24 regs. Compute-heavy
/// with an L1-resident coefficient tile sized right at the 5-block capacity
/// edge (5 × 24 = 120 of 128 lines): the 6th shared block tips L1 into
/// thrashing and the paper records a slight net slowdown (−0.72%).
pub fn mri_q() -> Kernel {
    let mut b = KernelBuilder::new("mri-q/ComputeQ_GPU")
        .threads_per_block(256)
        .regs_per_thread(24)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Minimal setup phase: mri-q's trigonometric accumulation immediately
    // spreads over the full register set, so non-owner warps stall at once.
    b = b.ld_global(GlobalPattern::Stream).ialu(1);
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b
        .ld_global(GlobalPattern::BlockTile { tile_lines: 25 })
        .ffma(4)
        .ialu_independent(6)
        .loop_back(p2, 18);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 11, 4);
    k
}

/// `sgemm` / `mysgemmNT` (Parboil): 128 threads, 48 regs. Dense FMA tiles
/// (the Fig. 7 example program): high arithmetic intensity, baseline close
/// to saturation, so the 5 → 8 block bump yields a modest gain that needs
/// OWF (paper: +4.06%).
pub fn sgemm() -> Kernel {
    let mut b = KernelBuilder::new("sgemm/mysgemmNT")
        .threads_per_block(128)
        .regs_per_thread(48)
        .smem_per_block(2048)
        .grid_blocks(GRID)
        .reg_window(0, 4);
    // Phase 1: A/B panel streaming through four address registers; two of
    // them are displaced by the scramble and recovered by the reorder pass.
    b = b.ld_global(GlobalPattern::BlockTile { tile_lines: 8 });
    let p1 = b.here();
    b = b
        .ffma(4)
        .ld_global(GlobalPattern::BlockTile { tile_lines: 8 })
        .loop_back(p1, 8);
    // Phase 2: the accumulator-rich rank-1 updates (the Fig. 7 code).
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b
        .ffma(6)
        .ialu_independent(10)
        .ld_global(GlobalPattern::BlockTile { tile_lines: 8 })
        .ialu(1)
        .loop_back(p2, 12);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 31, 2);
    k
}

/// `stencil` / `block2D_hybrid_coarsen_x` (Parboil): 512 threads, 28 regs.
/// 2.5-D stencil sweep: one streamed load per iteration feeding an SFU/FMA
/// chain, barrier-synchronized planes. Only 2 → 3 blocks, but each block is
/// huge so the 50% residency gain pays off (paper: +23.45%).
pub fn stencil() -> Kernel {
    let mut b = KernelBuilder::new("stencil/block2D_hybrid_coarsen_x")
        .threads_per_block(512)
        .regs_per_thread(28)
        .smem_per_block(0)
        .grid_blocks(GRID)
        .reg_window(0, 2);
    // Phase 1: the plane sweep runs in the low registers.
    let outer = b.here();
    let inner = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .sfu(1)
        .ffma(3)
        .ialu_independent(4)
        .loop_back(inner, 3);
    b = b
        .barrier()
        .st_global(GlobalPattern::Stream)
        .loop_back(outer, 3);
    // Phase 2: boundary handling over the full register set.
    b = b.reg_window(2, u16::MAX);
    let p2 = b.here();
    b = b.ffma(5).loop_back(p2, 8);
    b = b.st_global(GlobalPattern::Stream);
    let mut k = b.build();
    scramble_decls(&mut k, 15, 4);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::{occupancy, GpuConfig, KernelFootprint};
    use grs_isa::validate;

    fn all() -> Vec<Kernel> {
        vec![
            backprop(),
            btree(),
            hotspot(),
            lib(),
            mum(),
            mri_q(),
            sgemm(),
            stencil(),
        ]
    }

    #[test]
    fn all_validate() {
        for k in all() {
            validate(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    /// Table II footprints, verbatim.
    #[test]
    fn footprints_match_table_ii() {
        let expect = [
            ("backprop", 256, 24),
            ("b+tree", 508, 24),
            ("hotspot", 256, 36),
            ("LIB", 192, 36),
            ("MUM", 256, 28),
            ("mri-q", 256, 24),
            ("sgemm", 128, 48),
            ("stencil", 512, 28),
        ];
        for (k, (name, threads, regs)) in all().iter().zip(expect) {
            assert!(k.name.starts_with(name), "{} vs {name}", k.name);
            assert_eq!(k.threads_per_block, threads, "{name}");
            assert_eq!(k.regs_per_thread, regs, "{name}");
        }
    }

    /// Paper Fig. 1(a): baseline resident blocks for Set-1.
    #[test]
    fn baseline_blocks_match_fig1a() {
        let sm = GpuConfig::paper_baseline().sm;
        let expect = [5, 2, 3, 4, 4, 5, 5, 2];
        for (k, blocks) in all().iter().zip(expect) {
            let occ = occupancy(&sm, &KernelFootprint::of(k));
            assert_eq!(occ.blocks, blocks, "{}", k.name);
        }
    }

    /// Every Set-1 kernel must actually be register-limited.
    #[test]
    fn register_limited() {
        let sm = GpuConfig::paper_baseline().sm;
        for k in all() {
            let occ = occupancy(&sm, &KernelFootprint::of(&k));
            assert_eq!(
                occ.blocks, occ.reg_limit,
                "{} should be register-limited (occ {occ:?})",
                k.name
            );
        }
    }

    #[test]
    fn programs_have_realistic_dynamic_lengths() {
        for k in all() {
            let dynlen = k.dynamic_instrs_per_warp();
            assert!(
                (50..20_000).contains(&dynlen),
                "{}: dynamic length {dynlen} out of range",
                k.name
            );
        }
    }

    /// The declaration scramble makes the unroll/reorder pass meaningful:
    /// it must change the declaration order of every Set-1 kernel.
    #[test]
    fn scramble_gives_reorder_pass_work() {
        for mut k in all() {
            let report = grs_core::reorder_declarations(&mut k);
            assert!(report.changed, "{}", k.name);
        }
    }
}
