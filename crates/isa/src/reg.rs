//! Architectural register identifiers.

use serde::{Deserialize, Serialize};

/// An architectural (per-thread) register id, `0 .. regs_per_thread`.
///
/// The *id* is stable; the register's **sequence number** — its position in
/// the kernel's declaration order, which is what the register-sharing
/// automaton of paper Fig. 3 compares against the `Rw·t` private/shared
/// boundary — is looked up through [`crate::Kernel::seq_of`]. Keeping the two
/// apart is what lets the declaration-reordering optimization change sharing
/// classification without rewriting instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl Reg {
    /// Convenience constructor, mirrors PTX `$r<n>` syntax.
    #[inline]
    pub const fn r(n: u16) -> Self {
        Reg(n)
    }

    /// Raw index as `usize` for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

impl From<u16> for Reg {
    fn from(n: u16) -> Self {
        Reg(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ptx_style() {
        assert_eq!(Reg::r(17).to_string(), "$r17");
    }

    #[test]
    fn ordering_is_by_id() {
        assert!(Reg::r(3) < Reg::r(4));
        assert_eq!(Reg::from(9), Reg(9));
        assert_eq!(Reg(9).index(), 9);
    }
}
