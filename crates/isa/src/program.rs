//! Straight-line programs with counted back-edges.

use serde::{Deserialize, Serialize};

use crate::instr::{Instr, Op};

/// A warp program: a vector of instructions executed in order, with
/// `BranchBack` instructions providing statically-counted loops.
///
/// Control flow is deliberately restricted to counted back-edges: the paper's
/// mechanisms (resource sharing, warp scheduling, stall accounting) are
/// orthogonal to divergence handling, which its related-work section
/// explicitly calls out as orthogonal research.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// The instruction stream.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Wrap an instruction vector.
    pub fn new(instrs: Vec<Instr>) -> Self {
        Program { instrs }
    }

    /// Number of static instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of distinct loop ids (trip-counter table size per warp).
    pub fn num_loops(&self) -> usize {
        self.instrs
            .iter()
            .filter_map(|i| match i.op {
                Op::BranchBack { loop_id, .. } => Some(loop_id as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Dynamic warp-instruction count: the number of instructions a single
    /// warp executes from entry to `Exit`, fully unrolling counted loops.
    /// Loops may nest; a `BranchBack` with trips `n` re-executes its body `n`
    /// extra times.
    pub fn dynamic_len(&self) -> u64 {
        // Walk the program simulating trip counters (cheap: programs are
        // small and trip counts are static).
        let mut counters: Vec<u16> = vec![0; self.num_loops()];
        let mut initialized: Vec<bool> = vec![false; self.num_loops()];
        let mut pc = 0usize;
        let mut count: u64 = 0;
        let mut fuel: u64 = 1 << 34; // hard bound against malformed programs
        while pc < self.instrs.len() {
            count += 1;
            fuel -= 1;
            if fuel == 0 {
                break;
            }
            match self.instrs[pc].op {
                Op::Exit => break,
                Op::BranchBack {
                    target,
                    trips,
                    loop_id,
                } => {
                    let id = loop_id as usize;
                    if !initialized[id] {
                        counters[id] = trips;
                        initialized[id] = true;
                    }
                    if counters[id] > 0 {
                        counters[id] -= 1;
                        pc = target as usize;
                    } else {
                        initialized[id] = false;
                        pc += 1;
                    }
                }
                _ => pc += 1,
            }
        }
        count
    }

    /// Highest architectural register id referenced, if any.
    pub fn max_reg(&self) -> Option<u16> {
        self.instrs
            .iter()
            .flat_map(|i| i.operands())
            .map(|r| r.0)
            .max()
    }

    /// Multi-line disassembly listing.
    pub fn disasm(&self) -> String {
        let mut s = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            s.push_str(&format!("{i:4}:  {}\n", instr.disasm()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn ialu() -> Instr {
        Instr::new(Op::IAlu, Some(Reg(0)), &[Reg(0)])
    }

    #[test]
    fn dynamic_len_straight_line() {
        let p = Program::new(vec![ialu(), ialu(), Instr::new(Op::Exit, None, &[])]);
        assert_eq!(p.dynamic_len(), 3);
        assert_eq!(p.num_loops(), 0);
    }

    #[test]
    fn dynamic_len_single_loop() {
        // 0: ialu
        // 1: bra 0 trips=4   -> body (instrs 0..=1) runs 5 times total
        // 2: exit
        let p = Program::new(vec![
            ialu(),
            Instr::new(
                Op::BranchBack {
                    target: 0,
                    trips: 4,
                    loop_id: 0,
                },
                None,
                &[],
            ),
            Instr::new(Op::Exit, None, &[]),
        ]);
        // 5 * (ialu + bra) + exit
        assert_eq!(p.dynamic_len(), 11);
        assert_eq!(p.num_loops(), 1);
    }

    #[test]
    fn dynamic_len_nested_loops() {
        // outer loop 2 extra trips, inner loop 3 extra trips
        // 0: ialu
        // 1: bra 0 trips=3 loop 0      (inner)
        // 2: bra 0 trips=2 loop 1      (outer)
        // 3: exit
        let p = Program::new(vec![
            ialu(),
            Instr::new(
                Op::BranchBack {
                    target: 0,
                    trips: 3,
                    loop_id: 0,
                },
                None,
                &[],
            ),
            Instr::new(
                Op::BranchBack {
                    target: 0,
                    trips: 2,
                    loop_id: 1,
                },
                None,
                &[],
            ),
            Instr::new(Op::Exit, None, &[]),
        ]);
        // inner pass = 4*(ialu+bra) = 8 instructions, then outer bra.
        // outer executes 3 times: 3*(8+1) = 27, plus exit = 28.
        assert_eq!(p.dynamic_len(), 28);
        assert_eq!(p.num_loops(), 2);
    }

    #[test]
    fn max_reg_finds_largest_operand() {
        let p = Program::new(vec![
            Instr::new(Op::FAdd, Some(Reg(7)), &[Reg(2), Reg(31)]),
            Instr::new(Op::Exit, None, &[]),
        ]);
        assert_eq!(p.max_reg(), Some(31));
    }

    #[test]
    fn disasm_lists_every_instruction() {
        let p = Program::new(vec![ialu(), Instr::new(Op::Exit, None, &[])]);
        let d = p.disasm();
        assert!(d.contains("0:  ialu"));
        assert!(d.contains("1:  exit"));
    }
}
