//! Kernels: a program plus its launch footprint.

use serde::{Deserialize, Serialize};

use crate::program::Program;
use crate::reg::Reg;
use crate::WARP_SIZE;

/// A GPU kernel: the unit the dispatcher launches onto SMs.
///
/// The footprint fields correspond 1:1 to the columns of the paper's
/// Tables II–IV (threads per block, registers per thread, scratchpad bytes
/// per block) and fully determine occupancy and the sharing launch plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kernel {
    /// Human-readable kernel name (e.g. `"calculate_temp"`).
    pub name: String,
    /// Threads per thread block (paper "Block Size").
    pub threads_per_block: u32,
    /// Architectural registers per thread.
    pub regs_per_thread: u32,
    /// Scratchpad bytes per thread block.
    pub smem_per_block: u32,
    /// Total thread blocks in the grid.
    pub grid_blocks: u32,
    /// The warp program (every warp executes the same stream).
    pub program: Program,
    /// Declaration order: `decl_seq[reg.index()]` is the register's sequence
    /// number (0-based position among `.reg` declarations). The Fig. 3
    /// register-sharing automaton classifies a register as *private* iff its
    /// sequence number is below the `Rw·t` boundary; the paper's
    /// unroll/reorder pass (Sec. IV-B) permutes exactly this table.
    pub decl_seq: Vec<u16>,
}

impl Kernel {
    /// Build a kernel with the identity declaration order (register `i` has
    /// sequence number `i`).
    pub fn new(
        name: impl Into<String>,
        threads_per_block: u32,
        regs_per_thread: u32,
        smem_per_block: u32,
        grid_blocks: u32,
        program: Program,
    ) -> Self {
        Kernel {
            name: name.into(),
            threads_per_block,
            regs_per_thread,
            smem_per_block,
            grid_blocks,
            program,
            decl_seq: (0..regs_per_thread as u16).collect(),
        }
    }

    /// Warps per thread block (threads rounded up to warp granularity).
    #[inline]
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(WARP_SIZE)
    }

    /// Registers required by one thread block
    /// (`Rtb = regs_per_thread × threads_per_block`, paper Sec. I).
    #[inline]
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block
    }

    /// Registers required by one warp (`Rw`).
    #[inline]
    pub fn regs_per_warp(&self) -> u32 {
        self.regs_per_thread * WARP_SIZE
    }

    /// Sequence number of a register under the current declaration order.
    #[inline]
    pub fn seq_of(&self, reg: Reg) -> u16 {
        self.decl_seq[reg.index()]
    }

    /// Replace the declaration order. `seq` must be a permutation of
    /// `0..regs_per_thread`; validated in debug builds and by
    /// [`crate::validate`].
    pub fn set_decl_order(&mut self, seq: Vec<u16>) {
        debug_assert_eq!(seq.len(), self.regs_per_thread as usize);
        self.decl_seq = seq;
    }

    /// Dynamic warp-instruction count of one warp.
    pub fn dynamic_instrs_per_warp(&self) -> u64 {
        self.program.dynamic_len()
    }

    /// Total dynamic *thread* instructions of the whole grid (what the
    /// paper's IPC metric counts).
    pub fn total_thread_instrs(&self) -> u64 {
        self.dynamic_instrs_per_warp()
            * u64::from(self.warps_per_block())
            * u64::from(WARP_SIZE)
            * u64::from(self.grid_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Op};

    fn k(threads: u32, regs: u32) -> Kernel {
        Kernel::new(
            "t",
            threads,
            regs,
            0,
            4,
            Program::new(vec![Instr::new(Op::Exit, None, &[])]),
        )
    }

    #[test]
    fn hotspot_footprint_matches_paper_motivation() {
        // Paper Sec. I-A: hotspot uses 36 regs × 256 threads = 9216 per block.
        let hotspot = k(256, 36);
        assert_eq!(hotspot.regs_per_block(), 9216);
        assert_eq!(hotspot.warps_per_block(), 8);
        assert_eq!(hotspot.regs_per_warp(), 36 * 32);
    }

    #[test]
    fn partial_warps_round_up() {
        // b+tree: 508 threads/block → 16 warps.
        assert_eq!(k(508, 24).warps_per_block(), 16);
        assert_eq!(k(16, 24).warps_per_block(), 1);
    }

    #[test]
    fn identity_decl_order_by_default() {
        let kern = k(32, 8);
        for r in 0..8u16 {
            assert_eq!(kern.seq_of(Reg(r)), r);
        }
    }

    #[test]
    fn decl_order_can_be_replaced() {
        let mut kern = k(32, 4);
        kern.set_decl_order(vec![3, 2, 1, 0]);
        assert_eq!(kern.seq_of(Reg(0)), 3);
        assert_eq!(kern.seq_of(Reg(3)), 0);
    }

    #[test]
    fn total_thread_instrs_scales_with_grid() {
        let kern = k(64, 8); // 2 warps/block, 1 dynamic instr, 4 blocks
        assert_eq!(kern.total_thread_instrs(), 2 * 32 * 4);
    }
}
