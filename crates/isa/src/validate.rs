//! Static validation of kernels.

use crate::instr::Op;
use crate::kernel::Kernel;

/// Reasons a kernel fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Program has no instructions.
    EmptyProgram,
    /// Last reachable path never exits; programs must end in `Exit`.
    MissingExit,
    /// A register operand `reg` is `>= regs_per_thread`.
    RegOutOfRange {
        pc: usize,
        reg: u16,
        regs_per_thread: u32,
    },
    /// A branch target points at or beyond its own pc (only back-edges are
    /// legal) or beyond the program.
    BadBranchTarget { pc: usize, target: u16 },
    /// Two `BranchBack` instructions reuse a loop id.
    DuplicateLoopId { pc: usize, loop_id: u8 },
    /// A scratchpad access touches bytes `>= smem_per_block`.
    SmemOutOfRange {
        pc: usize,
        max_byte: u32,
        smem_per_block: u32,
    },
    /// `decl_seq` is not a permutation of `0..regs_per_thread`.
    BadDeclOrder,
    /// Zero threads or zero grid blocks.
    EmptyLaunch,
    /// More threads per block than the architectural maximum the ISA allows
    /// (1024, the CUDA limit for the modelled generation).
    BlockTooLarge { threads: u32 },
    /// A [`crate::KernelBuilder::reg_window`] clamped to fewer than two
    /// registers, so every rolled source operand would silently alias its
    /// destination (reported by the builder, never by a built [`Kernel`]).
    NarrowRegWindow {
        /// Requested window low bound.
        lo: u16,
        /// Requested window high bound (exclusive).
        hi: u16,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::EmptyProgram => write!(f, "program is empty"),
            ValidateError::MissingExit => write!(f, "program does not end with Exit"),
            ValidateError::RegOutOfRange {
                pc,
                reg,
                regs_per_thread,
            } => {
                write!(
                    f,
                    "pc {pc}: register $r{reg} out of range (regs/thread = {regs_per_thread})"
                )
            }
            ValidateError::BadBranchTarget { pc, target } => {
                write!(f, "pc {pc}: branch target {target} is not a back-edge")
            }
            ValidateError::DuplicateLoopId { pc, loop_id } => {
                write!(f, "pc {pc}: loop id {loop_id} already used")
            }
            ValidateError::SmemOutOfRange {
                pc,
                max_byte,
                smem_per_block,
            } => {
                write!(f, "pc {pc}: scratchpad byte {max_byte} out of range ({smem_per_block} bytes/block)")
            }
            ValidateError::BadDeclOrder => write!(f, "decl_seq is not a permutation"),
            ValidateError::EmptyLaunch => write!(f, "kernel launches zero threads or blocks"),
            ValidateError::BlockTooLarge { threads } => {
                write!(f, "{threads} threads per block exceeds the 1024 limit")
            }
            ValidateError::NarrowRegWindow { lo, hi } => {
                write!(
                    f,
                    "reg_window [{lo}, {hi}) holds fewer than 2 registers after \
                     clamping; rolled sources would alias their destinations"
                )
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a kernel's static well-formedness. Every kernel entering the
/// simulator or the transform passes must pass this check.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    if kernel.program.is_empty() {
        return Err(ValidateError::EmptyProgram);
    }
    if kernel.threads_per_block == 0 || kernel.grid_blocks == 0 {
        return Err(ValidateError::EmptyLaunch);
    }
    if kernel.threads_per_block > 1024 {
        return Err(ValidateError::BlockTooLarge {
            threads: kernel.threads_per_block,
        });
    }
    match kernel.program.instrs.last().map(|i| i.op) {
        Some(Op::Exit) => {}
        _ => return Err(ValidateError::MissingExit),
    }
    // decl_seq must be a permutation of 0..regs_per_thread.
    {
        let n = kernel.regs_per_thread as usize;
        if kernel.decl_seq.len() != n {
            return Err(ValidateError::BadDeclOrder);
        }
        let mut seen = vec![false; n];
        for &s in &kernel.decl_seq {
            let s = s as usize;
            if s >= n || seen[s] {
                return Err(ValidateError::BadDeclOrder);
            }
            seen[s] = true;
        }
    }
    let mut loop_ids_seen = [false; 256];
    for (pc, instr) in kernel.program.instrs.iter().enumerate() {
        for reg in instr.operands() {
            if u32::from(reg.0) >= kernel.regs_per_thread {
                return Err(ValidateError::RegOutOfRange {
                    pc,
                    reg: reg.0,
                    regs_per_thread: kernel.regs_per_thread,
                });
            }
        }
        match instr.op {
            Op::BranchBack {
                target, loop_id, ..
            } => {
                if usize::from(target) >= pc {
                    return Err(ValidateError::BadBranchTarget { pc, target });
                }
                if loop_ids_seen[loop_id as usize] {
                    return Err(ValidateError::DuplicateLoopId { pc, loop_id });
                }
                loop_ids_seen[loop_id as usize] = true;
            }
            Op::LdShared(p) | Op::StShared(p) if p.max_byte() >= kernel.smem_per_block => {
                return Err(ValidateError::SmemOutOfRange {
                    pc,
                    max_byte: p.max_byte(),
                    smem_per_block: kernel.smem_per_block,
                });
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::Instr;
    use crate::pattern::SharedPattern;
    use crate::program::Program;
    use crate::reg::Reg;

    fn ok_kernel() -> Kernel {
        KernelBuilder::new("ok")
            .regs_per_thread(8)
            .smem_per_block(256)
            .ialu(3)
            .build()
    }

    #[test]
    fn accepts_well_formed_kernel() {
        assert_eq!(validate(&ok_kernel()), Ok(()));
    }

    #[test]
    fn rejects_empty_program() {
        let mut k = ok_kernel();
        k.program = Program::new(vec![]);
        assert_eq!(validate(&k), Err(ValidateError::EmptyProgram));
    }

    #[test]
    fn rejects_missing_exit() {
        let mut k = ok_kernel();
        k.program.instrs.pop();
        assert_eq!(validate(&k), Err(ValidateError::MissingExit));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut k = ok_kernel();
        k.program
            .instrs
            .insert(0, Instr::new(Op::IAlu, Some(Reg(99)), &[]));
        assert!(matches!(
            validate(&k),
            Err(ValidateError::RegOutOfRange { reg: 99, .. })
        ));
    }

    #[test]
    fn rejects_forward_branch() {
        let mut k = ok_kernel();
        let end = k.program.len() as u16;
        k.program.instrs.insert(
            0,
            Instr::new(
                Op::BranchBack {
                    target: end,
                    trips: 1,
                    loop_id: 0,
                },
                None,
                &[],
            ),
        );
        assert!(matches!(
            validate(&k),
            Err(ValidateError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_loop_ids() {
        let mut k = ok_kernel();
        let n = k.program.len();
        k.program.instrs.insert(
            n - 1,
            Instr::new(
                Op::BranchBack {
                    target: 0,
                    trips: 1,
                    loop_id: 7,
                },
                None,
                &[],
            ),
        );
        k.program.instrs.insert(
            n,
            Instr::new(
                Op::BranchBack {
                    target: 1,
                    trips: 1,
                    loop_id: 7,
                },
                None,
                &[],
            ),
        );
        assert!(matches!(
            validate(&k),
            Err(ValidateError::DuplicateLoopId { loop_id: 7, .. })
        ));
    }

    #[test]
    fn rejects_smem_overflow() {
        let mut k = ok_kernel(); // 256 bytes of smem
        k.program.instrs.insert(
            0,
            Instr::new(
                Op::LdShared(SharedPattern::new(200, 100)),
                Some(Reg(0)),
                &[],
            ),
        );
        assert!(matches!(
            validate(&k),
            Err(ValidateError::SmemOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_bad_decl_order() {
        let mut k = ok_kernel();
        k.decl_seq = vec![0; k.regs_per_thread as usize];
        assert_eq!(validate(&k), Err(ValidateError::BadDeclOrder));
    }

    #[test]
    fn rejects_empty_launch_and_giant_blocks() {
        let mut k = ok_kernel();
        k.grid_blocks = 0;
        assert_eq!(validate(&k), Err(ValidateError::EmptyLaunch));
        let mut k2 = ok_kernel();
        k2.threads_per_block = 2048;
        assert!(matches!(
            validate(&k2),
            Err(ValidateError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn error_messages_are_human_readable() {
        let e = ValidateError::RegOutOfRange {
            pc: 3,
            reg: 9,
            regs_per_thread: 8,
        };
        assert!(e.to_string().contains("$r9"));
    }
}
