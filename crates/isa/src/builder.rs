//! Fluent kernel construction.

use crate::instr::{Instr, Op};
use crate::kernel::Kernel;
use crate::pattern::{GlobalPattern, SharedPattern};
use crate::program::Program;
use crate::reg::Reg;
use crate::validate::{validate, ValidateError};

/// Fluent builder for [`Kernel`]s; used by the workload suite and the
/// examples. Register operands are cycled deterministically over the declared
/// register set so that realistic scoreboard dependences arise without the
/// caller hand-picking every operand.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    threads_per_block: u32,
    regs_per_thread: u32,
    smem_per_block: u32,
    grid_blocks: u32,
    instrs: Vec<Instr>,
    next_loop_id: u8,
    // rolling operand allocator state
    cursor: u16,
    // registers the roller draws from: [window_lo, window_hi)
    window_lo: u16,
    window_hi: u16,
    // a caller-set window was active while it clamped to < 2 registers, so
    // rolled sources aliased destinations; latched for build() to reject
    window_set: bool,
    narrow_window: Option<(u16, u16)>,
    // most recent destination: arithmetic chains on it, modelling the
    // load-to-use and op-to-op dependences real kernels have
    last_dst: Option<Reg>,
}

impl KernelBuilder {
    /// Start a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            threads_per_block: 32,
            regs_per_thread: 8,
            smem_per_block: 0,
            grid_blocks: 1,
            instrs: Vec::new(),
            next_loop_id: 0,
            cursor: 0,
            window_lo: 0,
            window_hi: u16::MAX,
            window_set: false,
            narrow_window: None,
            last_dst: None,
        }
    }

    /// Restrict subsequent rolling operands to registers `lo .. hi`. Real
    /// kernels execute long phases (address arithmetic, pointer chasing) in a
    /// handful of low registers; under register sharing those phases stay in
    /// the private partition, which is what lets non-owner warps progress
    /// (paper Secs. III-A, IV-B). Pass `hi = u16::MAX` for "to the end".
    ///
    /// A window that clamps to fewer than **two** registers (against the
    /// declared `regs_per_thread`) would make every rolled source alias its
    /// destination; [`Self::build`] rejects such a builder with
    /// [`ValidateError::NarrowRegWindow`].
    pub fn reg_window(mut self, lo: u16, hi: u16) -> Self {
        self.window_lo = lo;
        self.window_hi = hi;
        self.window_set = true;
        self.cursor = 0;
        self
    }

    /// Set threads per block (paper "Block Size").
    pub fn threads_per_block(mut self, n: u32) -> Self {
        self.threads_per_block = n;
        self
    }

    /// Set architectural registers per thread.
    pub fn regs_per_thread(mut self, n: u32) -> Self {
        self.regs_per_thread = n;
        self
    }

    /// Set scratchpad bytes per block.
    pub fn smem_per_block(mut self, bytes: u32) -> Self {
        self.smem_per_block = bytes;
        self
    }

    /// Set total blocks in the grid.
    pub fn grid_blocks(mut self, n: u32) -> Self {
        self.grid_blocks = n;
        self
    }

    fn roll(&mut self) -> Reg {
        let lo = self.window_lo.min(self.regs_per_thread as u16 - 1);
        let hi = self.window_hi.min(self.regs_per_thread as u16).max(lo + 1);
        if self.window_set && hi - lo < 2 && self.narrow_window.is_none() {
            self.narrow_window = Some((self.window_lo, self.window_hi));
        }
        let r = Reg(lo + self.cursor % (hi - lo));
        self.cursor = self.cursor.wrapping_add(1);
        r
    }

    fn chain_src(&mut self) -> Reg {
        self.last_dst.unwrap_or_else(|| {
            let r = self.roll();
            self.last_dst = Some(r);
            r
        })
    }

    /// Push a raw instruction.
    pub fn push(mut self, instr: Instr) -> Self {
        self.last_dst = instr.dst.or(self.last_dst);
        self.instrs.push(instr);
        self
    }

    /// Append `n` integer-ALU instructions chained on the previous result.
    pub fn ialu(mut self, n: u32) -> Self {
        for _ in 0..n {
            let a = self.chain_src();
            let d = self.roll();
            self.instrs.push(Instr::new(Op::IAlu, Some(d), &[a, d]));
            self.last_dst = Some(d);
        }
        self
    }

    /// Append `n` FP-add instructions chained on the previous result.
    pub fn fadd(mut self, n: u32) -> Self {
        for _ in 0..n {
            let a = self.chain_src();
            let d = self.roll();
            self.instrs.push(Instr::new(Op::FAdd, Some(d), &[a, d]));
            self.last_dst = Some(d);
        }
        self
    }

    /// Append `n` FMA instructions (three sources — the dense-compute op),
    /// chained on the previous result.
    pub fn ffma(mut self, n: u32) -> Self {
        for _ in 0..n {
            let a = self.chain_src();
            let b = self.roll();
            let d = self.roll();
            self.instrs.push(Instr::new(Op::FFma, Some(d), &[a, b, d]));
            self.last_dst = Some(d);
        }
        self
    }

    /// Append `n` SFU instructions chained on the previous result.
    pub fn sfu(mut self, n: u32) -> Self {
        for _ in 0..n {
            let a = self.chain_src();
            let d = self.roll();
            self.instrs.push(Instr::new(Op::Sfu, Some(d), &[a]));
            self.last_dst = Some(d);
        }
        self
    }

    /// Append a global load with pattern `p`; subsequent chained arithmetic
    /// consumes the loaded value (load-to-use dependence).
    pub fn ld_global(mut self, p: GlobalPattern) -> Self {
        let a = self.chain_src();
        let d = self.roll();
        self.instrs.push(Instr::new(Op::LdGlobal(p), Some(d), &[a]));
        self.last_dst = Some(d);
        self
    }

    /// Append a global store of the previous result.
    pub fn st_global(mut self, p: GlobalPattern) -> Self {
        let v = self.chain_src();
        let a = self.roll();
        self.instrs.push(Instr::new(Op::StGlobal(p), None, &[a, v]));
        self
    }

    /// Append a scratchpad load touching `bytes` bytes at `offset`;
    /// subsequent chained arithmetic consumes the loaded value.
    pub fn ld_shared(mut self, offset: u32, bytes: u32) -> Self {
        let d = self.roll();
        self.instrs.push(Instr::new(
            Op::LdShared(SharedPattern::new(offset, bytes)),
            Some(d),
            &[],
        ));
        self.last_dst = Some(d);
        self
    }

    /// Append a scratchpad store of the previous result.
    pub fn st_shared(mut self, offset: u32, bytes: u32) -> Self {
        let v = self.chain_src();
        self.instrs.push(Instr::new(
            Op::StShared(SharedPattern::new(offset, bytes)),
            None,
            &[v],
        ));
        self
    }

    /// Append `n` *independent* integer-ALU instructions (no chaining) —
    /// for modelling instruction-level parallelism where needed.
    pub fn ialu_independent(mut self, n: u32) -> Self {
        for _ in 0..n {
            let d = self.roll();
            let a = self.roll();
            self.instrs.push(Instr::new(Op::IAlu, Some(d), &[a, d]));
        }
        self
    }

    /// Append a block-wide barrier.
    pub fn barrier(mut self) -> Self {
        self.instrs.push(Instr::new(Op::Barrier, None, &[]));
        self
    }

    /// Close a loop: branch back to instruction index `target`, re-executing
    /// the body `trips` additional times. Loop ids are allocated
    /// automatically.
    pub fn loop_back(mut self, target: usize, trips: u16) -> Self {
        let loop_id = self.next_loop_id;
        self.next_loop_id += 1;
        self.instrs.push(Instr::new(
            Op::BranchBack {
                target: target as u16,
                trips,
                loop_id,
            },
            None,
            &[],
        ));
        self
    }

    /// Current instruction count (used as a `loop_back` anchor).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Finish with an `Exit` and produce the kernel, or report why the
    /// builder's output is ill-formed: a [`Self::reg_window`] that clamped
    /// to fewer than 2 registers while operands were rolled (silent
    /// src/dst aliasing), or any [`validate`] failure on the built kernel.
    pub fn try_build(mut self) -> Result<Kernel, ValidateError> {
        if let Some((lo, hi)) = self.narrow_window {
            return Err(ValidateError::NarrowRegWindow { lo, hi });
        }
        self.instrs.push(Instr::new(Op::Exit, None, &[]));
        let kernel = Kernel::new(
            self.name,
            self.threads_per_block,
            self.regs_per_thread,
            self.smem_per_block,
            self.grid_blocks,
            Program::new(self.instrs),
        );
        validate(&kernel)?;
        Ok(kernel)
    }

    /// Finish with an `Exit` and produce the kernel; panics where
    /// [`Self::try_build`] would report an error.
    pub fn build(self) -> Kernel {
        let name = self.name.clone();
        self.try_build()
            .unwrap_or_else(|e| panic!("KernelBuilder::build({name}): {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn builder_produces_valid_kernels() {
        let mut b = KernelBuilder::new("loopy")
            .threads_per_block(128)
            .regs_per_thread(16)
            .smem_per_block(2048)
            .grid_blocks(10)
            .ialu(4);
        let top = b.here();
        b = b
            .ld_global(GlobalPattern::Stream)
            .ffma(6)
            .st_shared(0, 512)
            .barrier()
            .ld_shared(512, 512)
            .loop_back(top, 20);
        let k = b.build();
        validate(&k).expect("builder output must validate");
        assert!(k.dynamic_instrs_per_warp() > 200);
    }

    #[test]
    fn rolling_operands_stay_in_range() {
        let k = KernelBuilder::new("small")
            .regs_per_thread(3)
            .ialu(50)
            .build();
        assert!(k.program.max_reg().unwrap() < 3);
    }

    #[test]
    fn narrow_reg_window_is_rejected() {
        // A one-register window aliases src and dst on every roll.
        let err = KernelBuilder::new("narrow")
            .regs_per_thread(16)
            .reg_window(3, 4)
            .ialu(2)
            .try_build()
            .unwrap_err();
        assert_eq!(err, ValidateError::NarrowRegWindow { lo: 3, hi: 4 });

        // A window that *clamps* to one register (hi past the register
        // file) is just as degenerate.
        let err = KernelBuilder::new("clamped")
            .regs_per_thread(6)
            .reg_window(5, 100)
            .ialu(1)
            .try_build()
            .unwrap_err();
        assert_eq!(err, ValidateError::NarrowRegWindow { lo: 5, hi: 100 });

        // An empty window degenerates the same way.
        assert!(matches!(
            KernelBuilder::new("empty")
                .regs_per_thread(16)
                .reg_window(4, 4)
                .ialu(1)
                .try_build(),
            Err(ValidateError::NarrowRegWindow { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "fewer than 2 registers")]
    fn build_panics_on_a_narrow_window() {
        let _ = KernelBuilder::new("narrow")
            .regs_per_thread(16)
            .reg_window(3, 4)
            .ialu(2)
            .build();
    }

    #[test]
    fn two_register_window_is_accepted_and_never_aliases() {
        let k = KernelBuilder::new("two-wide")
            .regs_per_thread(16)
            .reg_window(4, 6)
            .ialu(8)
            .build();
        validate(&k).unwrap();
        for i in &k.program.instrs {
            if let (Some(d), true) = (i.dst, i.op == crate::instr::Op::IAlu) {
                // The chained source may equal the destination only through
                // the explicit `[a, d]` shape, never via a rolled alias of
                // a fresh destination: with 2 registers the roller must
                // alternate.
                assert!(d.0 == 4 || d.0 == 5);
            }
        }
    }

    #[test]
    fn an_unused_narrow_window_is_harmless() {
        // Declaring a narrow window but never rolling under it aliases
        // nothing; the builder accepts it.
        let k = KernelBuilder::new("unused")
            .regs_per_thread(16)
            .ialu(2)
            .reg_window(3, 4)
            .build();
        validate(&k).unwrap();
    }

    #[test]
    fn loop_ids_are_unique() {
        let mut b = KernelBuilder::new("two-loops").regs_per_thread(4);
        let t0 = b.here();
        b = b.ialu(1).loop_back(t0, 2);
        let t1 = b.here();
        b = b.ialu(1).loop_back(t1, 3);
        let k = b.build();
        assert_eq!(k.program.num_loops(), 2);
        validate(&k).unwrap();
    }
}
