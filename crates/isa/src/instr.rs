//! Instructions and opcodes.

use serde::{Deserialize, Serialize};

use crate::pattern::{GlobalPattern, SharedPattern};
use crate::reg::Reg;

/// Maximum number of source operands an instruction can carry (FFMA needs 3).
pub const MAX_SRCS: usize = 3;

/// Operation performed by an [`Instr`].
///
/// Latencies are *not* encoded here; they come from the simulator's pipeline
/// configuration so that a single program can be simulated under different
/// machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Integer ALU op (add/sub/logic/compare/setp).
    IAlu,
    /// Integer multiply (longer latency class on the modelled GPU).
    IMul,
    /// Single-precision add.
    FAdd,
    /// Single-precision multiply.
    FMul,
    /// Fused multiply-add (three sources).
    FFma,
    /// Special-function unit op (rsqrt, sin, exp, ...).
    Sfu,
    /// Global-memory load with the given address pattern.
    LdGlobal(GlobalPattern),
    /// Global-memory store with the given address pattern.
    StGlobal(GlobalPattern),
    /// Scratchpad (shared-memory) load.
    LdShared(SharedPattern),
    /// Scratchpad (shared-memory) store.
    StShared(SharedPattern),
    /// Block-wide barrier, `__syncthreads()`.
    Barrier,
    /// Backward branch to instruction index `target`, taken `trips` times per
    /// warp (then falls through). `loop_id` indexes the warp's trip-counter
    /// table; ids must be unique within a program.
    BranchBack {
        target: u16,
        trips: u16,
        loop_id: u8,
    },
    /// Retire the warp.
    Exit,
}

impl Op {
    /// True for `LdGlobal`/`StGlobal` — the class the paper's *dynamic warp
    /// execution* optimization throttles for non-owner warps (Sec. IV-C).
    #[inline]
    pub fn is_global_mem(&self) -> bool {
        matches!(self, Op::LdGlobal(_) | Op::StGlobal(_))
    }

    /// True for scratchpad accesses.
    #[inline]
    pub fn is_shared_mem(&self) -> bool {
        matches!(self, Op::LdShared(_) | Op::StShared(_))
    }

    /// True for any memory access (global or scratchpad).
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.is_global_mem() || self.is_shared_mem()
    }

    /// True for control instructions (barrier / branch / exit).
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Op::Barrier | Op::BranchBack { .. } | Op::Exit)
    }

    /// Short mnemonic used by the disassembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::IAlu => "ialu",
            Op::IMul => "imul",
            Op::FAdd => "fadd",
            Op::FMul => "fmul",
            Op::FFma => "ffma",
            Op::Sfu => "sfu",
            Op::LdGlobal(_) => "ld.global",
            Op::StGlobal(_) => "st.global",
            Op::LdShared(_) => "ld.shared",
            Op::StShared(_) => "st.shared",
            Op::Barrier => "bar.sync",
            Op::BranchBack { .. } => "bra",
            Op::Exit => "exit",
        }
    }
}

/// One static instruction: an opcode plus register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instr {
    /// Operation.
    pub op: Op,
    /// Destination register (loads and arithmetic write one).
    pub dst: Option<Reg>,
    /// Source registers, `srcs[..nsrc]` are valid.
    pub srcs: [Reg; MAX_SRCS],
    /// Number of valid sources.
    pub nsrc: u8,
}

impl Instr {
    /// Build an instruction; panics if more than [`MAX_SRCS`] sources are
    /// given (a static program-construction error).
    pub fn new(op: Op, dst: Option<Reg>, srcs: &[Reg]) -> Self {
        assert!(srcs.len() <= MAX_SRCS, "at most {MAX_SRCS} sources");
        let mut s = [Reg(0); MAX_SRCS];
        s[..srcs.len()].copy_from_slice(srcs);
        Instr {
            op,
            dst,
            srcs: s,
            nsrc: srcs.len() as u8,
        }
    }

    /// Valid source operands.
    #[inline]
    pub fn sources(&self) -> &[Reg] {
        &self.srcs[..self.nsrc as usize]
    }

    /// Iterate every register operand (sources then destination).
    pub fn operands(&self) -> impl Iterator<Item = Reg> + '_ {
        self.sources().iter().copied().chain(self.dst)
    }

    /// PTX-flavoured one-line disassembly.
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(32);
        s.push_str(self.op.mnemonic());
        if let Op::BranchBack {
            target,
            trips,
            loop_id,
        } = self.op
        {
            let _ = write!(s, " L{target} (trips={trips}, loop={loop_id})");
            return s;
        }
        let mut first = true;
        if let Some(d) = self.dst {
            let _ = write!(s, " {d}");
            first = false;
        }
        for r in self.sources() {
            let _ = write!(s, "{} {r}", if first { "" } else { "," });
            first = false;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        let ld = Op::LdGlobal(GlobalPattern::Stream);
        let st = Op::StShared(SharedPattern::new(0, 64));
        assert!(ld.is_global_mem() && ld.is_mem() && !ld.is_shared_mem());
        assert!(st.is_shared_mem() && st.is_mem() && !st.is_global_mem());
        assert!(Op::Barrier.is_control());
        assert!(!Op::IAlu.is_mem() && !Op::IAlu.is_control());
    }

    #[test]
    fn instr_holds_sources_in_order() {
        let i = Instr::new(Op::FFma, Some(Reg(4)), &[Reg(1), Reg(2), Reg(3)]);
        assert_eq!(i.sources(), &[Reg(1), Reg(2), Reg(3)]);
        assert_eq!(
            i.operands().collect::<Vec<_>>(),
            vec![Reg(1), Reg(2), Reg(3), Reg(4)]
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_sources_panics() {
        let _ = Instr::new(Op::IAlu, None, &[Reg(0), Reg(1), Reg(2), Reg(3)]);
    }

    #[test]
    fn disasm_is_readable() {
        let i = Instr::new(Op::FAdd, Some(Reg(2)), &[Reg(0), Reg(1)]);
        assert_eq!(i.disasm(), "fadd $r2, $r0, $r1");
        let b = Instr::new(
            Op::BranchBack {
                target: 3,
                trips: 10,
                loop_id: 0,
            },
            None,
            &[],
        );
        assert_eq!(b.disasm(), "bra L3 (trips=10, loop=0)");
    }
}
