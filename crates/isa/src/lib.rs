//! # grs-isa — SIMT instruction-set model
//!
//! This crate defines the abstract machine language executed by the
//! [`grs-sim`](../grs_sim/index.html) cycle-level GPU simulator. It plays the
//! role that PTXPlus plays for GPGPU-Sim in the paper *Improving GPU
//! Performance Through Resource Sharing* (Jatala, Anantpur, Karkare; HPDC'16):
//! a register-based, in-order, warp-granular instruction stream with
//! explicit register declarations whose *declaration order* determines each
//! register's sequence number — the property exploited by the paper's
//! "Unrolling and Reordering of Register Declarations" optimization
//! (paper Sec. IV-B, Fig. 7).
//!
//! The ISA is deliberately small but covers everything the paper's evaluation
//! exercises:
//!
//! * integer/floating-point ALU and SFU arithmetic with distinct latencies,
//! * global loads/stores with parameterized *address patterns* (streaming,
//!   per-block tiles, shared tiles, scatter) so that cache behaviour under
//!   varying thread-block residency emerges naturally,
//! * scratchpad (shared-memory) loads/stores with explicit byte offsets, the
//!   quantity the scratchpad-sharing automaton (paper Fig. 4) classifies,
//! * block-wide barriers (`__syncthreads()`), the ingredient of the paper's
//!   deadlock scenario (Fig. 5),
//! * a back-edge branch with a static trip count, giving kernels realistic
//!   dynamic instruction counts without requiring divergence modelling,
//! * `Exit`, retiring a warp.
//!
//! A [`Kernel`] couples a [`Program`] with the launch footprint (threads per
//! block, registers per thread, scratchpad bytes per block, grid size) that
//! drives all of the paper's occupancy and sharing arithmetic.

pub mod builder;
pub mod instr;
pub mod kernel;
pub mod pattern;
pub mod program;
pub mod reg;
pub mod validate;

pub use builder::KernelBuilder;
pub use instr::{Instr, Op};
pub use kernel::Kernel;
pub use pattern::{GlobalPattern, SharedPattern};
pub use program::Program;
pub use reg::Reg;
pub use validate::{validate, ValidateError};

/// Number of threads in a warp; fixed at 32 as on all NVIDIA GPUs the paper
/// models (paper Sec. II).
pub const WARP_SIZE: u32 = 32;

/// Size in bytes of a memory transaction / cache line (GPGPU-Sim default).
pub const LINE_BYTES: u64 = 128;
