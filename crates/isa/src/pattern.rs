//! Memory address patterns.
//!
//! The paper's benchmarks are real CUDA programs; we model them (see
//! DESIGN.md, substitution table) with synthetic kernels whose memory
//! instructions carry a *pattern* describing how the 32 lanes of a warp
//! compute addresses. The simulator's coalescer expands a pattern into
//! 128-byte line transactions, and the L1/L2 models do the rest — so the
//! cache-contention effects the paper discusses (mri-q and LIB losing
//! performance when extra shared blocks thrash L1/L2, Sec. VI-B) emerge from
//! the same mechanism as on real hardware: more resident blocks ⇒ larger
//! combined working set ⇒ more capacity misses.

use serde::{Deserialize, Serialize};

/// How a warp's lanes address **global** memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalPattern {
    /// Perfectly coalesced streaming: the n-th dynamic execution of this
    /// instruction by a warp touches the n-th consecutive 128 B line of the
    /// warp's private stream. One transaction per access, no temporal reuse —
    /// the classic memory-bound pattern (MUM's output writes, stencil
    /// streams).
    Stream,
    /// Coalesced accesses that wrap around inside a *per-block tile* of
    /// `tile_lines` lines. Reuse within the tile gives L1 hits as long as the
    /// sum of resident blocks' tiles fits in L1 — the knob that reproduces
    /// "extra blocks increase L1 misses" (mri-q, LIB).
    BlockTile {
        /// Tile size in 128 B lines.
        tile_lines: u32,
    },
    /// Coalesced accesses into a tile *shared by every block of the kernel*
    /// (e.g. read-only coefficient tables). Hits in L1/L2 regardless of
    /// residency.
    KernelTile {
        /// Tile size in 128 B lines.
        tile_lines: u32,
    },
    /// Uncoalesced gather/scatter: each access produces `txns` distinct line
    /// transactions pseudo-randomly spread over a per-block span of
    /// `span_lines` lines (pointer chasing in MUM's suffix tree, b+tree node
    /// walks).
    Scatter {
        /// Span, in lines, of the per-block region addresses are drawn from.
        span_lines: u32,
        /// Transactions generated per warp access (1..=32).
        txns: u8,
    },
}

impl GlobalPattern {
    /// Number of 128 B transactions one warp-level execution generates.
    #[inline]
    pub fn transactions(self) -> u32 {
        match self {
            GlobalPattern::Stream
            | GlobalPattern::BlockTile { .. }
            | GlobalPattern::KernelTile { .. } => 1,
            GlobalPattern::Scatter { txns, .. } => txns.max(1) as u32,
        }
    }

    /// Clamped [`GlobalPattern::Scatter`] constructor: `txns` is held to the
    /// architectural 1..=32 band (one warp has 32 lanes, so a warp access
    /// can produce at most 32 distinct line transactions) and `span_lines`
    /// to at least 1. The generator frontend draws scatter shapes from
    /// seeded streams and relies on this clamp for unconditional validity.
    #[inline]
    pub fn scatter(span_lines: u32, txns: u8) -> Self {
        GlobalPattern::Scatter {
            span_lines: span_lines.max(1),
            txns: txns.clamp(1, 32),
        }
    }

    /// Size, in 128 B lines, of the address region this pattern confines a
    /// block's accesses to — the per-block working set that determines
    /// cache pressure. `None` for [`GlobalPattern::Stream`], whose footprint
    /// grows with every dynamic execution instead of wrapping.
    #[inline]
    pub fn footprint_lines(self) -> Option<u32> {
        match self {
            GlobalPattern::Stream => None,
            GlobalPattern::BlockTile { tile_lines } | GlobalPattern::KernelTile { tile_lines } => {
                Some(tile_lines)
            }
            GlobalPattern::Scatter { span_lines, .. } => Some(span_lines),
        }
    }
}

/// How a warp addresses the **scratchpad** (shared memory).
///
/// Scratchpad addresses are *byte offsets within the owning block's
/// allocation* (`0 .. smem_per_block`). The scratchpad-sharing automaton
/// (paper Fig. 4) classifies an access as *shared* when it touches any byte
/// past the `Rtb·t` boundary, so the only property that matters to the
/// sharing runtime is the highest byte touched, [`SharedPattern::max_byte`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharedPattern {
    /// First byte of the region this access touches.
    pub offset: u32,
    /// Number of bytes touched (the warp's lanes spread over it).
    pub bytes: u32,
}

impl SharedPattern {
    /// A warp-wide access to `bytes` bytes starting at `offset`.
    pub const fn new(offset: u32, bytes: u32) -> Self {
        SharedPattern { offset, bytes }
    }

    /// Highest byte offset touched (inclusive); compared against the sharing
    /// boundary by the Fig. 4 automaton.
    #[inline]
    pub const fn max_byte(self) -> u32 {
        self.offset + self.bytes.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_patterns_are_single_transaction() {
        assert_eq!(GlobalPattern::Stream.transactions(), 1);
        assert_eq!(GlobalPattern::BlockTile { tile_lines: 8 }.transactions(), 1);
        assert_eq!(
            GlobalPattern::KernelTile { tile_lines: 8 }.transactions(),
            1
        );
    }

    #[test]
    fn scatter_transaction_count_is_clamped_to_at_least_one() {
        assert_eq!(
            GlobalPattern::Scatter {
                span_lines: 64,
                txns: 0
            }
            .transactions(),
            1
        );
        assert_eq!(
            GlobalPattern::Scatter {
                span_lines: 64,
                txns: 7
            }
            .transactions(),
            7
        );
    }

    #[test]
    fn scatter_constructor_clamps_to_the_legal_band() {
        assert_eq!(
            GlobalPattern::scatter(0, 0),
            GlobalPattern::Scatter {
                span_lines: 1,
                txns: 1
            }
        );
        assert_eq!(
            GlobalPattern::scatter(64, 200),
            GlobalPattern::Scatter {
                span_lines: 64,
                txns: 32
            }
        );
        assert_eq!(
            GlobalPattern::scatter(7, 7),
            GlobalPattern::Scatter {
                span_lines: 7,
                txns: 7
            }
        );
    }

    #[test]
    fn footprint_lines_names_the_wrapping_patterns() {
        assert_eq!(GlobalPattern::Stream.footprint_lines(), None);
        assert_eq!(
            GlobalPattern::BlockTile { tile_lines: 8 }.footprint_lines(),
            Some(8)
        );
        assert_eq!(
            GlobalPattern::KernelTile { tile_lines: 5 }.footprint_lines(),
            Some(5)
        );
        assert_eq!(GlobalPattern::scatter(64, 4).footprint_lines(), Some(64));
    }

    #[test]
    fn shared_pattern_max_byte() {
        assert_eq!(SharedPattern::new(0, 128).max_byte(), 127);
        assert_eq!(SharedPattern::new(100, 1).max_byte(), 100);
        // Zero-length access degenerates to its own offset.
        assert_eq!(SharedPattern::new(100, 0).max_byte(), 100);
    }
}
