//! Property tests: every builder-generated kernel validates, dynamic length
//! accounting is consistent, and the declaration table stays a permutation.

use grs_isa::{GlobalPattern, KernelBuilder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn builder_output_always_validates(
        threads in 1u32..=1024,
        regs in 1u32..=64,
        smem in 0u32..=8192,
        alu in 0u32..=20,
        trips in 0u16..=50,
        ffma in 0u32..=10,
    ) {
        let mut b = KernelBuilder::new("prop")
            .threads_per_block(threads)
            .regs_per_thread(regs)
            .smem_per_block(smem)
            .grid_blocks(3);
        let top = b.here();
        b = b.ialu(alu).ffma(ffma).ld_global(GlobalPattern::Stream);
        if smem >= 64 {
            b = b.st_shared(0, 32).barrier().ld_shared(smem / 2, 16.min(smem - smem / 2));
        }
        b = b.loop_back(top, trips);
        let k = b.build();
        prop_assert!(grs_isa::validate(&k).is_ok(), "{:?}", grs_isa::validate(&k));
        // Dynamic length: loop body re-executes `trips` extra times.
        let body = (alu + ffma + 1 + if smem >= 64 { 3 } else { 0 } + 1) as u64;
        let expected = body * (u64::from(trips) + 1) + 1; // + exit
        prop_assert_eq!(k.dynamic_instrs_per_warp(), expected);
    }

    #[test]
    fn reg_window_keeps_operands_in_range(lo in 0u16..8, width in 2u16..8, regs in 8u32..=32) {
        let k = KernelBuilder::new("w")
            .regs_per_thread(regs)
            .reg_window(lo, lo + width)
            .ialu(20)
            .ffma(5)
            .build();
        let max = k.program.max_reg().unwrap_or(0);
        prop_assert!(u32::from(max) < regs);
        prop_assert!(max < lo + width || max < regs as u16);
    }

    #[test]
    fn one_register_windows_are_always_rejected(lo in 0u16..31, regs in 8u32..=32) {
        // Any window clamping to < 2 registers — declared width 1, or a
        // wider request starting at the register file's last register —
        // must fail `try_build` with `NarrowRegWindow`, never silently
        // alias operands.
        let narrow = KernelBuilder::new("narrow")
            .regs_per_thread(regs)
            .reg_window(lo, lo + 1)
            .ialu(4)
            .try_build();
        prop_assert!(matches!(
            narrow,
            Err(grs_isa::ValidateError::NarrowRegWindow { .. })
        ));
        let clamped = KernelBuilder::new("clamped")
            .regs_per_thread(regs)
            .reg_window(regs as u16 - 1, u16::MAX)
            .ialu(4)
            .try_build();
        prop_assert!(matches!(
            clamped,
            Err(grs_isa::ValidateError::NarrowRegWindow { .. })
        ));
    }
}
