//! Property tests for the simulator's memory components.

use grs_sim::cache::{Cache, CacheOutcome};
use grs_sim::server::ServerQueue;
use proptest::prelude::*;

proptest! {
    /// A line just loaded must hit on immediate re-access.
    #[test]
    fn loaded_line_hits_immediately(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(16 * 1024, 4, 128);
        for addr in addrs {
            c.access(addr);
            prop_assert_eq!(c.access(addr), CacheOutcome::Hit);
        }
    }

    /// Hits + misses equals the number of load accesses.
    #[test]
    fn cache_counters_are_conserved(addrs in proptest::collection::vec(0u64..1u64<<20, 1..300)) {
        let mut c = Cache::new(4 * 1024, 2, 128);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits + c.misses, addrs.len() as u64);
    }

    /// A working set that fits in one set's ways never misses after warmup.
    #[test]
    fn small_working_set_never_misses_after_warmup(start in 0u64..1000u64) {
        let mut c = Cache::new(16 * 1024, 4, 128);
        let lines: Vec<u64> = (0..3).map(|i| (start + i * c.sets() as u64) * 128).collect();
        for &l in &lines {
            c.access(l);
        }
        let misses = c.misses;
        for _ in 0..10 {
            for &l in &lines {
                c.access(l);
            }
        }
        prop_assert_eq!(c.misses, misses);
    }

    /// Server queue delays are non-negative and the backlog never exceeds
    /// (transactions × interval) cycles.
    #[test]
    fn server_queue_conserves_work(times in proptest::collection::vec(0u64..10_000, 1..100), q4 in 1u32..16) {
        let mut times = times;
        times.sort_unstable();
        let mut s = ServerQueue::new(q4);
        for &t in &times {
            let d = s.admit(t);
            prop_assert!(d <= times.len() as u64 * u64::from(q4) / 4 + 1);
        }
        prop_assert_eq!(s.serviced, times.len() as u64);
    }

    /// Admissions at strictly increasing, well-spaced times never queue.
    #[test]
    fn spaced_arrivals_have_zero_delay(n in 1usize..50, q4 in 1u32..8) {
        let mut s = ServerQueue::new(q4);
        for i in 0..n {
            let t = i as u64 * (u64::from(q4) + 4);
            prop_assert_eq!(s.admit(t), 0);
        }
    }
}
