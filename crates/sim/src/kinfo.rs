//! Preprocessed per-kernel information.
//!
//! Before a run, the simulator resolves everything that is static for the
//! whole simulation: the private/shared classification of every instruction
//! under the configured threshold (paper Figs. 3–4 steps (b)/(c) are pure
//! comparator logic, so we evaluate them once per static instruction), warp
//! shapes, and loop-table sizes. The per-instruction results are packed into
//! one [`InstrMeta`] record per static instruction so the per-cycle readiness
//! scan and issue paths touch a single contiguous table instead of several
//! parallel vectors plus the program itself.

use grs_core::{ResourceKind, Threshold};
use grs_isa::{Kernel, Op, WARP_SIZE};

use crate::warp::NO_REG;

/// Everything the simulator's hot paths need to know about one static
/// instruction, resolved once per run.
#[derive(Debug, Clone, Copy)]
pub struct InstrMeta {
    /// Scoreboard mask of all register operands (sources and destination).
    /// Requires `regs_per_thread ≤ 64`, checked by the simulator entry point.
    pub op_mask: u64,
    /// The operation, copied out of the program for locality.
    pub op: Op,
    /// Destination register, [`NO_REG`] when the instruction writes none.
    pub dst: u16,
    /// Line transactions one warp-level execution generates (0 for
    /// non-global-memory instructions). The event-driven memory model's
    /// issue gate reserves this much MSHR/DRAM-queue capacity up front.
    pub mem_txns: u8,
    /// Classification bits, see the `FLAG_*` constants.
    flags: u8,
}

const FLAG_GLOBAL_MEM: u8 = 1 << 0;
const FLAG_SHARED_MEM: u8 = 1 << 1;
const FLAG_SHARED_REG: u8 = 1 << 2;
const FLAG_SHARED_SMEM: u8 = 1 << 3;
const FLAG_EXIT: u8 = 1 << 4;
const FLAG_GLOBAL_LOAD: u8 = 1 << 5;

impl InstrMeta {
    /// Global-memory load or store?
    #[inline]
    pub fn is_global_mem(&self) -> bool {
        self.flags & FLAG_GLOBAL_MEM != 0
    }

    /// Scratchpad load or store?
    #[inline]
    pub fn is_shared_mem(&self) -> bool {
        self.flags & FLAG_SHARED_MEM != 0
    }

    /// Touches a register classified *shared* under the run's threshold?
    #[inline]
    pub fn uses_shared_reg(&self) -> bool {
        self.flags & FLAG_SHARED_REG != 0
    }

    /// Touches scratchpad classified *shared* under the run's threshold?
    #[inline]
    pub fn uses_shared_smem(&self) -> bool {
        self.flags & FLAG_SHARED_SMEM != 0
    }

    /// Global-memory **load** (allocates an MSHR entry on an L2 miss under
    /// the event-driven model)?
    #[inline]
    pub fn is_global_load(&self) -> bool {
        self.flags & FLAG_GLOBAL_LOAD != 0
    }

    /// Warp retirement?
    #[inline]
    pub fn is_exit(&self) -> bool {
        self.flags & FLAG_EXIT != 0
    }
}

/// Immutable, preprocessed view of a kernel for one run configuration.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// The (possibly transform-optimized) kernel.
    pub kernel: Kernel,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Active threads in each warp of a block (last warp may be partial,
    /// e.g. b+tree's 508-thread blocks).
    pub threads_in_warp: Vec<u32>,
    /// Number of per-thread registers classified *private* under the run's
    /// threshold: a register is shared iff its declaration sequence number
    /// is `≥ private_regs` (the `Rw·t` boundary of Fig. 3 expressed in
    /// per-thread register sequence numbers).
    pub private_regs: u16,
    /// Scratchpad bytes classified private per block (`Rtb·t` of Fig. 4).
    pub private_smem: u32,
    /// Per static instruction: packed scan/issue metadata.
    pub meta: Vec<InstrMeta>,
    /// Loop-counter table size per warp.
    pub num_loops: usize,
}

impl KernelInfo {
    /// Preprocess `kernel` for a run with the given sharing resource (or
    /// `None` for a baseline run, in which case everything is private).
    pub fn new(kernel: Kernel, sharing: Option<ResourceKind>, threshold: Threshold) -> Self {
        let warps_per_block = kernel.warps_per_block();
        let mut threads_in_warp = Vec::with_capacity(warps_per_block as usize);
        let mut remaining = kernel.threads_per_block;
        for _ in 0..warps_per_block {
            threads_in_warp.push(remaining.min(WARP_SIZE));
            remaining = remaining.saturating_sub(WARP_SIZE);
        }

        // Private boundaries: with sharing disabled for a resource, every
        // access to it is private (boundary = everything).
        let private_regs = match sharing {
            Some(ResourceKind::Registers) => {
                // Rw·t warp registers = t·regs_per_thread per-thread regs.
                (threshold.t() * f64::from(kernel.regs_per_thread)).floor() as u16
            }
            _ => kernel.regs_per_thread as u16,
        };
        let private_smem = match sharing {
            Some(ResourceKind::Scratchpad) => threshold.private_units(kernel.smem_per_block),
            _ => kernel.smem_per_block,
        };

        let meta: Vec<InstrMeta> = kernel
            .program
            .instrs
            .iter()
            .map(|i| {
                let mut flags = 0u8;
                let mut mem_txns = 0u8;
                if i.op.is_global_mem() {
                    flags |= FLAG_GLOBAL_MEM;
                    if let Op::LdGlobal(p) | Op::StGlobal(p) = i.op {
                        if matches!(i.op, Op::LdGlobal(_)) {
                            flags |= FLAG_GLOBAL_LOAD;
                        }
                        mem_txns = p.transactions().min(255) as u8;
                    }
                }
                if i.op.is_shared_mem() {
                    flags |= FLAG_SHARED_MEM;
                }
                if i.operands().any(|r| kernel.seq_of(r) >= private_regs) {
                    flags |= FLAG_SHARED_REG;
                }
                if let Op::LdShared(p) | Op::StShared(p) = i.op {
                    if p.max_byte() >= private_smem {
                        flags |= FLAG_SHARED_SMEM;
                    }
                }
                if matches!(i.op, Op::Exit) {
                    flags |= FLAG_EXIT;
                }
                InstrMeta {
                    op_mask: i.operands().fold(0u64, |m, r| m | (1 << (r.0 as u64 & 63))),
                    op: i.op,
                    dst: i.dst.map(|d| d.0).unwrap_or(NO_REG),
                    mem_txns,
                    flags,
                }
            })
            .collect();
        let num_loops = kernel.program.num_loops();

        KernelInfo {
            warps_per_block,
            threads_in_warp,
            private_regs,
            private_smem,
            meta,
            num_loops,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::{GlobalPattern, KernelBuilder};

    fn kernel() -> Kernel {
        KernelBuilder::new("k")
            .threads_per_block(508)
            .regs_per_thread(24)
            .smem_per_block(2180)
            .grid_blocks(4)
            .ialu(2)
            .ld_shared(0, 128)
            .ld_shared(2000, 64)
            .ld_global(GlobalPattern::Stream)
            .build()
    }

    #[test]
    fn partial_last_warp() {
        let ki = KernelInfo::new(kernel(), None, Threshold::paper_default());
        assert_eq!(ki.warps_per_block, 16);
        assert_eq!(ki.threads_in_warp[0], 32);
        assert_eq!(ki.threads_in_warp[15], 508 - 15 * 32); // 28 threads
    }

    #[test]
    fn baseline_marks_nothing_shared() {
        let ki = KernelInfo::new(kernel(), None, Threshold::paper_default());
        assert!(ki.meta.iter().all(|m| !m.uses_shared_reg()));
        assert!(ki.meta.iter().all(|m| !m.uses_shared_smem()));
    }

    #[test]
    fn register_sharing_boundary() {
        let ki = KernelInfo::new(
            kernel(),
            Some(ResourceKind::Registers),
            Threshold::paper_default(),
        );
        // t = 0.1, 24 regs/thread → 2 private per-thread registers.
        assert_eq!(ki.private_regs, 2);
        // Scratchpad untouched by register sharing.
        assert_eq!(ki.private_smem, 2180);
        assert!(ki.meta.iter().all(|m| !m.uses_shared_smem()));
        // Some instruction uses registers ≥ seq 2.
        assert!(ki.meta.iter().any(|m| m.uses_shared_reg()));
    }

    #[test]
    fn scratchpad_sharing_boundary() {
        let ki = KernelInfo::new(
            kernel(),
            Some(ResourceKind::Scratchpad),
            Threshold::paper_default(),
        );
        // t = 0.1 → 218 private bytes.
        assert_eq!(ki.private_smem, 218);
        // The 0..128 access is private; the access ending at 2063 is shared.
        let shared_flags: Vec<bool> = ki
            .meta
            .iter()
            .filter(|m| m.is_shared_mem())
            .map(|m| m.uses_shared_smem())
            .collect();
        assert_eq!(shared_flags, vec![false, true]);
        // Registers untouched by scratchpad sharing.
        assert!(ki.meta.iter().all(|m| !m.uses_shared_reg()));
    }

    #[test]
    fn meta_mirrors_the_program() {
        let ki = KernelInfo::new(kernel(), None, Threshold::paper_default());
        assert_eq!(ki.meta.len(), ki.kernel.program.instrs.len());
        for (m, i) in ki.meta.iter().zip(&ki.kernel.program.instrs) {
            assert_eq!(m.op, i.op);
            assert_eq!(m.is_global_mem(), i.op.is_global_mem());
            assert_eq!(m.is_shared_mem(), i.op.is_shared_mem());
            assert_eq!(m.is_exit(), matches!(i.op, Op::Exit));
            assert_eq!(m.is_global_load(), matches!(i.op, Op::LdGlobal(_)));
            let expect_txns = match i.op {
                Op::LdGlobal(p) | Op::StGlobal(p) => p.transactions().min(255) as u8,
                _ => 0,
            };
            assert_eq!(m.mem_txns, expect_txns);
            assert_eq!(m.dst, i.dst.map(|d| d.0).unwrap_or(NO_REG));
            let expect_mask = i
                .operands()
                .fold(0u64, |acc, r| acc | (1 << (r.0 as u64 & 63)));
            assert_eq!(m.op_mask, expect_mask);
        }
    }
}
