//! Preprocessed per-kernel information.
//!
//! Before a run, the simulator resolves everything that is static for the
//! whole simulation: the private/shared classification of every instruction
//! under the configured threshold (paper Figs. 3–4 steps (b)/(c) are pure
//! comparator logic, so we evaluate them once per static instruction), warp
//! shapes, and loop-table sizes.

use grs_core::{ResourceKind, Threshold};
use grs_isa::{Kernel, Op, WARP_SIZE};

/// Immutable, preprocessed view of a kernel for one run configuration.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// The (possibly transform-optimized) kernel.
    pub kernel: Kernel,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Active threads in each warp of a block (last warp may be partial,
    /// e.g. b+tree's 508-thread blocks).
    pub threads_in_warp: Vec<u32>,
    /// Number of per-thread registers classified *private* under the run's
    /// threshold: a register is shared iff its declaration sequence number
    /// is `≥ private_regs` (the `Rw·t` boundary of Fig. 3 expressed in
    /// per-thread register sequence numbers).
    pub private_regs: u16,
    /// Scratchpad bytes classified private per block (`Rtb·t` of Fig. 4).
    pub private_smem: u32,
    /// Per static instruction: does it touch a shared register?
    pub uses_shared_reg: Vec<bool>,
    /// Per static instruction: does it touch shared scratchpad?
    pub uses_shared_smem: Vec<bool>,
    /// Per static instruction: scoreboard mask of all register operands
    /// (sources and destination). Requires `regs_per_thread ≤ 64`, checked
    /// by the simulator entry point.
    pub op_masks: Vec<u64>,
    /// Loop-counter table size per warp.
    pub num_loops: usize,
}

impl KernelInfo {
    /// Preprocess `kernel` for a run with the given sharing resource (or
    /// `None` for a baseline run, in which case everything is private).
    pub fn new(kernel: Kernel, sharing: Option<ResourceKind>, threshold: Threshold) -> Self {
        let warps_per_block = kernel.warps_per_block();
        let mut threads_in_warp = Vec::with_capacity(warps_per_block as usize);
        let mut remaining = kernel.threads_per_block;
        for _ in 0..warps_per_block {
            threads_in_warp.push(remaining.min(WARP_SIZE));
            remaining = remaining.saturating_sub(WARP_SIZE);
        }

        // Private boundaries: with sharing disabled for a resource, every
        // access to it is private (boundary = everything).
        let private_regs = match sharing {
            Some(ResourceKind::Registers) => {
                // Rw·t warp registers = t·regs_per_thread per-thread regs.
                (threshold.t() * f64::from(kernel.regs_per_thread)).floor() as u16
            }
            _ => kernel.regs_per_thread as u16,
        };
        let private_smem = match sharing {
            Some(ResourceKind::Scratchpad) => threshold.private_units(kernel.smem_per_block),
            _ => kernel.smem_per_block,
        };

        let uses_shared_reg: Vec<bool> = kernel
            .program
            .instrs
            .iter()
            .map(|i| i.operands().any(|r| kernel.seq_of(r) >= private_regs))
            .collect();
        let uses_shared_smem: Vec<bool> = kernel
            .program
            .instrs
            .iter()
            .map(|i| match i.op {
                Op::LdShared(p) | Op::StShared(p) => p.max_byte() >= private_smem,
                _ => false,
            })
            .collect();
        let op_masks: Vec<u64> = kernel
            .program
            .instrs
            .iter()
            .map(|i| i.operands().fold(0u64, |m, r| m | (1 << (r.0 as u64 & 63))))
            .collect();
        let num_loops = kernel.program.num_loops();

        KernelInfo {
            warps_per_block,
            threads_in_warp,
            private_regs,
            private_smem,
            uses_shared_reg,
            uses_shared_smem,
            op_masks,
            num_loops,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::{GlobalPattern, KernelBuilder};

    fn kernel() -> Kernel {
        KernelBuilder::new("k")
            .threads_per_block(508)
            .regs_per_thread(24)
            .smem_per_block(2180)
            .grid_blocks(4)
            .ialu(2)
            .ld_shared(0, 128)
            .ld_shared(2000, 64)
            .ld_global(GlobalPattern::Stream)
            .build()
    }

    #[test]
    fn partial_last_warp() {
        let ki = KernelInfo::new(kernel(), None, Threshold::paper_default());
        assert_eq!(ki.warps_per_block, 16);
        assert_eq!(ki.threads_in_warp[0], 32);
        assert_eq!(ki.threads_in_warp[15], 508 - 15 * 32); // 28 threads
    }

    #[test]
    fn baseline_marks_nothing_shared() {
        let ki = KernelInfo::new(kernel(), None, Threshold::paper_default());
        assert!(ki.uses_shared_reg.iter().all(|&b| !b));
        assert!(ki.uses_shared_smem.iter().all(|&b| !b));
    }

    #[test]
    fn register_sharing_boundary() {
        let ki = KernelInfo::new(
            kernel(),
            Some(ResourceKind::Registers),
            Threshold::paper_default(),
        );
        // t = 0.1, 24 regs/thread → 2 private per-thread registers.
        assert_eq!(ki.private_regs, 2);
        // Scratchpad untouched by register sharing.
        assert_eq!(ki.private_smem, 2180);
        assert!(ki.uses_shared_smem.iter().all(|&b| !b));
        // Some instruction uses registers ≥ seq 2.
        assert!(ki.uses_shared_reg.iter().any(|&b| b));
    }

    #[test]
    fn scratchpad_sharing_boundary() {
        let ki = KernelInfo::new(
            kernel(),
            Some(ResourceKind::Scratchpad),
            Threshold::paper_default(),
        );
        // t = 0.1 → 218 private bytes.
        assert_eq!(ki.private_smem, 218);
        // The 0..128 access is private; the access ending at 2063 is shared.
        let shared_flags: Vec<bool> = ki
            .kernel
            .program
            .instrs
            .iter()
            .zip(&ki.uses_shared_smem)
            .filter(|(i, _)| i.op.is_shared_mem())
            .map(|(_, &f)| f)
            .collect();
        assert_eq!(shared_flags, vec![false, true]);
        // Registers untouched by scratchpad sharing.
        assert!(ki.uses_shared_reg.iter().all(|&b| !b));
    }
}
