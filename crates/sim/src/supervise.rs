//! Supervised execution: checkpoint/resume, the forward-progress watchdog,
//! panic recovery with graceful degradation, and deterministic fault
//! injection.
//!
//! ## Checkpoint/resume
//!
//! A [`crate::gpu::Snapshot`] is a deep copy of the whole deterministic
//! machine — per-SM warp/slot/wheel state, event-model MSHR/DRAM partition
//! tables, dispatcher, throttle RNG streams — plus the engine-loop
//! bookkeeping ([`crate::gpu::EngineState`]). With
//! [`crate::run::RunConfig::checkpoint_every`] set, the supervisor runs the
//! simulation as a sequence of bounded spans and snapshots at each
//! boundary; restoring any snapshot and running on is **bit-identical** to
//! a straight run (`tests/checkpoint_resume.rs` pins this across the
//! scheduler × sharing × memory-model matrix). The boundary itself is
//! unobservable: no SM steps before its wake-up cycle and the throttle's
//! lazy crediting is path-independent, so re-entering the loop at the stop
//! cycle replays nothing and skips nothing.
//!
//! ## Watchdog
//!
//! The machine can genuinely livelock (e.g. a configuration whose per-warp
//! MSHR quota is zero leaves every global-memory warp permanently blocked).
//! Rather than burning cycles to `max_cycles`, the watchdog
//! ([`crate::run::RunConfig::watchdog`]) trips when a full window of `w`
//! cycles elapses past the *progress watermark* — the latest issue and the
//! latest event ever scheduled on any timing wheel
//! ([`crate::gpu::Gpu::progress_watermark`]). Past the watermark every
//! wheel is provably empty and no warp state can ever change, so the trip
//! is a proof of livelock, not a guess; and because the watermark's inputs
//! are engine-invariant, the per-cycle, fast-forward and sharded engines
//! all trip at the same cycle with bit-identical statistics. The run ends
//! with a populated [`StallDiagnosis`] in the [`RunReport`].
//!
//! ## Panic recovery and the degradation ladder
//!
//! Sharded workers free-run under `catch_unwind` with poisoned-barrier
//! escape (see [`crate::shard`]). A faulted span never corrupts the run:
//! the supervisor restores the most recent snapshot (sharded runs always
//! keep at least the pristine post-launch state), halves the shard count —
//! `n → n/2 → … → 1 → sequential` — and replays. Replay is deterministic,
//! so the recovered run's statistics are bit-identical to an undisturbed
//! one (`tests/fault_injection.rs`). Every hop is recorded as a
//! [`RecoveryEvent`] in the report; after [`MAX_RECOVERIES`] the supervisor
//! forces the sequential engine, which has no worker threads and cannot
//! fault.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] names `(epoch, shard)` points at which a shard's
//! free-run phase panics on purpose, either from an explicit list or a
//! seeded xorshift draw. Each fault fires exactly once, in threaded and
//! inline (`GRS_SHARD_THREADS=never`) modes alike, which is what lets the
//! test suite prove the recovery path end to end.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::gpu::{EngineState, Gpu, Snapshot, SpanEnd};
use crate::kinfo::KernelInfo;
use crate::run::RunConfig;
use crate::shard::{run_sharded_span, ShardSpanEnd};
use crate::stats::SimStats;
use crate::telemetry::{assemble, Ring, TelemetryEvent, TelemetryReport};

/// Recovery attempts after which the supervisor stops degrading gradually
/// and forces the sequential engine outright.
pub const MAX_RECOVERIES: usize = 16;

/// One deterministic injected fault: the worker servicing `shard` panics at
/// the start of parallel free-run phase number `epoch`.
#[derive(Debug)]
struct Fault {
    epoch: u64,
    shard: usize,
    fired: AtomicBool,
}

/// A deterministic schedule of injected worker panics, for exercising the
/// recovery path ([`crate::run::Simulator::try_run_report_with_faults`]).
/// Each fault fires at most once across the whole supervised run —
/// including replays after recovery — so a plan with one fault proves one
/// full recovery cycle.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Faults at the given `(epoch, shard)` points.
    pub fn at(points: &[(u64, usize)]) -> Self {
        FaultPlan {
            faults: points
                .iter()
                .map(|&(epoch, shard)| Fault {
                    epoch,
                    shard,
                    fired: AtomicBool::new(false),
                })
                .collect(),
        }
    }

    /// `count` faults drawn from a seeded xorshift64* stream over
    /// `epoch < max_epoch`, `shard < max_shard`. Deterministic in `seed`.
    pub fn seeded(seed: u64, count: usize, max_epoch: u64, max_shard: usize) -> Self {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let points: Vec<(u64, usize)> = (0..count)
            .map(|_| {
                (
                    next() % max_epoch.max(1),
                    (next() % max_shard.max(1) as u64) as usize,
                )
            })
            .collect();
        Self::at(&points)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// No faults scheduled?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.fired.load(Ordering::Acquire))
            .count()
    }

    /// The scheduled `(epoch, shard)` points, in plan order, independent of
    /// whether they have fired. Two plans with equal points inject the same
    /// deterministic fault schedule, so this is the plan's *identity* — what
    /// a memoizing sweep service keys on when a fault plan rides along with
    /// a job.
    pub fn points(&self) -> Vec<(u64, usize)> {
        self.faults.iter().map(|f| (f.epoch, f.shard)).collect()
    }

    /// Consume the fault at `(epoch, shard)` if one is scheduled and has
    /// not fired yet. Called from worker threads and the coordinator.
    pub(crate) fn take(&self, epoch: u64, shard: usize) -> bool {
        self.faults.iter().any(|f| {
            f.epoch == epoch
                && f.shard == shard
                && f.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
        })
    }
}

/// Why a supervised run ended, beyond what [`SimStats`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The grid drained.
    Completed,
    /// `max_cycles` elapsed with work still in flight.
    TimedOut,
    /// The forward-progress watchdog proved a livelock (see the module
    /// docs) and ended the run early with a diagnosis.
    Stalled(Box<StallDiagnosis>),
}

/// One hop down the degradation ladder, recorded when a faulted span was
/// rolled back and replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Cycle of the snapshot the run was rolled back to.
    pub at_cycle: u64,
    /// Shard count of the faulted attempt.
    pub from_shards: usize,
    /// Shard count of the replay (`None`: the sequential engine).
    pub to_shards: Option<usize>,
    /// The faulted worker's panic message.
    pub reason: String,
}

/// Structured diagnosis of a watchdog trip: where every SM and the memory
/// system stood when the machine provably could not progress any more.
#[derive(Debug, Clone, PartialEq)]
pub struct StallDiagnosis {
    /// Cycle the watchdog tripped at (`last_progress` + `window`).
    pub at_cycle: u64,
    /// The configured watchdog window.
    pub window: u64,
    /// The progress watermark: the latest issue or scheduled event.
    pub last_progress: u64,
    /// Grid blocks never dispatched.
    pub blocks_undispatched: u32,
    /// Per-SM state at the trip.
    pub sms: Vec<SmDiag>,
    /// Memory-system state at the trip.
    pub mem: MemDiag,
}

impl std::fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "livelock proven at cycle {}: no progress since cycle {} \
             (watchdog window {}), {} grid blocks never dispatched",
            self.at_cycle, self.last_progress, self.window, self.blocks_undispatched
        )?;
        for sm in &self.sms {
            write!(
                f,
                "  SM {}: {} blocks, live warps: {}, ",
                sm.id, sm.live_blocks, sm.live_warps
            )?;
            match sm.next_wake {
                Some(w) => write!(f, "next wake at {w}")?,
                None => write!(f, "no pending wake")?,
            }
            writeln!(
                f,
                ", gate-blocked warps: {} mshr / {} dram{}",
                sm.gate_mshr,
                sm.gate_dram,
                if sm.sleeping { ", sleeping" } else { "" }
            )?;
        }
        write!(
            f,
            "  MEM: {} MSHR + {} DRAM-queue entries in flight, ",
            self.mem.mshr_in_flight, self.mem.dram_queue_in_flight
        )?;
        match self.mem.next_release {
            Some(r) => write!(f, "next release at {r}"),
            None => write!(f, "no pending release"),
        }
    }
}

/// One SM's state inside a [`StallDiagnosis`].
#[derive(Debug, Clone, PartialEq)]
pub struct SmDiag {
    /// SM index.
    pub id: usize,
    /// Blocks resident.
    pub live_blocks: u32,
    /// Any unfinished warp?
    pub live_warps: bool,
    /// Earliest pending writeback, if any (none in a livelock).
    pub next_wake: Option<u64>,
    /// Warps blocked by event-model MSHR back-pressure at the last scan.
    pub gate_mshr: u32,
    /// Warps blocked by event-model DRAM-queue back-pressure at the last
    /// scan.
    pub gate_dram: u32,
    /// Was the SM inside a sleep span when the watchdog tripped?
    pub sleeping: bool,
}

/// Memory-system state inside a [`StallDiagnosis`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemDiag {
    /// Earliest pending MSHR/DRAM capacity release (none in a livelock).
    pub next_release: Option<u64>,
    /// MSHR entries in flight across all partitions.
    pub mshr_in_flight: u32,
    /// DRAM-queue slots in flight across all partitions.
    pub dram_queue_in_flight: u32,
}

/// Per-service counters of a memoizing sweep service (the `grs-bench`
/// service layer): how many jobs were submitted, how many were answered
/// without simulating (in-flight dedup and memo hits), and how the executed
/// remainder fared. Lives here — next to [`RunReport`] — so a report
/// rendered through [`RunReport::summary_with`] can surface the service
/// context a result was served under.
///
/// Every run is deterministic by construction (the repository's
/// bit-identity test suites pin this), which is what makes exact
/// content-hash memoization sound: `deduped + memo_hits` submissions were
/// answered from a single execution with *bit-identical* statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted to the service.
    pub submitted: u64,
    /// Submissions attached to an already in-flight identical job
    /// (in-flight dedup; the subscriber shares the first submission's run).
    pub deduped: u64,
    /// Submissions answered from the memo store without simulating.
    pub memo_hits: u64,
    /// Jobs actually simulated by a worker.
    pub executed: u64,
    /// Executed jobs that recovered from a fault — a worker-level panic
    /// retry or a supervision-ladder [`RecoveryEvent`] inside the run.
    pub recovered: u64,
    /// Executed jobs that failed even after the recovery path.
    pub failed: u64,
    /// Memo-store entries evicted by the bounded LRU.
    pub evicted: u64,
}

impl ServiceStats {
    /// Fraction of submissions answered without simulating (0 when nothing
    /// was submitted).
    pub fn hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.deduped + self.memo_hits) as f64 / self.submitted as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "service: {} submitted, {} deduped in-flight, {} memo hits, \
             {} executed, {} recovered, {} failed, {} evicted",
            self.submitted,
            self.deduped,
            self.memo_hits,
            self.executed,
            self.recovered,
            self.failed,
            self.evicted
        )
    }
}

/// Everything a supervised run reports: the statistics (bit-identical to an
/// unsupervised run of the same configuration), how it ended, the recovery
/// path taken, and how many checkpoints were written.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Aggregated simulation statistics.
    pub stats: SimStats,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Degradation-ladder hops taken to survive faulted spans (empty on an
    /// undisturbed run).
    pub recoveries: Vec<RecoveryEvent>,
    /// Snapshots taken at `checkpoint_every` boundaries.
    pub checkpoints: u64,
    /// Collected telemetry, when [`crate::run::RunConfig::telemetry`] was
    /// set (`None` otherwise).
    pub telemetry: Option<TelemetryReport>,
}

impl RunReport {
    /// Did the grid drain?
    pub fn completed(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }

    /// Multi-line human-readable summary of the run: outcome, headline
    /// statistics, the stall breakdown, and the supervision/telemetry
    /// footprint.
    pub fn summary(&self) -> String {
        self.summary_with(None)
    }

    /// [`Self::summary`] plus, when given, the [`ServiceStats`] of the sweep
    /// service that served this report — so a memoized result prints the
    /// dedup/memo context it was answered under.
    pub fn summary_with(&self, service: Option<&ServiceStats>) -> String {
        use std::fmt::Write as _;
        let s = &self.stats;
        let mut out = String::new();
        match &self.outcome {
            RunOutcome::Completed => {
                let _ = writeln!(out, "outcome: completed in {} cycles", s.cycles);
            }
            RunOutcome::TimedOut => {
                let _ = writeln!(out, "outcome: timed out after {} cycles", s.cycles);
            }
            RunOutcome::Stalled(d) => {
                let _ = writeln!(out, "outcome: stalled (watchdog)\n{d}");
            }
        }
        let _ = writeln!(
            out,
            "blocks: {} completed; instrs: {} warp / {} thread; IPC {:.3}",
            s.blocks_completed,
            s.warp_instrs,
            s.thread_instrs,
            s.ipc()
        );
        let _ = writeln!(
            out,
            "idle breakdown: {} scoreboard, {} barrier, {} no-ready (of {} idle); \
             {} pipeline-stall cycles (mem gate)",
            s.stall_scoreboard_cycles,
            s.stall_barrier_cycles,
            s.stall_no_ready_cycles,
            s.idle_cycles,
            s.stall_mem_gate_cycles,
        );
        let _ = writeln!(
            out,
            "supervision: {} checkpoints, {} recoveries",
            self.checkpoints,
            self.recoveries.len()
        );
        for r in &self.recoveries {
            let to = match r.to_shards {
                Some(n) => format!("{n} shards"),
                None => "sequential".to_string(),
            };
            let _ = writeln!(
                out,
                "  rollback to cycle {}: {} shards -> {} ({})",
                r.at_cycle, r.from_shards, to, r.reason
            );
        }
        if let Some(t) = &self.telemetry {
            let _ = writeln!(out, "telemetry: {}", t.summary());
        }
        if let Some(s) = service {
            let _ = writeln!(out, "{s}");
        }
        out
    }
}

/// Capture a [`StallDiagnosis`] from the machine state at the trip cycle.
fn diagnose(gpu: &Gpu, st: &EngineState, window: u64) -> StallDiagnosis {
    StallDiagnosis {
        at_cycle: st.cycle,
        window,
        last_progress: gpu.progress_watermark(st),
        blocks_undispatched: gpu.dispatcher.remaining(),
        sms: gpu
            .sms
            .iter()
            .enumerate()
            .map(|(i, sm)| {
                let (gate_mshr, gate_dram) = sm.gate_block_counts();
                SmDiag {
                    id: sm.id,
                    live_blocks: sm.live_blocks(),
                    live_warps: sm.has_live_warps(),
                    next_wake: sm.next_wake(),
                    gate_mshr,
                    gate_dram,
                    sleeping: st.sleep_from.get(i).copied().flatten().is_some(),
                }
            })
            .collect(),
        mem: {
            let (mshr_in_flight, dram_queue_in_flight) = gpu.shared.in_flight();
            MemDiag {
                next_release: gpu.shared.next_release(),
                mshr_in_flight,
                dram_queue_in_flight,
            }
        },
    }
}

/// Halve the shard count; `1` drops to the sequential engine.
fn degrade(shards: usize) -> Option<usize> {
    if shards > 1 {
        Some(shards / 2)
    } else {
        None
    }
}

/// Run `gpu` to completion under supervision: bounded spans with optional
/// checkpoints, the watchdog, and rollback-and-degrade recovery of faulted
/// sharded spans. With every knob off this reduces exactly to
/// [`Gpu::run`] / the sharded engine (single unbounded span, no snapshot
/// beyond the pristine one sharded runs keep for recovery).
pub(crate) fn supervise(
    cfg: &RunConfig,
    mut gpu: Gpu,
    kinfo: &KernelInfo,
    fault: Option<&FaultPlan>,
) -> RunReport {
    let max_cycles = cfg.max_cycles;
    let watchdog = cfg.watchdog.map(|w| w.max(1));
    let mut st = gpu.start(kinfo);
    let mut shards = cfg.shards;
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut checkpoints = 0u64;
    let mut epoch = 0u64;
    // Rollback point for recovery: the latest checkpoint, or the pristine
    // post-launch state. Only sharded runs can fault, so only they pay for
    // the initial deep copy.
    let mut restart: Option<Snapshot> = shards.is_some().then(|| gpu.snapshot(&st));
    let mut stalled = false;
    // The engine track lives here, outside the machine, so a rollback
    // cannot erase the recovery history it records.
    let trace = cfg.telemetry.is_some();
    let mut engine: Ring<(u64, TelemetryEvent)> =
        Ring::new(cfg.telemetry.map_or(1, |t| t.capacity));
    let mut last_watermark: Option<u64> = None;
    while !gpu.finished() && st.cycle < max_cycles && !stalled {
        if trace && watchdog.is_some() {
            let wm = gpu.progress_watermark(&st);
            if last_watermark != Some(wm) {
                engine.push((st.cycle, TelemetryEvent::WatermarkUpdate { watermark: wm }));
                last_watermark = Some(wm);
            }
        }
        let stop = match cfg.checkpoint_every {
            Some(k) if k > 0 => max_cycles.min((st.cycle / k + 1) * k),
            _ => max_cycles,
        };
        match shards {
            Some(n) => {
                match run_sharded_span(
                    &mut gpu, &mut st, kinfo, stop, n, watchdog, fault, &mut epoch,
                ) {
                    ShardSpanEnd::Finished | ShardSpanEnd::ReachedStop => {}
                    ShardSpanEnd::Stalled => stalled = true,
                    ShardSpanEnd::Faulted(reason) => {
                        let snap = restart
                            .as_ref()
                            .expect("sharded runs keep a rollback point");
                        st = gpu.restore(snap);
                        let to_shards = if recoveries.len() + 1 >= MAX_RECOVERIES {
                            None
                        } else {
                            degrade(n)
                        };
                        if trace {
                            engine.push((
                                snap.cycle(),
                                TelemetryEvent::Recovery {
                                    from_shards: n as u32,
                                    to_shards: to_shards.map_or(0, |s| s as u32),
                                },
                            ));
                        }
                        recoveries.push(RecoveryEvent {
                            at_cycle: snap.cycle(),
                            from_shards: n,
                            to_shards,
                            reason,
                        });
                        shards = to_shards;
                        continue;
                    }
                }
            }
            None => {
                if gpu.run_until(&mut st, kinfo, stop, watchdog) == SpanEnd::Stalled {
                    stalled = true;
                }
            }
        }
        if cfg.checkpoint_every.is_some() && !stalled && !gpu.finished() && st.cycle < max_cycles {
            restart = Some(gpu.snapshot(&st));
            checkpoints += 1;
            if trace {
                engine.push((st.cycle, TelemetryEvent::CheckpointCut));
            }
        }
    }
    let outcome = if stalled {
        RunOutcome::Stalled(Box::new(diagnose(&gpu, &st, watchdog.unwrap_or(0))))
    } else if gpu.finished() {
        RunOutcome::Completed
    } else {
        RunOutcome::TimedOut
    };
    let stats = gpu.finish(st);
    let telemetry = trace.then(|| {
        let (sms, mem) = gpu.take_telemetry();
        assemble(sms, mem, engine)
    });
    RunReport {
        stats,
        outcome,
        recoveries,
        checkpoints,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_fire_each_point_exactly_once() {
        let plan = FaultPlan::at(&[(3, 1), (5, 0)]);
        assert_eq!(plan.len(), 2);
        assert!(!plan.take(3, 0));
        assert!(plan.take(3, 1));
        assert!(!plan.take(3, 1), "a fault fires only once");
        assert_eq!(plan.fired(), 1);
        assert!(plan.take(5, 0));
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 8, 10, 4);
        let b = FaultPlan::seeded(42, 8, 10, 4);
        assert_eq!(a.len(), 8);
        for (fa, fb) in a.faults.iter().zip(&b.faults) {
            assert_eq!((fa.epoch, fa.shard), (fb.epoch, fb.shard));
            assert!(fa.epoch < 10 && fa.shard < 4);
        }
    }

    #[test]
    fn the_ladder_degrades_to_sequential() {
        assert_eq!(degrade(8), Some(4));
        assert_eq!(degrade(2), Some(1));
        assert_eq!(degrade(1), None);
    }
}
