//! Bandwidth servers: single-queue service models for L2 banks and DRAM.
//!
//! A [`ServerQueue`] admits one transaction every `interval` *quarter-cycles*
//! (sub-cycle resolution lets us express realistic rates such as "4 lines per
//! cycle" for L2 banks or "1 line per cycle" for the GDDR3 channels of paper
//! Table I); a transaction arriving while the server is busy queues behind
//! the previous ones. This is the standard analytic stand-in for FR-FCFS
//! DRAM scheduling at the fidelity the paper's experiments need: it produces
//! the first-order effect (memory bandwidth saturates, latency grows with
//! load) that makes extra thread blocks hurt memory-bound kernels.

/// Quarter-cycles per cycle.
const Q: u64 = 4;

/// A FIFO bandwidth server with quarter-cycle resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerQueue {
    next_free_q: u64,
    interval_q: u64,
    /// Transactions admitted (for bandwidth statistics).
    pub serviced: u64,
}

impl ServerQueue {
    /// One transaction per `interval_q4` quarter-cycles (4 = one per cycle,
    /// 1 = four per cycle).
    pub fn new(interval_q4: u32) -> Self {
        ServerQueue {
            next_free_q: 0,
            interval_q: u64::from(interval_q4.max(1)),
            serviced: 0,
        }
    }

    /// Admit a transaction at cycle `now`; returns the *queueing delay* in
    /// whole cycles (rounded down) the transaction waits before service.
    pub fn admit(&mut self, now: u64) -> u64 {
        let now_q = now * Q;
        let start = self.next_free_q.max(now_q);
        self.next_free_q = start + self.interval_q;
        self.serviced += 1;
        (start - now_q) / Q
    }

    /// Current backlog at cycle `now`, in whole cycles.
    pub fn backlog(&self, now: u64) -> u64 {
        self.next_free_q.saturating_sub(now * Q) / Q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_server_has_no_delay() {
        let mut s = ServerQueue::new(4);
        assert_eq!(s.admit(100), 0);
    }

    #[test]
    fn back_to_back_transactions_queue() {
        let mut s = ServerQueue::new(16); // one per 4 cycles
        assert_eq!(s.admit(0), 0); // services q 0..16
        assert_eq!(s.admit(0), 4); // waits 16 q = 4 cycles
        assert_eq!(s.admit(0), 8);
        assert_eq!(s.serviced, 3);
    }

    #[test]
    fn subcycle_rates_fit_multiple_per_cycle() {
        let mut s = ServerQueue::new(1); // four per cycle
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 0); // same cycle, still sub-cycle delay
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 1); // fifth in the same cycle spills over
    }

    #[test]
    fn idle_time_drains_backlog() {
        let mut s = ServerQueue::new(40); // 10 cycles per txn
        s.admit(0);
        assert_eq!(s.backlog(5), 5);
        assert_eq!(s.backlog(20), 0);
        assert_eq!(s.admit(20), 0);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut s = ServerQueue::new(0);
        assert_eq!(s.admit(0), 0);
        // 1 quarter-cycle per txn: four per cycle before any delay.
        assert_eq!(s.admit(0), 0);
    }
}
