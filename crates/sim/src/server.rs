//! Bandwidth servers: single-queue service models for L2 banks and DRAM.
//!
//! A [`ServerQueue`] admits one transaction every `interval` *quarter-cycles*
//! (sub-cycle resolution lets us express realistic rates such as "4 lines per
//! cycle" for L2 banks or "1 line per cycle" for the GDDR3 channels of paper
//! Table I); a transaction arriving while the server is busy queues behind
//! the previous ones. This is the standard analytic stand-in for FR-FCFS
//! DRAM scheduling at the fidelity the paper's experiments need: it produces
//! the first-order effect (memory bandwidth saturates, latency grows with
//! load) that makes extra thread blocks hurt memory-bound kernels.

/// Quarter-cycles per cycle.
const Q: u64 = 4;

/// A FIFO bandwidth server with quarter-cycle resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerQueue {
    next_free_q: u64,
    interval_q: u64,
    /// Transactions admitted (for bandwidth statistics).
    pub serviced: u64,
}

impl ServerQueue {
    /// One transaction per `interval_q4` quarter-cycles (4 = one per cycle,
    /// 1 = four per cycle).
    pub fn new(interval_q4: u32) -> Self {
        ServerQueue {
            next_free_q: 0,
            interval_q: u64::from(interval_q4.max(1)),
            serviced: 0,
        }
    }

    /// Admit a transaction at cycle `now`; returns the *queueing delay* in
    /// whole cycles (rounded down) the transaction waits before service.
    pub fn admit(&mut self, now: u64) -> u64 {
        self.admit_timed(now).0
    }

    /// Admit a transaction at cycle `now`; returns `(queueing delay, service
    /// end)` — the delay in whole cycles (rounded down, like [`Self::admit`])
    /// and the first cycle by which the server has finished this transaction
    /// (rounded up). The event-driven memory model holds a DRAM-queue slot
    /// until the service end.
    pub fn admit_timed(&mut self, now: u64) -> (u64, u64) {
        let now_q = now * Q;
        let start = self.next_free_q.max(now_q);
        self.next_free_q = start + self.interval_q;
        self.serviced += 1;
        ((start - now_q) / Q, (start + self.interval_q).div_ceil(Q))
    }

    /// Whole cycles (rounded **down**) a transaction admitted at cycle `now`
    /// would wait before service; 0 both when the server is idle and when the
    /// residual backlog is sub-cycle. This is a lower bound on the next
    /// [`Self::admit`]'s delay at `now`, exact at quarter-cycle granularity —
    /// see the boundary tests below for the pinned rounding behaviour.
    pub fn backlog(&self, now: u64) -> u64 {
        self.next_free_q.saturating_sub(now * Q) / Q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_server_has_no_delay() {
        let mut s = ServerQueue::new(4);
        assert_eq!(s.admit(100), 0);
    }

    #[test]
    fn back_to_back_transactions_queue() {
        let mut s = ServerQueue::new(16); // one per 4 cycles
        assert_eq!(s.admit(0), 0); // services q 0..16
        assert_eq!(s.admit(0), 4); // waits 16 q = 4 cycles
        assert_eq!(s.admit(0), 8);
        assert_eq!(s.serviced, 3);
    }

    #[test]
    fn subcycle_rates_fit_multiple_per_cycle() {
        let mut s = ServerQueue::new(1); // four per cycle
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 0); // same cycle, still sub-cycle delay
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 0);
        assert_eq!(s.admit(0), 1); // fifth in the same cycle spills over
    }

    #[test]
    fn idle_time_drains_backlog() {
        let mut s = ServerQueue::new(40); // 10 cycles per txn
        s.admit(0);
        assert_eq!(s.backlog(5), 5);
        assert_eq!(s.backlog(20), 0);
        assert_eq!(s.admit(20), 0);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let mut s = ServerQueue::new(0);
        assert_eq!(s.admit(0), 0);
        // 1 quarter-cycle per txn: four per cycle before any delay.
        assert_eq!(s.admit(0), 0);
    }

    // ---- q4 fixed-point boundary pins (docs-vs-behaviour contract) ----

    #[test]
    fn admit_on_an_empty_queue_at_now_is_free_and_books_from_now() {
        // An idle server never back-dates service: admitting at `now` starts
        // service at `now` exactly, not at the (stale) `next_free_q`.
        let mut s = ServerQueue::new(4);
        let (delay, end) = s.admit_timed(100);
        assert_eq!(delay, 0);
        assert_eq!(end, 101); // service occupies q [400, 404) → done by 101
        assert_eq!(s.backlog(100), 1); // one full service interval pending
        assert_eq!(s.backlog(101), 0);
    }

    #[test]
    fn subcycle_residue_rounds_delay_down_but_service_end_up() {
        // interval 3 q4 = 0.75 cycles. The second admit at cycle 0 starts at
        // q3: a 3-quarter-cycle wait reported as delay 0 (floor), with the
        // service end at q6 reported as cycle 2 (ceil).
        let mut s = ServerQueue::new(3);
        assert_eq!(s.admit_timed(0), (0, 1)); // q [0, 3)
        assert_eq!(s.admit_timed(0), (0, 2)); // q [3, 6): sub-cycle wait
        assert_eq!(s.admit_timed(0), (1, 3)); // q [6, 9): 6 q = 1.5 cy → 1
    }

    #[test]
    fn backlog_floors_subcycle_residue_to_zero() {
        let mut s = ServerQueue::new(6); // 1.5 cycles per txn
        s.admit(0); // busy until q6
        assert_eq!(s.backlog(0), 1); // 6 q = 1.5 cycles → floor 1
        assert_eq!(s.backlog(1), 0); // 2 q residue → floor 0 ...
        assert_eq!(s.admit(1), 0); // ... and the matching admit delay is 0
    }

    #[test]
    fn backlog_matches_next_admit_delay_at_whole_cycle_boundaries() {
        let mut s = ServerQueue::new(8); // 2 cycles per txn
        for _ in 0..5 {
            s.admit(0);
        }
        // next_free_q = 40 (cycle 10): at whole-cycle arrival times the
        // backlog is exactly the delay the next admit would see.
        for now in 0..12 {
            assert_eq!(s.backlog(now), s.admit(now), "now {now}");
            s = ServerQueue::new(8);
            for _ in 0..5 {
                s.admit(0);
            }
        }
    }
}
