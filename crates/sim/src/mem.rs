//! Global-memory subsystem: coalescer address generation, L1 → L2 → DRAM
//! timing, in two selectable models.
//!
//! Each SM owns an L1; everything behind it is shared by every SM (paper
//! Table I: 16 KB L1 per core, 768 KB unified L2). [`MemoryModel`] selects
//! how the shared side is timed:
//!
//! * [`MemoryModel::Functional`] (the default): a unified L2 tag store plus
//!   two bandwidth [`ServerQueue`]s. Timing is computed functionally at
//!   issue — a transaction's completion cycle is `now + hit latency (+ L2
//!   latency + L2 queue) (+ DRAM latency + DRAM queue)` depending on where
//!   it hits; tag state updates eagerly. Deterministic and fast, and it
//!   preserves the first-order contention effect the paper's analysis relies
//!   on (more resident blocks ⇒ bigger combined working set ⇒ more misses ⇒
//!   longer queues) — but all buffering is infinite, so congestion can never
//!   push back on SM issue.
//!
//! * [`MemoryModel::Event`]: an event-driven memory-partition model
//!   ([`EventMem`]). The L2 is sliced into `MemConfig::mem_partitions`
//!   line-interleaved banks, each with its own tag slice, bank bandwidth
//!   server, **MSHR table** and **bounded DRAM request queue**. An L2 miss
//!   holds an MSHR entry (and a DRAM-queue slot for the service time) until
//!   its fill returns, releases are scheduled on a calendar wheel
//!   ([`TimingWheel`]), and a full table back-pressures SM issue through
//!   [`MemGate`]. A second miss to a line whose fill is already in flight
//!   **merges** into the existing entry instead of paying for another DRAM
//!   access, and a tag hit on an in-flight line waits for the fill
//!   (hit-under-miss). With unlimited entries (`mshr_entries = 0`,
//!   `dram_queue_entries = 0`) and a single partition the event model
//!   reproduces the functional timing bit for bit — the equivalence the
//!   `event_memory_model` integration suite pins.

use grs_core::MemConfig;
use grs_isa::{GlobalPattern, LINE_BYTES};
use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheOutcome};
use crate::kinfo::InstrMeta;
use crate::server::ServerQueue;
use crate::stats::MemStats;
use crate::telemetry::{MemTelemetry, TelemetryConfig, TelemetryEvent};
use crate::warp::Warp;
use crate::wheel::TimingWheel;

/// Virtual-address layout constants. Each grid block owns a disjoint 8 MB
/// span; kernel-shared tiles live in a separate high region.
pub mod layout {
    /// Bytes of address space per grid block.
    pub const BLOCK_SPAN: u64 = 1 << 23;
    /// Offset of the per-warp streaming region inside a block span.
    pub const STREAM_BASE: u64 = 0;
    /// Bytes of stream per warp (256 lines; wraps after that).
    pub const STREAM_PER_WARP: u64 = 1 << 15;
    /// Offset of the per-block tile region.
    pub const TILE_BASE: u64 = 0x60_0000;
    /// Offset of the per-block scatter region.
    pub const SCATTER_BASE: u64 = 0x70_0000;
    /// Base of the kernel-wide shared-tile region.
    pub const KERNEL_TILE_BASE: u64 = 0x4000_0000_0000;

    /// Base address of a grid block's span, including the anti-aliasing
    /// jitter applied by the address generator.
    pub fn block_base(grid_block: u32) -> u64 {
        u64::from(grid_block) * BLOCK_SPAN + (u64::from(grid_block) % 61) * crate::mem::JITTER_UNIT
    }
}

/// Jitter granularity (one cache line).
pub(crate) const JITTER_UNIT: u64 = LINE_BYTES;

/// Which timing model services the shared side of the memory system. See the
/// module docs for the two models; `Functional` is the default and keeps
/// every pre-existing configuration bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryModel {
    /// Issue-time latency formula over infinite buffering (the seed model).
    Functional,
    /// Event-driven per-partition L2 banks with MSHR tables and bounded
    /// DRAM queues; finite buffers back-pressure SM issue.
    Event,
}

/// Per-cycle issue-capacity snapshot of the event-driven memory system: the
/// worst-case (minimum across partitions) free MSHR entries and DRAM-queue
/// slots. The SM readiness scan blocks a global-memory instruction whose
/// transaction count does not fit — the back-pressure that makes post-issue
/// congestion visible to the paper's stall accounting. The functional model
/// always reports [`MemGate::OPEN`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGate {
    /// Free MSHR entries in the fullest partition (`u32::MAX` = unlimited).
    pub mshr_free: u32,
    /// Free DRAM-queue slots in the fullest partition (`u32::MAX` =
    /// unlimited).
    pub dram_free: u32,
}

impl MemGate {
    /// A gate that admits everything (functional model / unlimited buffers).
    pub const OPEN: MemGate = MemGate {
        mshr_free: u32::MAX,
        dram_free: u32::MAX,
    };

    /// What, if anything, blocks issuing `meta` under this gate. A **load**
    /// conservatively needs room for all its transactions in both the MSHR
    /// table and the DRAM queue (any of them may miss to DRAM); a **store**
    /// takes no MSHR, so only the DRAM queue gates it. The block class
    /// depends only on the instruction kind — not on *which* resource ran
    /// out — so a blocked warp's classification is stable for as long as it
    /// stays blocked (free capacity only shrinks between releases), which is
    /// what lets a gated sleep span be credited in closed form.
    #[inline]
    pub fn blocks(&self, meta: &InstrMeta) -> Option<GateBlock> {
        if !meta.is_global_mem() {
            return None;
        }
        let need = u32::from(meta.mem_txns);
        if meta.is_global_load() {
            if self.mshr_free < need || self.dram_free < need {
                return Some(GateBlock::Mshr);
            }
        } else if self.dram_free < need {
            return Some(GateBlock::DramQueue);
        }
        None
    }
}

/// Why the issue gate blocked an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateBlock {
    /// A load could not reserve MSHR/DRAM-queue capacity for its
    /// transactions (counted as `mshr_full_stalls`).
    Mshr,
    /// A store could not reserve DRAM request-queue slots (counted as
    /// `dram_queue_full_stalls`).
    DramQueue,
}

/// Shared (cross-SM) part of the memory system.
#[derive(Debug, Clone)]
pub struct SharedMem {
    /// Unified L2 tag store (functional model).
    pub l2: Cache,
    /// L2 bank / interconnect bandwidth (functional model).
    pub l2_server: ServerQueue,
    /// DRAM channel bandwidth (functional model).
    pub dram_server: ServerQueue,
    /// Latency constants.
    pub cfg: MemConfig,
    /// Counters.
    pub stats: MemStats,
    /// Event-driven partition state; `Some` iff the run uses
    /// [`MemoryModel::Event`].
    pub event: Option<EventMem>,
}

impl SharedMem {
    /// Build the functional (issue-time) model from a memory configuration.
    pub fn new(cfg: MemConfig) -> Self {
        Self::with_model(cfg, MemoryModel::Functional)
    }

    /// Build with an explicit [`MemoryModel`].
    pub fn with_model(cfg: MemConfig, model: MemoryModel) -> Self {
        SharedMem {
            l2: Cache::new(
                u64::from(cfg.l2_bytes),
                cfg.l2_ways,
                u64::from(cfg.line_bytes),
            ),
            l2_server: ServerQueue::new(cfg.l2_service_q4),
            dram_server: ServerQueue::new(cfg.dram_service_q4),
            cfg,
            stats: MemStats::default(),
            event: match model {
                MemoryModel::Functional => None,
                MemoryModel::Event => Some(EventMem::new(&cfg)),
            },
        }
    }

    /// Is the event-driven model active?
    #[inline]
    pub fn is_event(&self) -> bool {
        self.event.is_some()
    }

    /// Process every capacity release due by `now` and bring the occupancy
    /// integrals up to date. Idempotent per cycle; the SM step loop calls it
    /// before consulting the gate, so a clock jump settles lazily.
    pub fn advance_to(&mut self, now: u64) {
        if let Some(ev) = &mut self.event {
            ev.advance_to(now, &mut self.stats);
        }
    }

    /// Capacity snapshot for the SM readiness scan at `now` (call after
    /// [`Self::advance_to`]).
    pub fn issue_gate(&self) -> MemGate {
        match &self.event {
            Some(ev) => ev.gate(),
            None => MemGate::OPEN,
        }
    }

    /// Earliest pending MSHR/DRAM-queue release — the wake-up cycle for an
    /// SM sleeping on memory back-pressure. `None` for the functional model
    /// or when nothing is in flight.
    pub fn next_release(&self) -> Option<u64> {
        self.event.as_ref().and_then(|ev| ev.next_release())
    }

    /// In-flight occupancy `(mshr entries, dram-queue slots)` across all
    /// partitions — `(0, 0)` under the functional model. Surfaced in the
    /// watchdog's [`crate::supervise::StallDiagnosis`].
    pub fn in_flight(&self) -> (u32, u32) {
        self.event
            .as_ref()
            .map_or((0, 0), |ev| (ev.total_mshr, ev.total_dram))
    }

    /// Latest capacity-release cycle ever scheduled (0 if none, and always 0
    /// under the functional model) — one input to the forward-progress
    /// watchdog's watermark. Engine-invariant: releases are scheduled at
    /// issue time with identical due cycles in every engine.
    pub fn latest_release_scheduled(&self) -> u64 {
        self.event
            .as_ref()
            .map_or(0, |ev| ev.releases.latest_scheduled())
    }

    /// Flush the occupancy integrals through the end of the run.
    pub fn finalize(&mut self, end: u64) {
        self.advance_to(end);
    }

    /// Enable telemetry recording on the event model (no-op under the
    /// functional model, which has no observable memory-side events).
    pub(crate) fn set_telemetry(&mut self, cfg: &TelemetryConfig) {
        if let Some(ev) = &mut self.event {
            ev.telemetry = Some(Box::new(MemTelemetry::new(cfg)));
        }
    }

    /// Take the memory-side telemetry state for end-of-run assembly.
    pub(crate) fn take_telemetry(&mut self) -> Option<MemTelemetry> {
        self.event
            .as_mut()
            .and_then(|ev| ev.telemetry.take())
            .map(|b| *b)
    }

    /// Timing for one **load** transaction to `addr` from the SM owning
    /// `l1`, issued at `now`. Returns the transaction latency in cycles.
    pub fn load(&mut self, l1: &mut Cache, addr: u64, now: u64) -> u64 {
        self.stats.transactions += 1;
        let base = u64::from(self.cfg.l1_hit_latency);
        match l1.access(addr) {
            CacheOutcome::Hit => {
                self.stats.l1_hits += 1;
                base
            }
            CacheOutcome::Miss => {
                self.stats.l1_misses += 1;
                let queue_l2 = self.l2_server.admit(now);
                match self.l2.access(addr) {
                    CacheOutcome::Hit => {
                        self.stats.l2_hits += 1;
                        base + u64::from(self.cfg.l2_latency) + queue_l2
                    }
                    CacheOutcome::Miss => {
                        self.stats.l2_misses += 1;
                        let queue_dram = self.dram_server.admit(now);
                        base + u64::from(self.cfg.l2_latency)
                            + queue_l2
                            + u64::from(self.cfg.dram_latency)
                            + queue_dram
                    }
                }
            }
        }
    }

    /// Timing for one **store** transaction (write-through, no allocate):
    /// consumes L2/DRAM bandwidth; latency models store-buffer drain.
    pub fn store(&mut self, l1: &mut Cache, addr: u64, now: u64) -> u64 {
        self.stats.transactions += 1;
        let base = u64::from(self.cfg.l1_hit_latency);
        l1.access_store(addr);
        let queue_l2 = self.l2_server.admit(now);
        match self.l2.access_store(addr) {
            CacheOutcome::Hit => base + u64::from(self.cfg.l2_latency) + queue_l2,
            CacheOutcome::Miss => {
                let queue_dram = self.dram_server.admit(now);
                base + u64::from(self.cfg.l2_latency) + queue_l2 + queue_dram
                // no dram_latency: stores are posted; only bandwidth matters
            }
        }
    }

    /// Event-model timing for one transaction; returns the **absolute
    /// completion cycle**. Requires [`MemoryModel::Event`] and a preceding
    /// [`Self::advance_to`] for `now`.
    pub fn event_access(&mut self, l1: &mut Cache, addr: u64, now: u64, is_load: bool) -> u64 {
        let cfg = self.cfg;
        let ev = self
            .event
            .as_mut()
            .expect("event_access requires MemoryModel::Event");
        ev.access(l1, addr, now, is_load, &cfg, &mut self.stats)
    }
}

/// A capacity release scheduled on the event wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Release {
    /// A DRAM fill returned: free the MSHR entry holding `line` in partition
    /// `part`.
    Mshr {
        /// Partition index.
        part: u16,
        /// Global line number of the filled line.
        line: u64,
    },
    /// The DRAM channel of partition `part` finished a transaction: free its
    /// request-queue slot.
    DramSlot {
        /// Partition index.
        part: u16,
    },
}

/// An in-flight L2 miss: the fill for `line` returns to the L2 slice at
/// cycle `fill_at`. Later requests for the same line merge into the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    line: u64,
    fill_at: u64,
}

/// One memory partition: an L2 slice with its bank server, MSHR table and
/// DRAM channel (bounded queue + bandwidth server).
#[derive(Debug, Clone)]
struct Partition {
    l2: Cache,
    l2_server: ServerQueue,
    dram_server: ServerQueue,
    /// Live MSHR entries (small; linear scan keeps lookups deterministic).
    mshr: Vec<MshrEntry>,
    /// DRAM request-queue slots currently held.
    dram_in_queue: u32,
}

/// Event-driven memory-partition model (see the module docs). Capacity
/// releases live on a calendar wheel and are processed lazily — the step
/// loop advances the model to "now" before consulting the gate — so the
/// occupancy integrals in [`MemStats`] are exact even across fast-forward
/// clock jumps (each release credits `occupancy × elapsed` in closed form).
#[derive(Debug, Clone)]
pub struct EventMem {
    parts: Vec<Partition>,
    releases: TimingWheel<Release>,
    release_buf: Vec<(u64, Release)>,
    /// Per-partition limits; 0 = unlimited (tracking disabled).
    mshr_limit: u32,
    dram_queue_limit: u32,
    /// Totals across partitions, for the occupancy integrals.
    total_mshr: u32,
    total_dram: u32,
    /// Cycle the integrals are valid through.
    clock: u64,
    /// Telemetry recording state (`None` unless tracing is on). Rides the
    /// clone into snapshots so rollback restores the buffers.
    telemetry: Option<Box<MemTelemetry>>,
}

impl EventMem {
    /// Hard ceiling on `MemConfig::mem_partitions`. Configurations above it
    /// are clamped (behaving bit-identically to a machine configured at the
    /// ceiling). The bound keeps the per-bank service-interval scaling
    /// `service_q4 × partitions` provably inside `u32` for every interval
    /// the quarter-cycle [`ServerQueue`] can represent meaningfully, so the
    /// scaling below never silently saturates capacity — the overflow
    /// behaviour the `partition_extremes` tests pin.
    pub const MAX_PARTITIONS: u32 = 4096;

    /// Build the partitioned model from `cfg` (see the `MemConfig` fields
    /// `mem_partitions`, `mshr_entries`, `dram_queue_entries`).
    /// `mem_partitions` is clamped to `1..=MAX_PARTITIONS`.
    pub fn new(cfg: &MemConfig) -> Self {
        let parts_n = cfg.mem_partitions.clamp(1, Self::MAX_PARTITIONS);
        let slice_bytes = (u64::from(cfg.l2_bytes) / u64::from(parts_n))
            .max(u64::from(cfg.line_bytes) * u64::from(cfg.l2_ways.max(1)));
        // Per-bank service is `partitions`× slower than the functional
        // aggregate so total bandwidth matches. Saturation policy (decided,
        // not accidental): a product that would exceed u32::MAX pins to
        // u32::MAX quarter-cycles — per-bank bandwidth bottoms out rather
        // than wrapping to a fast interval. Unreachable for any service
        // interval below u32::MAX / MAX_PARTITIONS ≈ 1M quarter-cycles.
        let l2_q4 = cfg.l2_service_q4.saturating_mul(parts_n);
        let dram_q4 = cfg.dram_service_q4.saturating_mul(parts_n);
        let parts = (0..parts_n)
            .map(|_| Partition {
                l2: Cache::new(slice_bytes, cfg.l2_ways, u64::from(cfg.line_bytes)),
                l2_server: ServerQueue::new(l2_q4),
                dram_server: ServerQueue::new(dram_q4),
                mshr: Vec::new(),
                dram_in_queue: 0,
            })
            .collect();
        EventMem {
            parts,
            releases: TimingWheel::new(),
            release_buf: Vec::new(),
            mshr_limit: cfg.mshr_entries,
            dram_queue_limit: cfg.dram_queue_entries,
            total_mshr: 0,
            total_dram: 0,
            clock: 0,
            telemetry: None,
        }
    }

    /// Credit `occupancy × elapsed` for both resources up to `to`.
    fn integrate(&mut self, to: u64, stats: &mut MemStats) {
        // Sample rows due in `(clock, to]` see the occupancy that held over
        // that whole stretch (it only changes at release/admission cycles,
        // which bound every integrate call). A row at cycle `b` therefore
        // reflects the totals after every release due *before* `b` and
        // before any due *at* `b` — a rule that depends only on the release
        // trajectory, not on when the lazy `advance_to` calls happen, so
        // the rows are identical across engines and shard counts.
        if let Some(t) = self.telemetry.as_deref_mut() {
            while t.next_sample <= to {
                t.emit_row(self.total_mshr, self.total_dram);
            }
        }
        let span = to.saturating_sub(self.clock);
        if span > 0 {
            stats.mshr_occupancy_cycles += span * u64::from(self.total_mshr);
            stats.dram_queue_occupancy_cycles += span * u64::from(self.total_dram);
            self.clock = to;
        }
    }

    /// Process releases due by `now`, integrating occupancy piecewise at
    /// each release cycle (exact across arbitrarily long jumps).
    fn advance_to(&mut self, now: u64, stats: &mut MemStats) {
        while let Some(due) = self.releases.next_due() {
            if due > now {
                break;
            }
            self.integrate(due, stats);
            let mut buf = std::mem::take(&mut self.release_buf);
            self.releases.drain_due_into(due, &mut buf);
            for &(_, r) in &buf {
                match r {
                    Release::Mshr { part, line } => {
                        let mshr = &mut self.parts[part as usize].mshr;
                        let i = mshr
                            .iter()
                            .position(|e| e.line == line)
                            .expect("release for a live MSHR entry");
                        mshr.swap_remove(i);
                        self.total_mshr -= 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            // Stamped with the release's *due* cycle, so the
                            // stream is invariant to when the lazy drain ran.
                            t.record(due, TelemetryEvent::MshrFill { part: part.into() });
                        }
                    }
                    Release::DramSlot { part } => {
                        self.parts[part as usize].dram_in_queue -= 1;
                        self.total_dram -= 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.record(due, TelemetryEvent::DramService { part: part.into() });
                        }
                    }
                }
            }
            self.release_buf = buf;
        }
        self.integrate(now, stats);
    }

    /// Worst-case free capacity across partitions. Soft-limit semantics: an
    /// *empty* table accepts any instruction whole (even one whose
    /// transaction count exceeds the nominal limit), which is what makes
    /// finite tables deadlock-free — entries drain on their own, so a
    /// blocked instruction always eventually sees an empty table.
    fn gate(&self) -> MemGate {
        let mut gate = MemGate::OPEN;
        for p in &self.parts {
            if self.mshr_limit > 0 && !p.mshr.is_empty() {
                let free = self.mshr_limit.saturating_sub(p.mshr.len() as u32);
                gate.mshr_free = gate.mshr_free.min(free);
            }
            if self.dram_queue_limit > 0 && p.dram_in_queue > 0 {
                let free = self.dram_queue_limit.saturating_sub(p.dram_in_queue);
                gate.dram_free = gate.dram_free.min(free);
            }
        }
        gate
    }

    /// Earliest pending capacity release, if any.
    fn next_release(&self) -> Option<u64> {
        self.releases.next_due()
    }

    /// Partition index and partition-local probe address of `addr`
    /// (line-interleaved slicing; the local address renumbers the
    /// partition's lines densely so each slice uses all its sets).
    #[inline]
    fn route(&self, addr: u64, line_bytes: u64) -> (usize, u64, u64) {
        let line = addr / line_bytes;
        let part = (line % self.parts.len() as u64) as usize;
        let local_addr = (line / self.parts.len() as u64) * line_bytes;
        (part, line, local_addr)
    }

    /// Time one transaction; returns the absolute completion cycle. Tag
    /// state updates eagerly (as in the functional model); MSHR entries and
    /// DRAM-queue slots are held via wheel-scheduled releases.
    fn access(
        &mut self,
        l1: &mut Cache,
        addr: u64,
        now: u64,
        is_load: bool,
        cfg: &MemConfig,
        stats: &mut MemStats,
    ) -> u64 {
        debug_assert!(self.clock == now, "advance_to(now) must precede access");
        stats.transactions += 1;
        let base = u64::from(cfg.l1_hit_latency);
        if is_load {
            if l1.access(addr) == CacheOutcome::Hit {
                stats.l1_hits += 1;
                return now + base;
            }
            stats.l1_misses += 1;
        } else {
            l1.access_store(addr);
        }
        let (part, line, local_addr) = self.route(addr, u64::from(cfg.line_bytes));
        let p = &mut self.parts[part];
        let queue_l2 = p.l2_server.admit(now);
        let l2_time = now + base + u64::from(cfg.l2_latency) + queue_l2;
        if !is_load {
            // Write-through, no allocate: stores consume bandwidth (and a
            // DRAM-queue slot on an L2 miss) but hold no MSHR entry.
            return match p.l2.access_store(local_addr) {
                CacheOutcome::Hit => l2_time,
                CacheOutcome::Miss => {
                    let (queue_dram, service_end) = p.dram_server.admit_timed(now);
                    if self.dram_queue_limit > 0 {
                        p.dram_in_queue += 1;
                        self.total_dram += 1;
                        stats.peak_dram_queue_occupancy =
                            stats.peak_dram_queue_occupancy.max(self.total_dram);
                        self.releases
                            .push(service_end, Release::DramSlot { part: part as u16 });
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.record(now, TelemetryEvent::DramAdmit { part: part as u32 });
                        }
                    }
                    l2_time + queue_dram // posted: no dram_latency
                }
            };
        }
        let outcome = p.l2.access(local_addr);
        if self.mshr_limit > 0 {
            // Hit-under-miss / miss merging: any request touching a line
            // whose fill is still in flight completes with that fill.
            if let Some(e) = p.mshr.iter().find(|e| e.line == line) {
                match outcome {
                    CacheOutcome::Hit => stats.l2_hits += 1,
                    CacheOutcome::Miss => stats.l2_misses += 1,
                }
                stats.mshr_merges += 1;
                let merged_at = l2_time.max(e.fill_at + base);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record(now, TelemetryEvent::MshrMerge { part: part as u32 });
                }
                return merged_at;
            }
        }
        match outcome {
            CacheOutcome::Hit => {
                stats.l2_hits += 1;
                l2_time
            }
            CacheOutcome::Miss => {
                stats.l2_misses += 1;
                let (queue_dram, service_end) = p.dram_server.admit_timed(now);
                let fill_at = now
                    + u64::from(cfg.l2_latency)
                    + queue_l2
                    + u64::from(cfg.dram_latency)
                    + queue_dram;
                if self.mshr_limit > 0 {
                    p.mshr.push(MshrEntry { line, fill_at });
                    self.total_mshr += 1;
                    // Sample the cross-partition total at admission: totals
                    // only grow here (releases only shrink them), so this one
                    // sampling point sees every peak. Maxing one partition's
                    // table length — the old behaviour — understated the
                    // machine-wide peak whenever misses spread across
                    // partitions.
                    stats.peak_mshr_occupancy = stats.peak_mshr_occupancy.max(self.total_mshr);
                    self.releases.push(
                        fill_at,
                        Release::Mshr {
                            part: part as u16,
                            line,
                        },
                    );
                }
                if self.dram_queue_limit > 0 {
                    p.dram_in_queue += 1;
                    self.total_dram += 1;
                    stats.peak_dram_queue_occupancy =
                        stats.peak_dram_queue_occupancy.max(self.total_dram);
                    self.releases
                        .push(service_end, Release::DramSlot { part: part as u16 });
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.record(now, TelemetryEvent::DramAdmit { part: part as u32 });
                    }
                }
                fill_at + base
            }
        }
    }
}

/// Generate the line addresses one warp-level execution of `pattern`
/// produces, appending to `out`. Advances the warp's pattern counters/RNG —
/// call exactly once per issued memory instruction.
pub fn generate_addresses(
    pattern: GlobalPattern,
    warp: &mut Warp,
    grid_block: u32,
    out: &mut Vec<u64>,
) {
    // Per-block jitter of a few lines breaks the pathological set alignment
    // that power-of-two block spans would otherwise create (every block's
    // region mapping to the same cache sets) — the moral equivalent of the
    // address hashing real memory controllers apply.
    let block_base = layout::block_base(grid_block);
    match pattern {
        GlobalPattern::Stream => {
            let lines_per_warp = layout::STREAM_PER_WARP / LINE_BYTES;
            let line = warp.stream_pos % lines_per_warp;
            // Saturating, never wrapping: a wrapped counter would restart the
            // modulo sequence mid-stream and alias fresh accesses onto old
            // lines, silently inflating hit rates on very long runs. (At
            // saturation — 2^64 issues, unreachable in practice — the stream
            // pins to its last line, which is at least visible in stats.)
            warp.stream_pos = warp.stream_pos.saturating_add(1);
            out.push(
                block_base
                    + layout::STREAM_BASE
                    + u64::from(warp.warp_in_block) * layout::STREAM_PER_WARP
                    + line * LINE_BYTES,
            );
        }
        GlobalPattern::BlockTile { tile_lines } => {
            let tl = u64::from(tile_lines.max(1));
            let line = (u64::from(warp.warp_in_block) * 7 + warp.tile_pos) % tl;
            warp.tile_pos = warp.tile_pos.saturating_add(1);
            out.push(block_base + layout::TILE_BASE + line * LINE_BYTES);
        }
        GlobalPattern::KernelTile { tile_lines } => {
            let tl = u64::from(tile_lines.max(1));
            let line = (u64::from(warp.warp_in_block) * 3 + warp.tile_pos) % tl;
            warp.tile_pos = warp.tile_pos.saturating_add(1);
            out.push(layout::KERNEL_TILE_BASE + line * LINE_BYTES);
        }
        GlobalPattern::Scatter { span_lines, txns } => {
            // Cap the span so the region stays inside the block span.
            let span = u64::from(span_lines.max(1)).min(4096);
            for _ in 0..txns.max(1) {
                let line = warp.rng.next_below(span);
                out.push(block_base + layout::SCATTER_BASE + line * LINE_BYTES);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::MemConfig;

    fn mem() -> (SharedMem, Cache) {
        let cfg = MemConfig::default();
        let l1 = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        (SharedMem::new(cfg), l1)
    }

    #[test]
    fn l1_hit_is_cheapest() {
        let (mut sm, mut l1) = mem();
        let cold = sm.load(&mut l1, 0x1000, 0);
        let warm = sm.load(&mut l1, 0x1000, 0);
        assert!(warm < cold);
        assert_eq!(warm, u64::from(sm.cfg.l1_hit_latency));
        assert_eq!(sm.stats.l1_hits, 1);
        assert_eq!(sm.stats.l1_misses, 1);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let (mut sm, mut l1a) = mem();
        let cfg = sm.cfg;
        let mut l1b = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        // SM A warms L2; SM B misses L1 but hits L2.
        let dram = sm.load(&mut l1a, 0x8000, 0);
        let l2hit = sm.load(&mut l1b, 0x8000, 0);
        assert!(l2hit < dram);
        assert_eq!(sm.stats.l2_hits, 1);
        assert_eq!(sm.stats.l2_misses, 1);
    }

    #[test]
    fn dram_bandwidth_builds_queues() {
        let (mut sm, mut l1) = mem();
        // Distinct lines all missing to DRAM at the same cycle: latencies
        // must grow (non-strictly, thanks to sub-cycle service resolution)
        // as the service queue backs up.
        let lats: Vec<u64> = (0u64..8)
            .map(|i| sm.load(&mut l1, 0x100_0000 + i * 0x10_0000, 0))
            .collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]), "{lats:?}");
        assert!(lats[7] > lats[0], "{lats:?}");
    }

    #[test]
    fn stream_addresses_advance_and_stay_disjoint_per_warp() {
        let mut w0 = Warp::new(0, 0, 0, 32, 0, 5);
        let mut w1 = Warp::new(1, 0, 1, 32, 0, 5);
        let mut a = Vec::new();
        generate_addresses(GlobalPattern::Stream, &mut w0, 5, &mut a);
        generate_addresses(GlobalPattern::Stream, &mut w0, 5, &mut a);
        generate_addresses(GlobalPattern::Stream, &mut w1, 5, &mut a);
        assert_eq!(a[1], a[0] + LINE_BYTES);
        assert_ne!(a[2], a[0]);
        // Warp regions are disjoint.
        assert_eq!(a[2] - a[0], layout::STREAM_PER_WARP);
    }

    #[test]
    fn block_tile_wraps_within_tile() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 1);
        let mut a = Vec::new();
        for _ in 0..10 {
            generate_addresses(
                GlobalPattern::BlockTile { tile_lines: 4 },
                &mut w,
                1,
                &mut a,
            );
        }
        let base = layout::block_base(1) + layout::TILE_BASE;
        for addr in &a {
            assert!(*addr >= base && *addr < base + 4 * LINE_BYTES);
        }
        // Periodicity 4.
        assert_eq!(a[0], a[4]);
    }

    #[test]
    fn kernel_tile_is_shared_across_blocks() {
        let mut w_b0 = Warp::new(0, 0, 0, 32, 0, 0);
        let mut w_b9 = Warp::new(0, 0, 0, 32, 0, 9);
        let mut a = Vec::new();
        generate_addresses(
            GlobalPattern::KernelTile { tile_lines: 8 },
            &mut w_b0,
            0,
            &mut a,
        );
        generate_addresses(
            GlobalPattern::KernelTile { tile_lines: 8 },
            &mut w_b9,
            9,
            &mut a,
        );
        assert_eq!(a[0], a[1]); // same position → same address despite block
    }

    fn event_mem(parts: u32, mshr: u32, dramq: u32) -> (SharedMem, Cache) {
        let cfg = MemConfig {
            mem_partitions: parts,
            mshr_entries: mshr,
            dram_queue_entries: dramq,
            ..MemConfig::default()
        };
        let l1 = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        (SharedMem::with_model(cfg, MemoryModel::Event), l1)
    }

    #[test]
    fn peak_mshr_occupancy_sums_across_partitions() {
        // Two same-cycle misses routed to different partitions (lines 0 and
        // 1 under 2-way interleaving): the machine-wide peak is 2 entries,
        // not the per-partition maximum of 1 the old sampling reported.
        let (mut sm, mut l1) = event_mem(2, 8, 0);
        sm.event_access(&mut l1, 0, 0, true);
        sm.event_access(&mut l1, 128, 0, true);
        assert_eq!(sm.stats.peak_mshr_occupancy, 2);
        // Same shape for the DRAM queue peak.
        let (mut sm, mut l1) = event_mem(2, 0, 8);
        sm.event_access(&mut l1, 0, 0, true);
        sm.event_access(&mut l1, 128, 0, true);
        assert_eq!(sm.stats.peak_dram_queue_occupancy, 2);
    }

    #[test]
    fn peak_mshr_occupancy_sees_peaks_between_releases() {
        // Admissions at different cycles with no release processed in
        // between must still raise the recorded peak monotonically: the
        // sample happens at every admission, not at release processing.
        let (mut sm, mut l1) = event_mem(1, 16, 0);
        for i in 0..4u64 {
            sm.advance_to(i);
            sm.event_access(&mut l1, i * 128, i, true);
            assert_eq!(sm.stats.peak_mshr_occupancy, (i + 1) as u32);
        }
    }

    #[test]
    fn capacity_release_is_visible_exactly_at_its_cycle() {
        // The tie-break the sharded commit phase (and the gated-sleep wake
        // path) relies on: a release due at cycle `r` is applied by
        // `advance_to(r)` — i.e. an SM woken at `r` that settles the memory
        // system before scanning observes the freed capacity that very
        // cycle, never one later. Same-cycle SM writebacks drain before
        // `advance_to` runs (see `Sm::step`), so the order within the wake
        // cycle is: writebacks, then releases, then the gate read.
        let (mut sm, mut l1) = event_mem(1, 1, 0);
        sm.event_access(&mut l1, 0, 0, true);
        let r = sm.next_release().expect("miss holds an MSHR entry");
        assert_eq!(sm.issue_gate().mshr_free, 0);
        sm.advance_to(r - 1);
        assert_eq!(sm.issue_gate().mshr_free, 0, "release must not fire early");
        assert_eq!(sm.next_release(), Some(r));
        sm.advance_to(r);
        assert_eq!(sm.issue_gate(), MemGate::OPEN, "table empty again at r");
        assert_eq!(sm.next_release(), None);
    }

    #[test]
    fn partition_count_above_the_cap_clamps_bit_identically() {
        let over = MemConfig {
            mem_partitions: u32::MAX,
            ..MemConfig::default()
        };
        let at_cap = MemConfig {
            mem_partitions: EventMem::MAX_PARTITIONS,
            ..MemConfig::default()
        };
        let mut a = SharedMem::with_model(over, MemoryModel::Event);
        let mut b = SharedMem::with_model(at_cap, MemoryModel::Event);
        let mk_l1 = |cfg: &MemConfig| {
            Cache::new(
                u64::from(cfg.l1_bytes),
                cfg.l1_ways,
                u64::from(cfg.line_bytes),
            )
        };
        let (mut l1a, mut l1b) = (mk_l1(&over), mk_l1(&at_cap));
        for i in 0..64u64 {
            let addr = i * 128 * 4097; // spread across many partitions
            assert_eq!(
                a.event_access(&mut l1a, addr, 0, true),
                b.event_access(&mut l1b, addr, 0, true),
            );
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn service_interval_scaling_saturates_instead_of_wrapping() {
        // A pathological per-transaction interval times the partition count
        // overflows u32: the scaled interval must pin to u32::MAX (slowest
        // representable bank), not wrap around to a tiny (fast) one.
        let cfg = MemConfig {
            mem_partitions: 2,
            l2_service_q4: u32::MAX,
            dram_service_q4: u32::MAX,
            ..MemConfig::default()
        };
        let mut sm = SharedMem::with_model(cfg, MemoryModel::Event);
        let mut l1 = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        let first = sm.event_access(&mut l1, 0, 0, true);
        let second = sm.event_access(&mut l1, 2 * 128, 0, true); // same partition
                                                                 // Back-to-back transactions on one bank must queue behind the
                                                                 // (saturated, enormous) service interval — a wrapped interval would
                                                                 // make them nearly free.
        assert!(second - first >= u64::from(u32::MAX) / 8);
    }

    #[test]
    fn stream_position_does_not_wrap_at_the_u32_boundary() {
        // Regression for the old `u32` + `wrapping_add` counters: a stream
        // position crossing 2^32 must keep its modulo phase instead of
        // snapping back to line 0 and re-aliasing the stream.
        let mut w = Warp::new(0, 0, 0, 32, 0, 0);
        let lines_per_warp = layout::STREAM_PER_WARP / LINE_BYTES;
        w.stream_pos = u64::from(u32::MAX);
        let mut a = Vec::new();
        generate_addresses(GlobalPattern::Stream, &mut w, 0, &mut a);
        generate_addresses(GlobalPattern::Stream, &mut w, 0, &mut a);
        assert_eq!(w.stream_pos, u64::from(u32::MAX) + 2, "no wrap to 0");
        let line0 = (u64::from(u32::MAX)) % lines_per_warp;
        let line1 = (u64::from(u32::MAX) + 1) % lines_per_warp;
        assert_eq!(a[0], layout::block_base(0) + line0 * LINE_BYTES);
        assert_eq!(a[1], layout::block_base(0) + line1 * LINE_BYTES);
        // Tile counters share the contract.
        w.tile_pos = u64::MAX;
        let mut b = Vec::new();
        generate_addresses(
            GlobalPattern::BlockTile { tile_lines: 4 },
            &mut w,
            0,
            &mut b,
        );
        assert_eq!(w.tile_pos, u64::MAX, "saturates rather than wraps");
    }

    #[test]
    fn scatter_emits_requested_transactions_in_span() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 2);
        let mut a = Vec::new();
        generate_addresses(
            GlobalPattern::Scatter {
                span_lines: 64,
                txns: 5,
            },
            &mut w,
            2,
            &mut a,
        );
        assert_eq!(a.len(), 5);
        let base = layout::block_base(2) + layout::SCATTER_BASE;
        for addr in &a {
            assert!(*addr >= base && *addr < base + 64 * LINE_BYTES);
        }
    }
}
