//! Global-memory subsystem: coalescer address generation, L1 → L2 → DRAM
//! timing.
//!
//! Each SM owns an L1; the L2 tag store and the L2/DRAM bandwidth servers are
//! shared by every SM (paper Table I: 16 KB L1 per core, 768 KB unified L2).
//! Timing is computed functionally at issue: a transaction's completion cycle
//! is `now + hit latency (+ L2 latency + L2 queue) (+ DRAM latency + DRAM
//! queue)` depending on where it hits; tag state updates eagerly. This keeps
//! the model deterministic and fast while preserving the contention effect
//! the paper's analysis relies on (more resident blocks ⇒ bigger combined
//! working set ⇒ more misses ⇒ longer queues).

use grs_core::MemConfig;
use grs_isa::{GlobalPattern, LINE_BYTES};

use crate::cache::{Cache, CacheOutcome};
use crate::server::ServerQueue;
use crate::stats::MemStats;
use crate::warp::Warp;

/// Virtual-address layout constants. Each grid block owns a disjoint 8 MB
/// span; kernel-shared tiles live in a separate high region.
pub mod layout {
    /// Bytes of address space per grid block.
    pub const BLOCK_SPAN: u64 = 1 << 23;
    /// Offset of the per-warp streaming region inside a block span.
    pub const STREAM_BASE: u64 = 0;
    /// Bytes of stream per warp (256 lines; wraps after that).
    pub const STREAM_PER_WARP: u64 = 1 << 15;
    /// Offset of the per-block tile region.
    pub const TILE_BASE: u64 = 0x60_0000;
    /// Offset of the per-block scatter region.
    pub const SCATTER_BASE: u64 = 0x70_0000;
    /// Base of the kernel-wide shared-tile region.
    pub const KERNEL_TILE_BASE: u64 = 0x4000_0000_0000;

    /// Base address of a grid block's span, including the anti-aliasing
    /// jitter applied by the address generator.
    pub fn block_base(grid_block: u32) -> u64 {
        u64::from(grid_block) * BLOCK_SPAN + (u64::from(grid_block) % 61) * crate::mem::JITTER_UNIT
    }
}

/// Jitter granularity (one cache line).
pub(crate) const JITTER_UNIT: u64 = LINE_BYTES;

/// Shared (cross-SM) part of the memory system.
#[derive(Debug, Clone)]
pub struct SharedMem {
    /// Unified L2 tag store.
    pub l2: Cache,
    /// L2 bank / interconnect bandwidth.
    pub l2_server: ServerQueue,
    /// DRAM channel bandwidth.
    pub dram_server: ServerQueue,
    /// Latency constants.
    pub cfg: MemConfig,
    /// Counters.
    pub stats: MemStats,
}

impl SharedMem {
    /// Build from a memory configuration.
    pub fn new(cfg: MemConfig) -> Self {
        SharedMem {
            l2: Cache::new(
                u64::from(cfg.l2_bytes),
                cfg.l2_ways,
                u64::from(cfg.line_bytes),
            ),
            l2_server: ServerQueue::new(cfg.l2_service_q4),
            dram_server: ServerQueue::new(cfg.dram_service_q4),
            cfg,
            stats: MemStats::default(),
        }
    }

    /// Timing for one **load** transaction to `addr` from the SM owning
    /// `l1`, issued at `now`. Returns the transaction latency in cycles.
    pub fn load(&mut self, l1: &mut Cache, addr: u64, now: u64) -> u64 {
        self.stats.transactions += 1;
        let base = u64::from(self.cfg.l1_hit_latency);
        match l1.access(addr) {
            CacheOutcome::Hit => {
                self.stats.l1_hits += 1;
                base
            }
            CacheOutcome::Miss => {
                self.stats.l1_misses += 1;
                let queue_l2 = self.l2_server.admit(now);
                match self.l2.access(addr) {
                    CacheOutcome::Hit => {
                        self.stats.l2_hits += 1;
                        base + u64::from(self.cfg.l2_latency) + queue_l2
                    }
                    CacheOutcome::Miss => {
                        self.stats.l2_misses += 1;
                        let queue_dram = self.dram_server.admit(now);
                        base + u64::from(self.cfg.l2_latency)
                            + queue_l2
                            + u64::from(self.cfg.dram_latency)
                            + queue_dram
                    }
                }
            }
        }
    }

    /// Timing for one **store** transaction (write-through, no allocate):
    /// consumes L2/DRAM bandwidth; latency models store-buffer drain.
    pub fn store(&mut self, l1: &mut Cache, addr: u64, now: u64) -> u64 {
        self.stats.transactions += 1;
        let base = u64::from(self.cfg.l1_hit_latency);
        l1.access_store(addr);
        let queue_l2 = self.l2_server.admit(now);
        match self.l2.access_store(addr) {
            CacheOutcome::Hit => base + u64::from(self.cfg.l2_latency) + queue_l2,
            CacheOutcome::Miss => {
                let queue_dram = self.dram_server.admit(now);
                base + u64::from(self.cfg.l2_latency) + queue_l2 + queue_dram
                // no dram_latency: stores are posted; only bandwidth matters
            }
        }
    }
}

/// Generate the line addresses one warp-level execution of `pattern`
/// produces, appending to `out`. Advances the warp's pattern counters/RNG —
/// call exactly once per issued memory instruction.
pub fn generate_addresses(
    pattern: GlobalPattern,
    warp: &mut Warp,
    grid_block: u32,
    out: &mut Vec<u64>,
) {
    // Per-block jitter of a few lines breaks the pathological set alignment
    // that power-of-two block spans would otherwise create (every block's
    // region mapping to the same cache sets) — the moral equivalent of the
    // address hashing real memory controllers apply.
    let block_base = layout::block_base(grid_block);
    match pattern {
        GlobalPattern::Stream => {
            let lines_per_warp = layout::STREAM_PER_WARP / LINE_BYTES;
            let line = u64::from(warp.stream_pos) % lines_per_warp;
            warp.stream_pos = warp.stream_pos.wrapping_add(1);
            out.push(
                block_base
                    + layout::STREAM_BASE
                    + u64::from(warp.warp_in_block) * layout::STREAM_PER_WARP
                    + line * LINE_BYTES,
            );
        }
        GlobalPattern::BlockTile { tile_lines } => {
            let tl = u64::from(tile_lines.max(1));
            let line = (u64::from(warp.warp_in_block) * 7 + u64::from(warp.tile_pos)) % tl;
            warp.tile_pos = warp.tile_pos.wrapping_add(1);
            out.push(block_base + layout::TILE_BASE + line * LINE_BYTES);
        }
        GlobalPattern::KernelTile { tile_lines } => {
            let tl = u64::from(tile_lines.max(1));
            let line = (u64::from(warp.warp_in_block) * 3 + u64::from(warp.tile_pos)) % tl;
            warp.tile_pos = warp.tile_pos.wrapping_add(1);
            out.push(layout::KERNEL_TILE_BASE + line * LINE_BYTES);
        }
        GlobalPattern::Scatter { span_lines, txns } => {
            // Cap the span so the region stays inside the block span.
            let span = u64::from(span_lines.max(1)).min(4096);
            for _ in 0..txns.max(1) {
                let line = warp.rng.next_below(span);
                out.push(block_base + layout::SCATTER_BASE + line * LINE_BYTES);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::MemConfig;

    fn mem() -> (SharedMem, Cache) {
        let cfg = MemConfig::default();
        let l1 = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        (SharedMem::new(cfg), l1)
    }

    #[test]
    fn l1_hit_is_cheapest() {
        let (mut sm, mut l1) = mem();
        let cold = sm.load(&mut l1, 0x1000, 0);
        let warm = sm.load(&mut l1, 0x1000, 0);
        assert!(warm < cold);
        assert_eq!(warm, u64::from(sm.cfg.l1_hit_latency));
        assert_eq!(sm.stats.l1_hits, 1);
        assert_eq!(sm.stats.l1_misses, 1);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let (mut sm, mut l1a) = mem();
        let cfg = sm.cfg;
        let mut l1b = Cache::new(
            u64::from(cfg.l1_bytes),
            cfg.l1_ways,
            u64::from(cfg.line_bytes),
        );
        // SM A warms L2; SM B misses L1 but hits L2.
        let dram = sm.load(&mut l1a, 0x8000, 0);
        let l2hit = sm.load(&mut l1b, 0x8000, 0);
        assert!(l2hit < dram);
        assert_eq!(sm.stats.l2_hits, 1);
        assert_eq!(sm.stats.l2_misses, 1);
    }

    #[test]
    fn dram_bandwidth_builds_queues() {
        let (mut sm, mut l1) = mem();
        // Distinct lines all missing to DRAM at the same cycle: latencies
        // must grow (non-strictly, thanks to sub-cycle service resolution)
        // as the service queue backs up.
        let lats: Vec<u64> = (0u64..8)
            .map(|i| sm.load(&mut l1, 0x100_0000 + i * 0x10_0000, 0))
            .collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]), "{lats:?}");
        assert!(lats[7] > lats[0], "{lats:?}");
    }

    #[test]
    fn stream_addresses_advance_and_stay_disjoint_per_warp() {
        let mut w0 = Warp::new(0, 0, 0, 32, 0, 5);
        let mut w1 = Warp::new(1, 0, 1, 32, 0, 5);
        let mut a = Vec::new();
        generate_addresses(GlobalPattern::Stream, &mut w0, 5, &mut a);
        generate_addresses(GlobalPattern::Stream, &mut w0, 5, &mut a);
        generate_addresses(GlobalPattern::Stream, &mut w1, 5, &mut a);
        assert_eq!(a[1], a[0] + LINE_BYTES);
        assert_ne!(a[2], a[0]);
        // Warp regions are disjoint.
        assert_eq!(a[2] - a[0], layout::STREAM_PER_WARP);
    }

    #[test]
    fn block_tile_wraps_within_tile() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 1);
        let mut a = Vec::new();
        for _ in 0..10 {
            generate_addresses(
                GlobalPattern::BlockTile { tile_lines: 4 },
                &mut w,
                1,
                &mut a,
            );
        }
        let base = layout::block_base(1) + layout::TILE_BASE;
        for addr in &a {
            assert!(*addr >= base && *addr < base + 4 * LINE_BYTES);
        }
        // Periodicity 4.
        assert_eq!(a[0], a[4]);
    }

    #[test]
    fn kernel_tile_is_shared_across_blocks() {
        let mut w_b0 = Warp::new(0, 0, 0, 32, 0, 0);
        let mut w_b9 = Warp::new(0, 0, 0, 32, 0, 9);
        let mut a = Vec::new();
        generate_addresses(
            GlobalPattern::KernelTile { tile_lines: 8 },
            &mut w_b0,
            0,
            &mut a,
        );
        generate_addresses(
            GlobalPattern::KernelTile { tile_lines: 8 },
            &mut w_b9,
            9,
            &mut a,
        );
        assert_eq!(a[0], a[1]); // same position → same address despite block
    }

    #[test]
    fn scatter_emits_requested_transactions_in_span() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 2);
        let mut a = Vec::new();
        generate_addresses(
            GlobalPattern::Scatter {
                span_lines: 64,
                txns: 5,
            },
            &mut w,
            2,
            &mut a,
        );
        assert_eq!(a.len(), 5);
        let base = layout::block_base(2) + layout::SCATTER_BASE;
        for addr in &a {
            assert!(*addr >= base && *addr < base + 64 * LINE_BYTES);
        }
    }
}
