//! Grid-level block dispatcher.
//!
//! Hands out grid block ids in launch order; the GPU fills SM slots
//! round-robin at kernel start and refills a slot the cycle its block
//! completes (GPGPU-Sim's behaviour). Replacement blocks entering a shared
//! slot join the pair as the *non-owner* (paper Sec. IV: "a new non-owner
//! thread block gets launched").

/// Sequential grid dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatcher {
    next: u32,
    total: u32,
}

impl Dispatcher {
    /// Dispatcher over `total` grid blocks.
    pub fn new(total: u32) -> Self {
        Dispatcher { next: 0, total }
    }

    /// Next block id, if the grid is not exhausted.
    pub fn next_block(&mut self) -> Option<u32> {
        if self.next < self.total {
            let id = self.next;
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Blocks not yet dispatched.
    pub fn remaining(&self) -> u32 {
        self.total - self.next
    }

    /// Total grid size.
    pub fn total(&self) -> u32 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispenses_in_order_then_exhausts() {
        let mut d = Dispatcher::new(3);
        assert_eq!(d.remaining(), 3);
        assert_eq!(d.next_block(), Some(0));
        assert_eq!(d.next_block(), Some(1));
        assert_eq!(d.next_block(), Some(2));
        assert_eq!(d.next_block(), None);
        assert_eq!(d.remaining(), 0);
        assert_eq!(d.total(), 3);
    }
}
