//! # grs-sim — cycle-level SIMT GPU simulator
//!
//! The evaluation substrate of the reproduction: a from-scratch, deterministic
//! cycle-level model of the paper's Table I GPU (the role GPGPU-Sim v3.x plays
//! in the original work). Per cycle, each SM's scheduler units pick ready
//! warps and issue instructions in order; long-latency results return through
//! a writeback queue; global memory flows through a per-SM L1, a shared L2
//! with bandwidth limits, and a DRAM latency/service model; the
//! resource-sharing runtime from [`grs_core`] gates shared register and
//! scratchpad accesses through the paper's Fig. 3/Fig. 4 automata.
//!
//! Execution is event-driven where cycle-accuracy permits: writebacks live
//! in a bucketed timing wheel ([`wheel`]), the per-cycle readiness scan is
//! incremental (only warps whose state could have changed are re-examined),
//! and when no SM can make progress the run loop fast-forwards the clock to
//! the next writeback while crediting the skipped span to the same idle /
//! empty counters the per-cycle loop would have produced — statistics are
//! bit-identical with [`RunConfig::fast_forward`] on or off. On top of
//! that, [`RunConfig::shards`] runs the SM array on worker threads with an
//! epoch-batched commit protocol ([`shard`]) that keeps every shared-state
//! interaction in the sequential engine's canonical order — statistics stay
//! bit-identical for any shard count.
//!
//! Global-memory timing comes in two selectable models
//! ([`RunConfig::memory_model`]): the default **functional** model computes
//! each transaction's full latency the cycle it issues, while the
//! **event-driven** model ([`mem::EventMem`]) slices the L2 into memory
//! partitions with finite MSHR tables and bounded DRAM queues whose
//! back-pressure gates SM issue — congestion builds up *after* issue, the
//! way it does in hardware. See `ARCHITECTURE.md` at the repository root
//! for the full execution-path map.
//!
//! The top-level API is [`Simulator`]: configure a [`RunConfig`], call
//! [`Simulator::run`] on a [`grs_isa::Kernel`], read the [`SimStats`].
//!
//! ```
//! use grs_core::{GpuConfig, SchedulerKind, Threshold};
//! use grs_isa::{GlobalPattern, KernelBuilder};
//! use grs_sim::{RunConfig, SharingMode, Simulator};
//!
//! let kernel = KernelBuilder::new("axpy")
//!     .threads_per_block(128)
//!     .regs_per_thread(16)
//!     .grid_blocks(32)
//!     .ld_global(GlobalPattern::Stream)
//!     .ffma(4)
//!     .st_global(GlobalPattern::Stream)
//!     .build();
//!
//! let baseline = Simulator::new(RunConfig::baseline_lrr()).run(&kernel);
//! let shared = Simulator::new(RunConfig::paper_register_sharing()).run(&kernel);
//! assert!(shared.ipc() > 0.0 && baseline.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod dispatch;
pub mod gpu;
pub mod kinfo;
pub mod mem;
pub mod rng;
pub mod run;
pub mod server;
pub mod shard;
pub mod sm;
pub mod stats;
pub mod supervise;
pub mod telemetry;
pub mod warp;
pub mod wheel;

pub use mem::MemoryModel;
pub use run::{RunConfig, SharingMode, Simulator};
pub use stats::{MemStats, SimStats, SmStats};
pub use supervise::{
    FaultPlan, MemDiag, RecoveryEvent, RunOutcome, RunReport, ServiceStats, SmDiag, StallDiagnosis,
};
pub use telemetry::{
    MemSampleRow, SampleRow, StallReason, TelemetryConfig, TelemetryEvent, TelemetryReport,
    TraceRecord, Track, TrackStats,
};
