//! Public simulation API: [`RunConfig`] + [`Simulator`].

use grs_core::{
    compute_launch_plan, occupancy, reorder_declarations, GpuConfig, KernelFootprint, LaunchPlan,
    ResourceKind, SchedulerKind, Threshold,
};
use grs_isa::Kernel;
use serde::{Deserialize, Serialize};

use crate::gpu::Gpu;
use crate::kinfo::KernelInfo;
use crate::mem::MemoryModel;
use crate::stats::SimStats;
use crate::supervise::{FaultPlan, RunReport};
use crate::telemetry::TelemetryConfig;

/// Whether (and which) resource sharing is active for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingMode {
    /// Baseline: block-granularity allocation only.
    None,
    /// Register sharing (paper Sec. III-A).
    Registers,
    /// Scratchpad sharing (paper Sec. III-B).
    Scratchpad,
}

impl SharingMode {
    /// The shared resource, if any.
    pub fn resource(self) -> Option<ResourceKind> {
        match self {
            SharingMode::None => None,
            SharingMode::Registers => Some(ResourceKind::Registers),
            SharingMode::Scratchpad => Some(ResourceKind::Scratchpad),
        }
    }
}

/// Full configuration of one simulation run. The named constructors cover
/// every configuration the paper evaluates; the `with_*` methods tweak
/// individual knobs for ablations.
///
/// # Example
///
/// The paper's register-sharing machine with GTO scheduling and the
/// event-driven memory model, on a 2-SM machine for a quick run:
///
/// ```
/// use grs_core::SchedulerKind;
/// use grs_isa::{GlobalPattern, KernelBuilder};
/// use grs_sim::{MemoryModel, RunConfig, SharingMode, Simulator};
///
/// let mut cfg = RunConfig::paper_register_sharing()
///     .with_scheduler(SchedulerKind::Gto)
///     .with_memory_model(MemoryModel::Event);
/// assert_eq!(cfg.sharing, SharingMode::Registers);
/// cfg.gpu.num_sms = 2;
///
/// let kernel = KernelBuilder::new("stream")
///     .threads_per_block(128)
///     .regs_per_thread(24)
///     .grid_blocks(8)
///     .ld_global(GlobalPattern::Stream)
///     .ffma(2)
///     .build();
/// let stats = Simulator::new(cfg).run(&kernel);
/// assert_eq!(stats.blocks_completed, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Machine description (Table I by default).
    pub gpu: GpuConfig,
    /// Warp scheduler.
    pub scheduler: SchedulerKind,
    /// Sharing mode.
    pub sharing: SharingMode,
    /// Sharing threshold `t`.
    pub threshold: Threshold,
    /// Dynamic warp-execution throttle (paper Sec. IV-C).
    pub dyn_throttle: bool,
    /// Apply the declaration-reordering pass (paper Sec. IV-B) before
    /// simulating.
    pub reorder_decls: bool,
    /// Event-driven fast-forward engine: skip spans of cycles in which no SM
    /// can make progress (see the `grs_sim::gpu` module docs). Statistics
    /// are bit-identical with the engine on or off; the knob exists so tests
    /// and benches can diff the fast path against the per-cycle reference.
    pub fast_forward: bool,
    /// How the shared memory system is timed (see the `grs_sim::mem` module
    /// docs). `Functional` (the default) computes each transaction's full
    /// latency at issue over infinite buffering; `Event` models
    /// per-partition L2 banks with finite MSHR tables and bounded DRAM
    /// queues whose back-pressure gates SM issue.
    pub memory_model: MemoryModel,
    /// Shard the SM array across this many worker threads using the
    /// epoch-batched commit protocol (see the `grs_sim::shard` module docs).
    /// `None` (the default) runs the sequential engine. Results are
    /// **bit-identical** for any shard count — sharding is purely a
    /// wall-clock optimization, pinned by `tests/shard_equivalence.rs`.
    /// A count of 0 or 1, or a single-SM machine, degrades to the epoch
    /// engine on one thread. Sharding implies the event-driven fast-forward
    /// stepping rules internally regardless of [`Self::fast_forward`] (the
    /// two are bit-identical, so this is unobservable in the statistics).
    pub shards: Option<usize>,
    /// Snapshot the complete machine state every this many cycles (see the
    /// `grs_sim::supervise` module docs). `None` (the default) never
    /// checkpoints mid-run. Checkpointing is unobservable in the
    /// statistics — resuming from any snapshot is bit-identical to the
    /// straight run, pinned by `tests/checkpoint_resume.rs` — and is what
    /// the sharded engine's panic recovery rolls back to.
    pub checkpoint_every: Option<u64>,
    /// Cycle-level telemetry: structured event tracing and periodic metric
    /// sampling (see the [`crate::telemetry`] module docs). `None` (the
    /// default) records nothing and adds no per-cycle work. Tracing is
    /// **observation-only**: [`SimStats`] are bit-identical with telemetry
    /// on or off, pinned by `tests/telemetry.rs` across the full scheduler ×
    /// sharing × memory-model matrix on all three engines.
    pub telemetry: Option<TelemetryConfig>,
    /// Forward-progress watchdog window, in cycles. If the run reaches a
    /// cycle at least this far past the last provable progress (an issued
    /// instruction or a scheduled writeback/capacity release) while SMs are
    /// still live, the run ends with
    /// [`RunOutcome::Stalled`](crate::supervise::RunOutcome) and a
    /// structured [`StallDiagnosis`](crate::supervise::StallDiagnosis)
    /// instead of spinning to [`Self::max_cycles`]. `None` (the default)
    /// disables the watchdog. The trip cycle is engine-invariant.
    pub watchdog: Option<u64>,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
}

impl RunConfig {
    const DEFAULT_MAX_CYCLES: u64 = 50_000_000;

    /// The paper's baseline: unshared, LRR scheduling (labelled
    /// `Unshared-LRR` in the figures).
    pub fn baseline_lrr() -> Self {
        RunConfig {
            gpu: GpuConfig::paper_baseline(),
            scheduler: SchedulerKind::Lrr,
            sharing: SharingMode::None,
            threshold: Threshold::paper_default(),
            dyn_throttle: false,
            reorder_decls: false,
            fast_forward: true,
            memory_model: MemoryModel::Functional,
            shards: None,
            checkpoint_every: None,
            telemetry: None,
            watchdog: None,
            max_cycles: Self::DEFAULT_MAX_CYCLES,
        }
    }

    /// Unshared baseline with GTO scheduling (`Unshared-GTO`, Fig. 10(a,b)).
    pub fn baseline_gto() -> Self {
        RunConfig {
            scheduler: SchedulerKind::Gto,
            ..Self::baseline_lrr()
        }
    }

    /// Unshared baseline with two-level scheduling (Fig. 10(c,d); the paper
    /// uses fetch groups of 8).
    pub fn baseline_two_level() -> Self {
        RunConfig {
            scheduler: SchedulerKind::TwoLevel { group_size: 8 },
            ..Self::baseline_lrr()
        }
    }

    /// The paper's full register-sharing configuration
    /// (`Shared-OWF-Unroll-Dyn`): OWF scheduling, declaration reordering,
    /// dynamic throttle, t = 0.1.
    pub fn paper_register_sharing() -> Self {
        RunConfig {
            scheduler: SchedulerKind::Owf,
            sharing: SharingMode::Registers,
            dyn_throttle: true,
            reorder_decls: true,
            ..Self::baseline_lrr()
        }
    }

    /// The paper's full scratchpad-sharing configuration (`Shared-OWF`):
    /// OWF scheduling, t = 0.1. (Unroll and Dyn are register-sharing
    /// optimizations; the paper does not apply them to scratchpad sharing.)
    pub fn paper_scratchpad_sharing() -> Self {
        RunConfig {
            scheduler: SchedulerKind::Owf,
            sharing: SharingMode::Scratchpad,
            ..Self::baseline_lrr()
        }
    }

    /// Replace the scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Replace the sharing mode.
    pub fn with_sharing(mut self, s: SharingMode) -> Self {
        self.sharing = s;
        self
    }

    /// Replace the threshold.
    pub fn with_threshold(mut self, t: Threshold) -> Self {
        self.threshold = t;
        self
    }

    /// Enable/disable the dynamic throttle.
    pub fn with_dyn_throttle(mut self, on: bool) -> Self {
        self.dyn_throttle = on;
        self
    }

    /// Enable/disable declaration reordering.
    pub fn with_reorder_decls(mut self, on: bool) -> Self {
        self.reorder_decls = on;
        self
    }

    /// Enable/disable the event-driven fast-forward engine (on by default;
    /// off runs the cycle-by-cycle reference loop — same statistics, slower).
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Replace the memory model (`Functional` by default).
    pub fn with_memory_model(mut self, m: MemoryModel) -> Self {
        self.memory_model = m;
        self
    }

    /// Shard the SM array across `n` worker threads (`None` = sequential;
    /// see [`Self::shards`]).
    pub fn with_shards(mut self, n: Option<usize>) -> Self {
        self.shards = n;
        self
    }

    /// Checkpoint the machine state every `c` cycles (`None` = never; see
    /// [`Self::checkpoint_every`]).
    pub fn with_checkpoint_every(mut self, c: Option<u64>) -> Self {
        self.checkpoint_every = c;
        self
    }

    /// Enable cycle-level telemetry (`None` = off; see [`Self::telemetry`]).
    pub fn with_telemetry(mut self, t: Option<TelemetryConfig>) -> Self {
        self.telemetry = t;
        self
    }

    /// Set the forward-progress watchdog window (`None` = disabled; see
    /// [`Self::watchdog`]).
    pub fn with_watchdog(mut self, w: Option<u64>) -> Self {
        self.watchdog = w;
        self
    }

    /// Replace the machine description.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Replace the cycle bound.
    pub fn with_max_cycles(mut self, c: u64) -> Self {
        self.max_cycles = c;
        self
    }
}

/// Errors a run can fail with before simulation starts.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The kernel failed static validation.
    InvalidKernel(grs_isa::ValidateError),
    /// The simulator's scoreboard supports at most 64 registers per thread.
    TooManyRegisters {
        /// Registers the kernel declares.
        regs: u32,
    },
    /// Not even one block fits on an SM.
    KernelDoesNotFit,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            RunError::TooManyRegisters { regs } => {
                write!(
                    f,
                    "kernel declares {regs} registers/thread; the simulator supports ≤ 64"
                )
            }
            RunError::KernelDoesNotFit => write!(f, "kernel does not fit on one SM"),
        }
    }
}

impl std::error::Error for RunError {}

/// The simulator front end.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: RunConfig,
}

impl Simulator {
    /// Create a simulator for `cfg`.
    pub fn new(cfg: RunConfig) -> Self {
        Simulator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Compute the launch plan this configuration gives `kernel` without
    /// simulating (paper Fig. 8(a,b) / Tables VI, VIII).
    pub fn plan_for(&self, kernel: &Kernel) -> LaunchPlan {
        let fp = KernelFootprint::of(kernel);
        match self.cfg.sharing.resource() {
            Some(res) => compute_launch_plan(&self.cfg.gpu.sm, &fp, self.cfg.threshold, res),
            None => {
                let occ = occupancy(&self.cfg.gpu.sm, &fp);
                LaunchPlan {
                    unshared: occ.blocks,
                    shared_pairs: 0,
                    max_blocks: occ.blocks,
                    baseline_blocks: occ.blocks,
                    resource: ResourceKind::Registers,
                }
            }
        }
    }

    /// Simulate `kernel`; returns statistics or a configuration error.
    ///
    /// Equivalent to [`Self::try_run_report`] with the outcome and recovery
    /// metadata discarded.
    pub fn try_run(&self, kernel: &Kernel) -> Result<SimStats, RunError> {
        self.try_run_report(kernel).map(|r| r.stats)
    }

    /// Simulate `kernel` under supervision; returns the full
    /// [`RunReport`] (statistics plus outcome, recovery events and
    /// checkpoint count) or a configuration error.
    pub fn try_run_report(&self, kernel: &Kernel) -> Result<RunReport, RunError> {
        self.try_run_report_with(kernel, None)
    }

    /// [`Self::try_run_report`] with a deterministic [`FaultPlan`]
    /// injecting worker panics into the sharded engine — the test entry
    /// point that proves the recovery path yields bit-identical statistics.
    pub fn try_run_report_with_faults(
        &self,
        kernel: &Kernel,
        faults: &FaultPlan,
    ) -> Result<RunReport, RunError> {
        self.try_run_report_with(kernel, Some(faults))
    }

    fn try_run_report_with(
        &self,
        kernel: &Kernel,
        faults: Option<&FaultPlan>,
    ) -> Result<RunReport, RunError> {
        grs_isa::validate(kernel).map_err(RunError::InvalidKernel)?;
        if kernel.regs_per_thread > 64 {
            return Err(RunError::TooManyRegisters {
                regs: kernel.regs_per_thread,
            });
        }
        let mut kernel = kernel.clone();
        if self.cfg.reorder_decls && self.cfg.sharing == SharingMode::Registers {
            reorder_declarations(&mut kernel);
        }
        let plan = self.plan_for(&kernel);
        if plan.max_blocks == 0 {
            return Err(RunError::KernelDoesNotFit);
        }
        let kinfo = KernelInfo::new(kernel, self.cfg.sharing.resource(), self.cfg.threshold);
        let gpu = Gpu::new(
            &self.cfg.gpu,
            &kinfo,
            plan,
            self.cfg.scheduler,
            self.cfg.dyn_throttle,
            self.cfg.sharing.resource(),
            // The sharded engine free-runs SMs between interaction points,
            // which is exactly the fast-forward stepping discipline — force
            // the incremental scan on (bit-identical either way).
            self.cfg.fast_forward || self.cfg.shards.is_some(),
            self.cfg.memory_model,
            self.cfg.telemetry,
        );
        Ok(crate::supervise::supervise(&self.cfg, gpu, &kinfo, faults))
    }

    /// Simulate `kernel`; panics on configuration errors (convenience for
    /// examples and benches).
    pub fn run(&self, kernel: &Kernel) -> SimStats {
        self.try_run(kernel).expect("simulation failed")
    }

    /// Simulate `kernel` under supervision; panics on configuration errors.
    pub fn run_report(&self, kernel: &Kernel) -> RunReport {
        self.try_run_report(kernel).expect("simulation failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::{GlobalPattern, KernelBuilder};

    fn small_kernel() -> Kernel {
        KernelBuilder::new("k")
            .threads_per_block(64)
            .regs_per_thread(16)
            .grid_blocks(8)
            .ialu(4)
            .ld_global(GlobalPattern::Stream)
            .ffma(4)
            .build()
    }

    #[test]
    fn baseline_run_completes_grid() {
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 2;
        let stats = Simulator::new(cfg).run(&small_kernel());
        assert!(!stats.timed_out);
        assert_eq!(stats.blocks_completed, 8);
        assert!(stats.ipc() > 0.0);
        // 10 warp instrs per warp × 2 warps × 8 blocks.
        assert_eq!(stats.warp_instrs, 10 * 2 * 8);
        assert_eq!(stats.thread_instrs, stats.warp_instrs * 32);
    }

    #[test]
    fn determinism() {
        let mut cfg = RunConfig::paper_register_sharing();
        cfg.gpu.num_sms = 2;
        let a = Simulator::new(cfg.clone()).run(&small_kernel());
        let b = Simulator::new(cfg).run(&small_kernel());
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_kernel_is_rejected() {
        let mut k = small_kernel();
        k.grid_blocks = 0;
        let err = Simulator::new(RunConfig::baseline_lrr()).try_run(&k);
        assert!(matches!(err, Err(RunError::InvalidKernel(_))));
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let k = KernelBuilder::new("fat")
            .threads_per_block(1024)
            .regs_per_thread(40)
            .smem_per_block(0)
            .grid_blocks(1)
            .ialu(1)
            .build();
        // 40 × 1024 = 40960 registers > 32768: does not fit.
        let err = Simulator::new(RunConfig::baseline_lrr()).try_run(&k);
        assert_eq!(err, Err(RunError::KernelDoesNotFit));
    }

    #[test]
    fn too_many_registers_is_rejected() {
        let k = KernelBuilder::new("wide")
            .threads_per_block(32)
            .regs_per_thread(65)
            .grid_blocks(1)
            .ialu(1)
            .build();
        let err = Simulator::new(RunConfig::baseline_lrr()).try_run(&k);
        assert_eq!(err, Err(RunError::TooManyRegisters { regs: 65 }));
    }

    #[test]
    fn sharing_increases_resident_blocks_for_limited_kernel() {
        // hotspot-like footprint: 36 regs × 256 threads.
        let k = KernelBuilder::new("hotspotish")
            .threads_per_block(256)
            .regs_per_thread(36)
            .grid_blocks(28)
            .ialu(8)
            .build();
        let base = Simulator::new(RunConfig::baseline_lrr()).plan_for(&k);
        let shared = Simulator::new(RunConfig::paper_register_sharing()).plan_for(&k);
        assert_eq!(base.max_blocks, 3);
        assert_eq!(shared.max_blocks, 6);
    }
}
