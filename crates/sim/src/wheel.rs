//! Bucketed calendar queue ("timing wheel") for absolute-cycle events.
//!
//! The per-cycle hot paths of the simulator need three operations: schedule
//! an event at an absolute cycle, drain everything due at the current cycle,
//! and — for the fast-forward engine — report the earliest pending event. A
//! binary heap does all three but pays `O(log n)` per event and per-cycle
//! peek churn; a calendar queue makes the common case a constant-time bucket
//! append/drain and keeps the exact minimum on hand.
//!
//! The wheel is generic over its payload: [`crate::sm::Sm`] schedules
//! [`crate::sm::Writeback`] completions on it, and the event-driven memory
//! model ([`crate::mem::EventMem`]) schedules MSHR-entry and DRAM-queue-slot
//! releases. Events scheduled for the same cycle land in the same bucket and
//! drain together in insertion order — which is what lets a warp's N
//! per-transaction completions coalesce into one wake-up without any extra
//! merging structure. Insertion-order draining is also a determinism
//! contract: every engine (per-cycle, fast-forward, sharded) inserts a
//! given SM's events in the same canonical order, so same-cycle ties
//! resolve identically everywhere. Within one SM cycle the ordering is
//! writeback drains first, then lazy memory-capacity releases
//! (`SharedMem::advance_to`), then the gate read — see the tie-break note
//! in [`crate::sm::Sm::step`].
//!
//! Layout: a ring of `SLOTS` buckets indexed by `cycle % SLOTS`. An event
//! scheduled more than `SLOTS` cycles ahead (possible only under extreme
//! bandwidth-queue backlog) goes to a small unsorted overflow list that is
//! consulted by its cached minimum. Invariant: every bucketed event's cycle
//! lies in `(drained_to, drained_to + SLOTS]`, so a bucket never mixes events
//! of different due cycles and drains whole.

/// Ring size in cycles. Covers the full L1+L2+DRAM latency path plus typical
/// queueing delay; deeper backlogs spill to the overflow list.
const SLOTS: usize = 1024;
const MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;

/// Calendar queue over `(due cycle, payload)` events.
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    slots: Vec<Vec<(u64, T)>>,
    /// One bit per non-empty bucket, for fast earliest-event scans.
    occupancy: [u64; WORDS],
    overflow: Vec<(u64, T)>,
    overflow_min: u64,
    /// Exact earliest pending cycle (`u64::MAX` when empty).
    earliest: u64,
    /// Every event at a cycle `<= drained_to` has been handed out.
    drained_to: u64,
    len: usize,
    /// Latest due cycle ever scheduled (0 before the first push). Never
    /// reset by drains: it is a monotone progress watermark, not a queue
    /// property. The forward-progress watchdog reads it to prove "no event
    /// is scheduled past this cycle", and it is engine-invariant because
    /// every engine pushes the same events with the same clamped due cycles.
    latest: u64,
}

impl<T: Copy> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> TimingWheel<T> {
    /// Empty wheel starting at cycle 0.
    pub fn new() -> Self {
        TimingWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; WORDS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            earliest: u64::MAX,
            drained_to: 0,
            len: 0,
            latest: 0,
        }
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No pending events?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending event cycle — the "when can anything next happen"
    /// answer the fast-forward engine consumes.
    #[inline]
    pub fn next_due(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.earliest)
        }
    }

    /// Latest due cycle ever scheduled on this wheel (0 if nothing was ever
    /// pushed). Monotone non-decreasing across the wheel's lifetime — see
    /// the field note on `latest`.
    #[inline]
    pub fn latest_scheduled(&self) -> u64 {
        self.latest
    }

    /// Schedule `payload` at cycle `at`. An event at an already-drained cycle
    /// is deferred to the next drain (matching a heap that would pop it on
    /// the following peek).
    pub fn push(&mut self, at: u64, payload: T) {
        let due = at.max(self.drained_to + 1);
        self.len += 1;
        self.latest = self.latest.max(due);
        self.earliest = self.earliest.min(due);
        if due > self.drained_to + SLOTS as u64 {
            self.overflow_min = self.overflow_min.min(due);
            self.overflow.push((due, payload));
        } else {
            let idx = (due & MASK) as usize;
            self.slots[idx].push((due, payload));
            self.occupancy[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Move every event due at or before `now` into `out` (cleared first)
    /// and advance the wheel to `now`. Within one call, events of the same
    /// cycle come out in insertion order; callers must not depend on any
    /// ordering beyond that (the simulator's event effects commute within a
    /// cycle).
    pub fn drain_due_into(&mut self, now: u64, out: &mut Vec<(u64, T)>) {
        out.clear();
        if now <= self.drained_to {
            return;
        }
        if self.earliest > now {
            // Nothing due: advance time without touching buckets (they only
            // hold events strictly later than `now`).
            self.drained_to = now;
            return;
        }
        let span = now - self.drained_to;
        if span < 64 {
            // Short advance (the per-cycle common case): probe the few
            // buckets in the span directly.
            for cycle in self.drained_to + 1..=now {
                let idx = (cycle & MASK) as usize;
                if !self.slots[idx].is_empty() {
                    debug_assert!(self.slots[idx].iter().all(|ev| ev.0 == cycle));
                    out.append(&mut self.slots[idx]);
                    self.occupancy[idx / 64] &= !(1 << (idx % 64));
                }
            }
        } else {
            // Long advance (a fast-forward wake-up): walk only the occupied
            // buckets via the bitmap. Every bucketed event lies within
            // `(drained_to, drained_to + SLOTS]`, so a bucket's (single) due
            // cycle is just read off its first entry.
            for word_idx in 0..WORDS {
                let mut word = self.occupancy[word_idx];
                while word != 0 {
                    let bit = word.trailing_zeros();
                    word &= word - 1;
                    let idx = word_idx * 64 + bit as usize;
                    let cycle = self.slots[idx][0].0;
                    debug_assert!(self.slots[idx].iter().all(|ev| ev.0 == cycle));
                    if cycle <= now {
                        out.append(&mut self.slots[idx]);
                        self.occupancy[word_idx] &= !(1u64 << bit);
                    }
                }
            }
        }
        if self.overflow_min <= now {
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].0 <= now {
                    out.push(self.overflow.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.overflow_min = self
                .overflow
                .iter()
                .map(|ev| ev.0)
                .min()
                .unwrap_or(u64::MAX);
        }
        self.len -= out.len();
        self.drained_to = now;
        self.recompute_earliest();
    }

    fn recompute_earliest(&mut self) {
        let mut best = self.overflow_min;
        if self.len > self.overflow.len() {
            let start = ((self.drained_to + 1) & MASK) as usize;
            let d = self
                .first_occupied_distance(start)
                .expect("occupancy bits track non-empty buckets");
            best = best.min(self.drained_to + 1 + d as u64);
        }
        self.earliest = best;
    }

    /// Distance (in buckets, wrapping) from `start` to the first non-empty
    /// bucket, scanning the occupancy bitmap.
    fn first_occupied_distance(&self, start: usize) -> Option<usize> {
        let word0 = start / 64;
        let bit0 = start % 64;
        for i in 0..=WORDS {
            let w = (word0 + i) % WORDS;
            let mut word = self.occupancy[w];
            if i == 0 {
                word &= u64::MAX << bit0;
            } else if i == WORDS {
                if bit0 == 0 {
                    break;
                }
                word &= (1u64 << bit0) - 1;
            }
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                return Some((idx + SLOTS - start) % SLOTS);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimingWheel<u32>, now: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        w.drain_due_into(now, &mut out);
        out
    }

    #[test]
    fn events_come_out_at_their_cycle() {
        let mut w = TimingWheel::new();
        w.push(5, 1u32);
        w.push(3, 2);
        w.push(5, 3);
        assert_eq!(w.next_due(), Some(3));
        assert!(drain(&mut w, 2).is_empty());
        assert_eq!(drain(&mut w, 3), vec![(3, 2)]);
        assert_eq!(w.next_due(), Some(5));
        assert_eq!(drain(&mut w, 5), vec![(5, 1), (5, 3)]);
        assert!(w.is_empty());
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn jump_drains_collect_everything_due() {
        let mut w = TimingWheel::new();
        for c in [10u64, 700, 1500, 4000] {
            w.push(c, c as u32);
        }
        assert_eq!(w.len(), 4);
        let mut got = drain(&mut w, 2000);
        got.sort_unstable();
        assert_eq!(got, vec![(10, 10), (700, 700), (1500, 1500)]);
        assert_eq!(w.next_due(), Some(4000));
        assert_eq!(drain(&mut w, 1 << 40), vec![(4000, 4000)]);
    }

    #[test]
    fn overflow_events_surface_via_next_due() {
        let mut w = TimingWheel::new();
        w.push(100_000, 7u32); // far beyond the ring
        assert_eq!(w.next_due(), Some(100_000));
        assert!(drain(&mut w, 99_999).is_empty());
        assert_eq!(drain(&mut w, 100_000), vec![(100_000, 7)]);
    }

    #[test]
    fn overflow_and_ring_share_the_minimum() {
        let mut w = TimingWheel::new();
        w.push(5000, 1u32);
        assert!(drain(&mut w, 4000).is_empty()); // event now within ring reach
        w.push(4500, 2);
        assert_eq!(w.next_due(), Some(4500));
        assert_eq!(drain(&mut w, 4600), vec![(4500, 2)]);
        assert_eq!(w.next_due(), Some(5000));
    }

    #[test]
    fn stale_events_are_deferred_not_lost() {
        let mut w = TimingWheel::new();
        assert!(drain(&mut w, 50).is_empty());
        w.push(10, 1u32); // already past: becomes due at cycle 51
        assert_eq!(w.next_due(), Some(51));
        assert_eq!(drain(&mut w, 51), vec![(51, 1)]);
    }

    #[test]
    fn ring_aliasing_keeps_cycles_apart() {
        let mut w = TimingWheel::new();
        w.push(3, 1u32);
        assert_eq!(drain(&mut w, 3), vec![(3, 1)]);
        // Same bucket as cycle 3 (3 + 1024), pushed after time has advanced.
        w.push(3 + SLOTS as u64, 2);
        assert!(drain(&mut w, 100).is_empty());
        assert_eq!(w.next_due(), Some(3 + SLOTS as u64));
        assert_eq!(drain(&mut w, 3 + SLOTS as u64), vec![(3 + SLOTS as u64, 2)]);
    }

    #[test]
    fn same_cycle_events_share_a_bucket_and_drain_together() {
        // The wake-up-coalescing property the memory model relies on: N
        // events for one cycle come out of a single drain, in push order.
        let mut w = TimingWheel::new();
        for i in 0..8u32 {
            w.push(40, i);
        }
        let got = drain(&mut w, 40);
        assert_eq!(got.len(), 8);
        assert!(got.iter().enumerate().all(|(i, ev)| ev.1 == i as u32));
    }

    #[test]
    fn latest_scheduled_is_a_monotone_push_watermark() {
        let mut w = TimingWheel::new();
        assert_eq!(w.latest_scheduled(), 0);
        w.push(40, 1u32);
        w.push(10, 2);
        assert_eq!(w.latest_scheduled(), 40);
        // Draining never rewinds the watermark.
        assert_eq!(drain(&mut w, 50).len(), 2);
        assert_eq!(w.latest_scheduled(), 40);
        // A stale push records its clamped (deferred) due cycle.
        w.push(5, 3);
        assert_eq!(w.latest_scheduled(), 51);
    }

    #[test]
    fn matches_a_sorted_model_across_mixed_traffic() {
        // Deterministic pseudo-random workload compared against a Vec-based
        // reference model.
        let mut w = TimingWheel::new();
        let mut model: Vec<(u64, u32)> = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for step in 0..2000u64 {
            let r = rng();
            // Mix short ALU-like, long DRAM-like, and pathological delays.
            let delay = match r % 5 {
                0 => 4,
                1 => 20,
                2 => 480,
                3 => 1 + r % 1500,
                _ => 1 + r % 40,
            };
            let ev = (now + delay, step as u32);
            w.push(ev.0, ev.1);
            model.push(ev);
            now += 1 + r % 7; // occasional multi-cycle hops
            let mut got = drain(&mut w, now);
            got.sort_unstable();
            let mut expect: Vec<(u64, u32)> =
                model.iter().copied().filter(|e| e.0 <= now).collect();
            expect.sort_unstable();
            model.retain(|e| e.0 > now);
            assert_eq!(got, expect, "step {step} now {now}");
            assert_eq!(
                w.next_due(),
                model.iter().map(|e| e.0).min(),
                "step {step} now {now}"
            );
        }
    }
}
