//! Whole-GPU orchestration: SM array, shared memory system, dispatcher,
//! dynamic throttle, main cycle loop with event-driven fast-forward.
//!
//! ## Fast-forward
//!
//! On memory-bound kernels most cycles are *dead* for most SMs: no ready
//! warp, nothing blocked on a lock, a port or the throttle, and every state
//! change until the next writeback drain is fully predetermined. An SM that
//! reports such a quiescent cycle ([`crate::sm::StepOutcome`]) goes to
//! *sleep* until its earliest pending writeback (its timing wheel's
//! minimum): while asleep it cannot act (no ready warps, no issues, no
//! memory traffic) and nothing external can change its readiness — other
//! SMs interact only through the shared memory system (touched at issue
//! time only) and the dispatcher (consulted only on block completion), and
//! throttle-probability changes only matter to warps the scan classifies
//! volatile, which a quiescent SM has none of. The run loop steps only the
//! SMs whose wake-up cycle has arrived and jumps the clock to the next
//! wake-up when every SM sleeps. Skipped spans are credited to the exact
//! same per-SM `idle_cycles`/`empty_cycles` counters and throttle stall
//! windows the per-cycle loop would have produced (see
//! [`DynThrottle::sleep_sm`]), so [`crate::SimStats`] is bit-identical with
//! the engine on or off. Stall cycles from locks, ports, the throttle and
//! the per-warp MSHR limit are never skippable by construction: any warp in
//! such a state marks its SM's cycle non-quiescent.
//!
//! ## Quiescence under the event memory model
//!
//! [`crate::mem::MemoryModel::Event`] adds one external wake source: a warp
//! blocked by memory back-pressure ([`crate::mem::MemGate`]) unblocks when
//! an MSHR entry or DRAM-queue slot *drains*, not when a writeback lands.
//! Such an SM reports [`crate::sm::StepOutcome::gated`] instead of
//! `quiescent`; it still sleeps, but its wake-up cycle is the minimum of
//! its own writeback wheel **and** the memory system's next capacity
//! release ([`crate::mem::SharedMem::next_release`]), and the skipped span
//! is credited as *stall* cycles with the per-warp MSHR-full/queue-full
//! counters scaled in closed form ([`crate::sm::Sm::credit_gated`] — exact
//! because the gate provably cannot open before the next release). SMs that
//! sleep purely on writebacks never need a release wake-up: the gate only
//! blocks warps the scan would classify gated, and capacity releases are
//! processed lazily ([`crate::mem::SharedMem::advance_to`]) with the
//! occupancy integrals credited piecewise at event times, which keeps them
//! exact across arbitrarily long clock jumps.

use grs_core::{DynThrottle, GpuConfig, LaunchPlan, ResourceKind, SchedulerKind};

use crate::cache::Cache;
use crate::dispatch::Dispatcher;
use crate::kinfo::KernelInfo;
use crate::mem::{MemoryModel, SharedMem};
use crate::sm::{Sm, SmMode};
use crate::stats::SimStats;
use crate::telemetry::{MemTelemetry, SmTelemetry, TelemetryConfig};

/// Engine-loop state carried between [`Gpu::run_until`] spans: the per-SM
/// wake/sleep bookkeeping plus the clock. Splitting it out of the run loop
/// is what makes checkpoint/resume possible — a [`Snapshot`] is exactly
/// `(cloned Gpu, cloned EngineState)`, and resuming a span from either a
/// fresh [`Gpu::start`] or a restored snapshot is bit-identical to a
/// straight run (the loop body never reads anything else).
#[derive(Debug, Clone)]
pub struct EngineState {
    /// Per-SM wake-up cycle (`u64::MAX`: empty, nothing can ever wake it).
    pub(crate) wake_at: Vec<u64>,
    /// For sleepers, the first slept cycle (for stats crediting).
    pub(crate) sleep_from: Vec<Option<u64>>,
    /// Whether a slept span is a memory-gated stall span.
    pub(crate) sleep_gated: Vec<bool>,
    /// Next cycle the engine will evaluate.
    pub(crate) cycle: u64,
    /// Latest cycle on which any SM issued an instruction (0 before the
    /// first issue) — the non-event half of the watchdog watermark.
    pub(crate) last_issue: u64,
}

impl EngineState {
    /// Next cycle the engine will evaluate.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// How a bounded [`Gpu::run_until`] span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEnd {
    /// The grid drained.
    Finished,
    /// The stop cycle arrived first.
    ReachedStop,
    /// The forward-progress watchdog tripped: a full window elapsed past
    /// the progress watermark with no issue and no scheduled event left to
    /// fire — the machine state can never change again.
    Stalled,
}

/// Deep-copy checkpoint of a run in flight: the complete deterministic
/// state — per-SM warp/slot/wheel state, event-model MSHR/DRAM partition
/// tables, dispatcher, throttle RNG streams — plus the engine-loop
/// bookkeeping. Restoring and running to completion is bit-identical to
/// never having stopped ([`crate::run::RunConfig::checkpoint_every`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    gpu: Gpu,
    engine: EngineState,
}

impl Snapshot {
    /// Cycle the checkpoint resumes at.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle
    }
}

/// A configured GPU mid-simulation.
#[derive(Debug, Clone)]
pub struct Gpu {
    /// The SM array.
    pub sms: Vec<Sm>,
    /// Shared L2 + DRAM.
    pub shared: SharedMem,
    /// Dynamic warp-execution throttle.
    pub throttle: DynThrottle,
    /// Grid dispatcher.
    pub dispatcher: Dispatcher,
    pub(crate) cfg: GpuConfig,
    fast_forward: bool,
}

impl Gpu {
    /// Build the machine for one run. `fast_forward` enables the
    /// event-driven engine (results are identical either way; see the module
    /// docs); `memory_model` selects the global-memory timing model.
    #[allow(clippy::too_many_arguments)] // mirrors RunConfig knob-for-knob
    pub fn new(
        cfg: &GpuConfig,
        kinfo: &KernelInfo,
        plan: LaunchPlan,
        sched_kind: SchedulerKind,
        dyn_throttle: bool,
        sharing: Option<ResourceKind>,
        fast_forward: bool,
        memory_model: MemoryModel,
        telemetry: Option<TelemetryConfig>,
    ) -> Self {
        let units = cfg.sm.schedulers as usize;
        let register_sharing = sharing == Some(ResourceKind::Registers);
        let sms = (0..cfg.num_sms as usize)
            .map(|id| {
                let l1 = Cache::new(
                    u64::from(cfg.mem.l1_bytes),
                    cfg.mem.l1_ways,
                    u64::from(cfg.mem.line_bytes),
                );
                Sm::new(
                    id,
                    plan,
                    kinfo,
                    sched_kind,
                    units,
                    l1,
                    SmMode {
                        register_sharing,
                        incremental: fast_forward,
                        telemetry,
                    },
                )
            })
            .collect();
        let throttle = if dyn_throttle && sharing.is_some() {
            DynThrottle::paper(cfg.num_sms as usize)
        } else {
            DynThrottle::disabled(cfg.num_sms as usize)
        };
        let mut shared = SharedMem::with_model(cfg.mem, memory_model);
        if let Some(t) = telemetry.as_ref() {
            shared.set_telemetry(t);
        }
        Gpu {
            sms,
            shared,
            throttle,
            dispatcher: Dispatcher::new(kinfo.kernel.grid_blocks),
            cfg: cfg.clone(),
            fast_forward,
        }
    }

    /// Fill SM block slots round-robin at kernel start (GPGPU-Sim's initial
    /// distribution).
    pub fn initial_fill(&mut self, kinfo: &KernelInfo) {
        loop {
            let mut progressed = false;
            for sm in &mut self.sms {
                if sm.has_free_slot() {
                    if let Some(gid) = self.dispatcher.next_block() {
                        sm.launch_block(gid, kinfo, 0);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// All work dispatched and drained?
    pub fn finished(&self) -> bool {
        self.dispatcher.remaining() == 0 && self.sms.iter().all(|s| s.live_blocks() == 0)
    }

    /// Run until the grid completes or `max_cycles` elapse; returns the
    /// aggregated statistics.
    pub fn run(&mut self, kinfo: &KernelInfo, max_cycles: u64) -> SimStats {
        let mut st = self.start(kinfo);
        self.run_until(&mut st, kinfo, max_cycles, None);
        self.finish(st)
    }

    /// Dispatch the grid's initial wave and hand back a fresh engine state
    /// positioned at cycle 0.
    pub fn start(&mut self, kinfo: &KernelInfo) -> EngineState {
        self.initial_fill(kinfo);
        let n = self.sms.len();
        EngineState {
            wake_at: vec![0u64; n],
            sleep_from: vec![None; n],
            sleep_gated: vec![false; n],
            cycle: 0,
            last_issue: 0,
        }
    }

    /// Deep-copy checkpoint of the machine and engine state as they stand.
    pub fn snapshot(&self, engine: &EngineState) -> Snapshot {
        Snapshot {
            gpu: self.clone(),
            engine: engine.clone(),
        }
    }

    /// Overwrite this machine with `snap`'s state and return the engine
    /// state to resume from. The snapshot is reusable (recovery may restore
    /// it more than once).
    pub fn restore(&mut self, snap: &Snapshot) -> EngineState {
        *self = snap.gpu.clone();
        snap.engine.clone()
    }

    /// Earliest cycle at which the machine provably cannot make progress
    /// any more: the latest issue plus the latest event ever scheduled on
    /// any wheel (SM writebacks, memory capacity releases). Strictly past
    /// this cycle, every wheel is empty and no warp state can change, so a
    /// window of silence is a proof of livelock, not a long latency.
    /// Engine-invariant — see the accessors it reads.
    pub(crate) fn progress_watermark(&self, st: &EngineState) -> u64 {
        let mut wm = st.last_issue;
        for sm in &self.sms {
            wm = wm.max(sm.latest_writeback());
        }
        wm.max(self.shared.latest_release_scheduled())
    }

    /// Run from `st.cycle` until the grid completes, `stop` arrives, or —
    /// with `watchdog: Some(w)` — a window of `w` cycles elapses past the
    /// progress watermark (livelock; see [`Self::progress_watermark`]).
    /// Stopping and resuming at any cycle is bit-identical to a straight
    /// run: the boundary evaluation is a no-op (no SM is due before its
    /// wake-up, and the throttle's lazy crediting is path-independent).
    pub fn run_until(
        &mut self,
        st: &mut EngineState,
        kinfo: &KernelInfo,
        stop: u64,
        watchdog: Option<u64>,
    ) -> SpanEnd {
        let lat = self.cfg.lat;
        let n = self.sms.len();
        let mut cycle = st.cycle;
        while !self.finished() && cycle < stop {
            if let Some(w) = watchdog {
                st.cycle = cycle;
                if cycle >= self.progress_watermark(st).saturating_add(w) {
                    return SpanEnd::Stalled;
                }
            }
            if cycle > 0 {
                // Window boundaries inside a fully-asleep span fire before
                // the cycle that wakes an SM, exactly as the per-cycle loop
                // would have fired them (probabilities must be current when
                // the woken SM scans).
                self.throttle.advance_to(cycle - 1);
            }
            for i in 0..n {
                if st.wake_at[i] > cycle {
                    continue;
                }
                if let Some(since) = st.sleep_from[i].take() {
                    if st.sleep_gated[i] {
                        self.sms[i].credit_gated(since, cycle);
                    } else {
                        self.sms[i].credit_skipped(since, cycle);
                    }
                    self.throttle.wake_sm(i, cycle);
                }
                let out = self.sms[i].step(
                    cycle,
                    kinfo,
                    &lat,
                    &mut self.shared,
                    &mut self.throttle,
                    &mut self.dispatcher,
                );
                if out.issued {
                    st.last_issue = cycle;
                }
                st.wake_at[i] = if self.fast_forward && (out.quiescent || out.gated) {
                    if out.live {
                        let mut wake = self.sms[i].next_wake();
                        if out.gated {
                            // Memory back-pressure only lifts when an MSHR
                            // entry or DRAM-queue slot drains: wake on the
                            // next capacity release too.
                            wake = match (wake, self.shared.next_release()) {
                                (Some(a), Some(b)) => Some(a.min(b)),
                                (a, b) => a.or(b),
                            };
                        }
                        match wake {
                            Some(w) if w > cycle => w,
                            // A live-but-eventless SM can only be a
                            // (deadlocked) reference-path state; keep
                            // stepping it every cycle.
                            _ => cycle + 1,
                        }
                    } else {
                        u64::MAX
                    }
                } else {
                    cycle + 1
                };
                if st.wake_at[i] > cycle + 1 {
                    st.sleep_from[i] = Some(cycle + 1);
                    st.sleep_gated[i] = out.gated;
                    if out.live {
                        self.throttle.sleep_sm(i, cycle + 1);
                    }
                }
            }
            self.throttle.advance_to(cycle);
            cycle += 1;
            if self.fast_forward {
                // Jump to the next cycle on which anything can happen.
                let next = st.wake_at.iter().copied().min().unwrap_or(cycle);
                if next > cycle {
                    cycle = next.min(stop);
                }
            }
        }
        st.cycle = cycle;
        if self.finished() {
            SpanEnd::Finished
        } else {
            SpanEnd::ReachedStop
        }
    }

    /// Close out a run at `st.cycle`: credit sleepers interrupted by grid
    /// completion, timeout or a watchdog trip, flush the event model's
    /// occupancy integrals, and aggregate the statistics. Consumes the
    /// engine state — a finished run cannot be resumed.
    pub fn finish(&mut self, mut st: EngineState) -> SimStats {
        let cycle = st.cycle;
        for (i, (sm, slept)) in self.sms.iter_mut().zip(&mut st.sleep_from).enumerate() {
            if let Some(since) = slept.take() {
                if cycle > since {
                    if st.sleep_gated[i] {
                        sm.credit_gated(since, cycle);
                    } else {
                        sm.credit_skipped(since, cycle);
                    }
                }
            }
        }
        // Flush the event model's occupancy integrals through the end.
        self.shared.finalize(cycle);
        self.collect(cycle, !self.finished())
    }

    pub(crate) fn collect(&self, cycles: u64, timed_out: bool) -> SimStats {
        SimStats::aggregate(
            cycles,
            timed_out,
            self.shared.stats.clone(),
            self.sms.iter().map(|sm| &sm.stats),
        )
    }

    /// Take the SM (in id order) and memory telemetry state for end-of-run
    /// assembly. Empty/`None` when tracing was off.
    pub(crate) fn take_telemetry(&mut self) -> (Vec<SmTelemetry>, Option<MemTelemetry>) {
        let sms = self
            .sms
            .iter_mut()
            .filter_map(|sm| sm.take_telemetry())
            .collect();
        (sms, self.shared.take_telemetry())
    }
}
