//! Whole-GPU orchestration: SM array, shared memory system, dispatcher,
//! dynamic throttle, main cycle loop.

use grs_core::{DynThrottle, GpuConfig, LaunchPlan, ResourceKind, SchedulerKind};

use crate::cache::Cache;
use crate::dispatch::Dispatcher;
use crate::kinfo::KernelInfo;
use crate::mem::SharedMem;
use crate::sm::Sm;
use crate::stats::SimStats;

/// A configured GPU mid-simulation.
#[derive(Debug)]
pub struct Gpu {
    /// The SM array.
    pub sms: Vec<Sm>,
    /// Shared L2 + DRAM.
    pub shared: SharedMem,
    /// Dynamic warp-execution throttle.
    pub throttle: DynThrottle,
    /// Grid dispatcher.
    pub dispatcher: Dispatcher,
    cfg: GpuConfig,
}

impl Gpu {
    /// Build the machine for one run.
    pub fn new(
        cfg: &GpuConfig,
        kinfo: &KernelInfo,
        plan: LaunchPlan,
        sched_kind: SchedulerKind,
        dyn_throttle: bool,
        sharing: Option<ResourceKind>,
    ) -> Self {
        let units = cfg.sm.schedulers as usize;
        let register_sharing = sharing == Some(ResourceKind::Registers);
        let sms = (0..cfg.num_sms as usize)
            .map(|id| {
                let l1 = Cache::new(
                    u64::from(cfg.mem.l1_bytes),
                    cfg.mem.l1_ways,
                    u64::from(cfg.mem.line_bytes),
                );
                Sm::new(id, plan, kinfo, sched_kind, units, l1, register_sharing)
            })
            .collect();
        let throttle = if dyn_throttle && sharing.is_some() {
            DynThrottle::paper(cfg.num_sms as usize)
        } else {
            DynThrottle::disabled(cfg.num_sms as usize)
        };
        Gpu {
            sms,
            shared: SharedMem::new(cfg.mem),
            throttle,
            dispatcher: Dispatcher::new(kinfo.kernel.grid_blocks),
            cfg: cfg.clone(),
        }
    }

    /// Fill SM block slots round-robin at kernel start (GPGPU-Sim's initial
    /// distribution).
    pub fn initial_fill(&mut self, kinfo: &KernelInfo) {
        loop {
            let mut progressed = false;
            for sm in &mut self.sms {
                if sm.has_free_slot() {
                    if let Some(gid) = self.dispatcher.next_block() {
                        sm.launch_block(gid, kinfo);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// All work dispatched and drained?
    pub fn finished(&self) -> bool {
        self.dispatcher.remaining() == 0 && self.sms.iter().all(|s| s.live_blocks() == 0)
    }

    /// Run until the grid completes or `max_cycles` elapse; returns the
    /// aggregated statistics.
    pub fn run(&mut self, kinfo: &KernelInfo, max_cycles: u64) -> SimStats {
        self.initial_fill(kinfo);
        let lat = self.cfg.lat;
        let mut cycle = 0u64;
        while !self.finished() && cycle < max_cycles {
            for sm in &mut self.sms {
                sm.step(
                    cycle,
                    kinfo,
                    &lat,
                    &mut self.shared,
                    &mut self.throttle,
                    &mut self.dispatcher,
                );
            }
            self.throttle.on_cycle(cycle);
            cycle += 1;
        }
        self.collect(cycle, !self.finished())
    }

    fn collect(&self, cycles: u64, timed_out: bool) -> SimStats {
        let mut stats = SimStats {
            cycles,
            timed_out,
            mem: self.shared.stats.clone(),
            ..Default::default()
        };
        for sm in &self.sms {
            stats.warp_instrs += sm.stats.warp_instrs;
            stats.thread_instrs += sm.stats.thread_instrs;
            stats.stall_cycles += sm.stats.stall_cycles;
            stats.idle_cycles += sm.stats.idle_cycles;
            stats.empty_cycles += sm.stats.empty_cycles;
            stats.blocks_completed += sm.stats.blocks_completed;
            stats.lock_retries += sm.stats.lock_retries;
            stats.throttled_issues += sm.stats.throttled_issues;
            stats.max_resident_blocks = stats.max_resident_blocks.max(sm.stats.max_resident_blocks);
            stats.per_sm.push(sm.stats.clone());
        }
        stats
    }
}
