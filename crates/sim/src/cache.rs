//! Set-associative cache model with true-LRU replacement.
//!
//! Used for both the per-SM L1 data cache and the shared L2 (paper Table I:
//! 16 KB L1/core, 768 KB L2). The model is a tag store only — data never
//! moves, we simulate timing. Write policy is write-through/no-write-allocate
//! for stores (GPGPU-Sim's L1D default for global stores), allocate-on-read
//! for loads.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent (allocated now if a load).
    Miss,
}

/// A set-associative, true-LRU tag store.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; larger = more recent.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    /// Load hits.
    pub hits: u64,
    /// Load misses.
    pub misses: u64,
}

impl Cache {
    /// Build a cache of `bytes` capacity, `ways` associativity and
    /// `line_bytes` lines. Capacity is rounded down to a whole number of
    /// sets; at least one set is always provisioned.
    pub fn new(bytes: u64, ways: u32, line_bytes: u64) -> Self {
        let ways = ways.max(1) as usize;
        let lines = (bytes / line_bytes).max(ways as u64) as usize;
        let sets = (lines / ways).max(1);
        Cache {
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            sets,
            ways,
            line_bytes,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets (for tests).
    pub fn sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.sets as u64) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.sets as u64
    }

    /// Access `addr` as a **load**: returns hit/miss and allocates the line
    /// with LRU replacement on a miss.
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        self.misses += 1;
        // Victim = invalid way if any, else LRU.
        let mut victim = 0;
        let mut best = u64::MAX;
        for way in 0..self.ways {
            if self.tags[base + way] == u64::MAX {
                victim = way;
                break;
            }
            if self.stamps[base + way] < best {
                best = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        CacheOutcome::Miss
    }

    /// Access `addr` as a **store**: write-through, no allocate; updates LRU
    /// on hit. Returns the outcome for bandwidth accounting but does not
    /// count in hit/miss statistics (matching GPGPU-Sim's L1D global-store
    /// handling).
    pub fn access_store(&mut self, addr: u64) -> CacheOutcome {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.tick;
                return CacheOutcome::Hit;
            }
        }
        CacheOutcome::Miss
    }

    /// Load-miss ratio over the cache's lifetime.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> u64 {
        n * 128
    }

    #[test]
    fn geometry() {
        // 16 KB, 4-way, 128 B lines → 128 lines, 32 sets.
        let c = Cache::new(16 * 1024, 4, 128);
        assert_eq!(c.sets(), 32);
    }

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(16 * 1024, 4, 128);
        assert_eq!(c.access(line(5)), CacheOutcome::Miss);
        assert_eq!(c.access(line(5)), CacheOutcome::Hit);
        assert_eq!(c.access(line(5) + 64), CacheOutcome::Hit); // same line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-mapped-to-one-set scenario: 4 ways, addresses all in set 0.
        let mut c = Cache::new(4 * 128, 4, 128); // 1 set, 4 ways
        assert_eq!(c.sets(), 1);
        for i in 0..4 {
            assert_eq!(c.access(line(i)), CacheOutcome::Miss);
        }
        // Touch line 0 to make line 1 the LRU, then insert line 4.
        assert_eq!(c.access(line(0)), CacheOutcome::Hit);
        assert_eq!(c.access(line(4)), CacheOutcome::Miss);
        assert_eq!(c.access(line(1)), CacheOutcome::Miss); // evicted
        assert_eq!(c.access(line(0)), CacheOutcome::Hit); // survived
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(16 * 1024, 4, 128); // 128 lines

        // Stream 256 distinct lines twice: second pass still misses (LRU).
        for pass in 0..2 {
            for i in 0..256u64 {
                let out = c.access(line(i));
                assert_eq!(out, CacheOutcome::Miss, "pass {pass} line {i}");
            }
        }
        assert_eq!(c.miss_ratio(), 1.0);
    }

    #[test]
    fn working_set_that_fits_stops_missing() {
        let mut c = Cache::new(16 * 1024, 4, 128);
        for i in 0..64u64 {
            c.access(line(i));
        }
        let misses_before = c.misses;
        for _ in 0..10 {
            for i in 0..64u64 {
                assert_eq!(c.access(line(i)), CacheOutcome::Hit);
            }
        }
        assert_eq!(c.misses, misses_before);
    }

    #[test]
    fn stores_do_not_allocate() {
        let mut c = Cache::new(16 * 1024, 4, 128);
        assert_eq!(c.access_store(line(9)), CacheOutcome::Miss);
        assert_eq!(c.access(line(9)), CacheOutcome::Miss); // still absent
        assert_eq!(c.access_store(line(9)), CacheOutcome::Hit); // now cached
    }
}
