//! Per-block state and block-slot pairing.

use grs_core::{PairMember, RegPairLocks, SmemPairLock};

/// How a block slot participates in sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pairing {
    /// Full private allocation (paper's "unshared thread block").
    Unshared,
    /// Member of shared pair `pair` (index into the SM's pair-lock table).
    Paired {
        /// Pair index.
        pair: u32,
        /// Which member of the pair.
        member: PairMember,
    },
}

/// State of one resident thread block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Global grid block id.
    pub grid_id: u32,
    /// Warps not yet retired.
    pub live_warps: u32,
    /// Warps currently waiting at the barrier.
    pub at_barrier: u32,
    /// Sharing role of the occupied slot.
    pub pairing: Pairing,
}

/// Lock state for one pair of shared block slots.
#[derive(Debug, Clone)]
pub enum PairLocks {
    /// Register sharing: per-warp-pair locks (paper Sec. III-A).
    Reg(RegPairLocks),
    /// Scratchpad sharing: one block-pair lock (paper Sec. III-B).
    Smem(SmemPairLock),
}

impl PairLocks {
    /// The pair's owner block, if determined.
    pub fn owner(&self) -> Option<PairMember> {
        match self {
            PairLocks::Reg(l) => l.owner(),
            PairLocks::Smem(l) => l.owner(),
        }
    }

    /// Notify block completion (releases locks, transfers ownership).
    pub fn block_completed(&mut self, member: PairMember) {
        match self {
            PairLocks::Reg(l) => l.block_completed(member),
            PairLocks::Smem(l) => l.block_completed(member),
        }
    }
}

/// Compute the pairing of block slot `slot` in a launch plan with `unshared`
/// leading unshared slots: slots `unshared + 2i` / `unshared + 2i + 1` form
/// pair `i` as members A / B.
pub fn pairing_of_slot(slot: u32, unshared: u32) -> Pairing {
    if slot < unshared {
        Pairing::Unshared
    } else {
        let off = slot - unshared;
        Pairing::Paired {
            pair: off / 2,
            member: if off.is_multiple_of(2) {
                PairMember::A
            } else {
                PairMember::B
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_pairing_layout() {
        // U = 2, S = 2 → slots: [U, U, A0, B0, A1, B1]
        assert_eq!(pairing_of_slot(0, 2), Pairing::Unshared);
        assert_eq!(pairing_of_slot(1, 2), Pairing::Unshared);
        assert_eq!(
            pairing_of_slot(2, 2),
            Pairing::Paired {
                pair: 0,
                member: PairMember::A
            }
        );
        assert_eq!(
            pairing_of_slot(3, 2),
            Pairing::Paired {
                pair: 0,
                member: PairMember::B
            }
        );
        assert_eq!(
            pairing_of_slot(4, 2),
            Pairing::Paired {
                pair: 1,
                member: PairMember::A
            }
        );
        assert_eq!(
            pairing_of_slot(5, 2),
            Pairing::Paired {
                pair: 1,
                member: PairMember::B
            }
        );
    }

    #[test]
    fn all_unshared_when_u_covers_slots() {
        for s in 0..8 {
            assert_eq!(pairing_of_slot(s, 8), Pairing::Unshared);
        }
    }

    #[test]
    fn pair_locks_dispatch() {
        let mut reg = PairLocks::Reg(RegPairLocks::new(4));
        assert_eq!(reg.owner(), None);
        if let PairLocks::Reg(l) = &mut reg {
            l.access_shared(PairMember::B, 0);
        }
        assert_eq!(reg.owner(), Some(PairMember::B));
        reg.block_completed(PairMember::B);
        assert_eq!(reg.owner(), Some(PairMember::A));

        let mut smem = PairLocks::Smem(SmemPairLock::new());
        if let PairLocks::Smem(l) = &mut smem {
            l.access_shared(PairMember::A);
        }
        assert_eq!(smem.owner(), Some(PairMember::A));
    }
}
