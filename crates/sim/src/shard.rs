//! Deterministic cross-SM sharded execution: the epoch/commit engine.
//!
//! ## Why sharding is not "just step SMs on threads"
//!
//! SMs interact through exactly three pieces of shared state — the L2/DRAM
//! memory system, the grid dispatcher, and the dynamic throttle's RNG
//! streams and window probabilities — and the sequential loop visits them
//! in a canonical order: ascending cycle, then ascending SM id within a
//! cycle. Cache tags, MSHR admission, DRAM-queue scheduling, lock arrival
//! order and throttle draws all depend on that order, so any engine that
//! lets two SMs race to the L2 produces different (if individually
//! plausible) statistics. This module keeps the canonical order for every
//! shared-state interaction while running everything else in parallel.
//!
//! ## The protocol
//!
//! Each SM lives in a [`Lane`] owned by one shard; shards are serviced by
//! worker threads plus the coordinator (which owns shard 0). Execution
//! alternates two phases:
//!
//! - **Parallel free-run.** Every shard steps its lanes independently
//!   against a *stub* memory system ([`MemoryModel::Functional`] with the
//!   gate permanently open, provably never reached — see below) and its own
//!   clone of the throttle, up to the next globally-committed boundary: a
//!   lane *parks* the cycle [`Sm::wants_commit`] reports a warp that could
//!   touch global memory or retire a block, and stops at the throttle's
//!   next window deadline (a global horizon) or the cycle bound.
//! - **Serial commit.** The coordinator repeatedly takes the lexicographic
//!   minimum `(cycle, SM id)` over all lanes' next events. A parked lane at
//!   the minimum is stepped once against the *real* memory system,
//!   dispatcher and its owner-clone throttle — exactly the call the
//!   sequential loop would make at that `(cycle, SM id)` — and resumes
//!   free-running. When the minimum crosses a window deadline, the window
//!   closes: per-SM stall counts are drained from the owning clones in SM
//!   id order, folded on the master instance, and the new probabilities are
//!   broadcast ([`DynThrottle::close_window_with`] /
//!   [`DynThrottle::sync_after_window`]).
//!
//! ## Why free-running is invisible
//!
//! A free-run step can only execute warps whose next instruction is
//! SM-local (ALU, barrier, L1-resident control flow): any warp that is
//! *ready* on a global-memory instruction — no hazard, per-warp MSHR quota
//! free — or ready to retire the last warp of a block parks the lane
//! *before* the step ([`Sm::wants_commit`] is checked at every wake, after
//! draining writebacks). Consequences, each load-bearing:
//!
//! - The stub memory system is never asked for a load or store, so its
//!   (default-zeroed) statistics never diverge — asserted at teardown.
//! - The throttle's per-SM RNG streams advance only inside commit steps
//!   ([`DynThrottle::allow`] is consulted only for ready global-memory
//!   candidates), and commits happen in canonical order, so every draw
//!   happens at the same point in the stream as sequentially.
//! - Memory-gated sleep spans ([`StepOutcome::gated`]) begin only at
//!   commit steps, and a gated sleeper re-parks at its wake cycle (sleep
//!   only *shrinks* hazards, never the gate candidacy), so
//!   [`Sm::credit_gated`]'s closed-form crediting runs with real gate
//!   state.
//! - Lock busy-waits park too (`wants_commit` does not consult pair
//!   locks), so `lock_retries` and lock hand-off order stay canonical.
//!
//! The remaining shared calls are call-pattern independent:
//! [`SharedMem::advance_to`] credits occupancy integrals piecewise at
//! event times (skipping it on free-run cycles is unobservable), and the
//! throttle's sleep/wake crediting is driven per-SM from the owning clone
//! with the same spans the sequential loop produces.
//!
//! Sharded runs force event-driven (fast-forward) stepping internally —
//! lanes must be able to sleep past boundaries — which is itself
//! bit-identical to per-cycle stepping (pinned by the fast-forward
//! equivalence suite), so the combined result is bit-identical to a plain
//! sequential run for *any* shard count. `tests/shard_equivalence.rs` pins
//! this across the scheduler × sharing-mode × memory-model matrix.
//!
//! ## Performance shape
//!
//! Wall-clock wins come from free-run spans: stretches where SMs execute
//! local work or sleep between memory interactions. When every lane parks
//! every few cycles (e.g. tightly interleaved DRAM traffic), the engine
//! degrades toward the serial commit loop plus barrier overhead; the
//! coordinator free-runs a lone unparked lane inline (no barriers) and
//! only pays a barrier round-trip when ≥2 lanes can make independent
//! progress. Synchronization uses spin barriers sized for
//! microsecond-scale phases.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use grs_core::{DynThrottle, LatencyConfig};

use crate::dispatch::Dispatcher;
use crate::gpu::Gpu;
use crate::kinfo::KernelInfo;
use crate::mem::{MemoryModel, SharedMem};
use crate::sm::Sm;
use crate::stats::SimStats;

/// One SM plus the engine bookkeeping the sequential loop keeps in arrays.
struct Lane {
    sm: Sm,
    /// Next cycle this SM must step (`u64::MAX`: retired, nothing can wake
    /// it).
    wake_at: u64,
    /// First cycle of a pending sleep span, for stats crediting at wake.
    sleep_from: Option<u64>,
    /// The pending sleep span is a memory-gated stall span.
    sleep_gated: bool,
    /// `Some(cycle)`: stopped at a shared-state interaction, awaiting its
    /// commit step at that cycle.
    park: Option<u64>,
    /// Last cycle this SM stepped; the run's cycle count is the global
    /// maximum plus one.
    last_step: u64,
}

impl Lane {
    /// The lane's next event cycle for the coordinator's min-key scan.
    fn key(&self) -> u64 {
        self.park.unwrap_or(self.wake_at)
    }
}

/// Per-shard state. The throttle clone carries the live sleep/stall
/// bookkeeping for exactly this shard's SMs; the stub memory system absorbs
/// `advance_to` calls during free-run and is never asked for an access.
struct Shard {
    lanes: Vec<Lane>,
    throttle: DynThrottle,
    stub: SharedMem,
    /// Empty dispatcher for free-run steps, which provably never complete a
    /// block (block completion requires an exit issue, which parks).
    scrap: Dispatcher,
}

/// Sense-reversing spin barrier. Phases are microseconds long, so parking
/// OS threads (std's `Barrier`) costs more than it saves.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                // Bounded spin, then yield: on an oversubscribed (or
                // single-core) machine an unbounded spin burns the peer's
                // whole scheduling quantum per hand-off.
                if spins < 128 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Free-run one lane: step it against the shard's stub state until it
/// parks, passes `horizon` (the throttle's next window deadline), reaches
/// `max_cycles`, or retires. Mirrors the sequential loop body minus every
/// shared-state interaction (each of which parks instead).
#[allow(clippy::too_many_arguments)] // mirrors the Sm::step call site
fn free_run_lane(
    lane: &mut Lane,
    throttle: &mut DynThrottle,
    stub: &mut SharedMem,
    scrap: &mut Dispatcher,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
    max_pending: u32,
    horizon: u64,
    max_cycles: u64,
) {
    debug_assert!(lane.park.is_none());
    loop {
        let now = lane.wake_at;
        if now > horizon || now >= max_cycles {
            return;
        }
        if lane.sm.wants_commit(now, kinfo, max_pending) {
            lane.park = Some(now);
            return;
        }
        if let Some(since) = lane.sleep_from.take() {
            // Gated sleepers re-park at their wake cycle (the gate candidate
            // that put them to sleep is still a candidate), so a free-run
            // wake is always a plain quiescent span.
            debug_assert!(!lane.sleep_gated);
            lane.sm.credit_skipped(now - since);
            throttle.wake_sm(lane.sm.id, now);
        }
        let out = lane.sm.step(now, kinfo, lat, stub, throttle, scrap);
        debug_assert!(!out.gated, "the stub memory system's gate is open");
        lane.last_step = now;
        lane.wake_at = if out.quiescent {
            if out.live {
                match lane.sm.next_wake() {
                    Some(w) if w > now => w,
                    _ => now + 1,
                }
            } else {
                u64::MAX
            }
        } else {
            now + 1
        };
        if lane.wake_at > now + 1 {
            lane.sleep_from = Some(now + 1);
            lane.sleep_gated = false;
            if out.live {
                throttle.sleep_sm(lane.sm.id, now + 1);
            }
        }
    }
}

/// Commit a parked lane: one step against the real shared state, exactly
/// the call the sequential loop makes at this `(cycle, SM id)` — including
/// the gated wake-up calculation, which must read
/// [`SharedMem::next_release`] immediately after this SM's own accesses.
fn commit_lane(
    lane: &mut Lane,
    throttle: &mut DynThrottle,
    shared: &mut SharedMem,
    dispatcher: &mut Dispatcher,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
) {
    let now = lane.park.take().expect("commit_lane needs a parked lane");
    if let Some(since) = lane.sleep_from.take() {
        if lane.sleep_gated {
            lane.sm.credit_gated(now - since);
        } else {
            lane.sm.credit_skipped(now - since);
        }
        throttle.wake_sm(lane.sm.id, now);
    }
    let out = lane.sm.step(now, kinfo, lat, shared, throttle, dispatcher);
    lane.last_step = now;
    lane.wake_at = if out.quiescent || out.gated {
        if out.live {
            let mut wake = lane.sm.next_wake();
            if out.gated {
                wake = match (wake, shared.next_release()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            match wake {
                Some(w) if w > now => w,
                _ => now + 1,
            }
        } else {
            u64::MAX
        }
    } else {
        now + 1
    };
    if lane.wake_at > now + 1 {
        lane.sleep_from = Some(now + 1);
        lane.sleep_gated = out.gated;
        if out.live {
            throttle.sleep_sm(lane.sm.id, now + 1);
        }
    }
}

/// Free-run every unparked lane of one shard — the body of a parallel
/// phase, run by workers for their shard and by the coordinator for
/// shard 0.
#[allow(clippy::too_many_arguments)]
fn free_run_shard(
    shard: &mut Shard,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
    max_pending: u32,
    horizon: u64,
    max_cycles: u64,
) {
    let Shard {
        lanes,
        throttle,
        stub,
        scrap,
    } = shard;
    for lane in lanes.iter_mut() {
        if lane.park.is_none() {
            free_run_lane(
                lane,
                throttle,
                stub,
                scrap,
                kinfo,
                lat,
                max_pending,
                horizon,
                max_cycles,
            );
        }
    }
}

/// Run the grid to completion (or `max_cycles`) on `shards` worker shards.
/// Bit-identical to [`Gpu::run`] with fast-forward on — which is itself
/// bit-identical to the per-cycle reference loop — for any shard count.
pub fn run_sharded(gpu: &mut Gpu, kinfo: &KernelInfo, max_cycles: u64, shards: usize) -> SimStats {
    gpu.initial_fill(kinfo);
    if gpu.dispatcher.remaining() == 0 && gpu.sms.iter().all(|s| s.live_blocks() == 0) {
        // Empty grid: the sequential loop exits before its first iteration.
        gpu.shared.finalize(0);
        return gpu.collect(0, false);
    }
    let lat = gpu.cfg.lat;
    let mem_cfg = gpu.cfg.mem;
    let max_pending = mem_cfg.max_pending_per_warp;
    let n = gpu.sms.len();
    let nshards = shards.clamp(1, n.max(1));

    // Distribute SMs round-robin so a shard's lanes stay spread across the
    // id space (neighbouring SMs tend to park together).
    let mut cells: Vec<Mutex<Shard>> = (0..nshards)
        .map(|_| {
            Mutex::new(Shard {
                lanes: Vec::new(),
                throttle: gpu.throttle.clone(),
                stub: SharedMem::with_model(mem_cfg, MemoryModel::Functional),
                scrap: Dispatcher::new(0),
            })
        })
        .collect();
    for (i, sm) in gpu.sms.drain(..).enumerate() {
        cells[i % nshards].get_mut().unwrap().lanes.push(Lane {
            sm,
            wake_at: 0,
            sleep_from: None,
            sleep_gated: false,
            park: None,
            last_step: 0,
        });
    }
    let cells = &cells; // shared borrow for the worker closures

    let start = &SpinBarrier::new(nshards);
    let done = &SpinBarrier::new(nshards);
    let stop = &AtomicBool::new(false);
    let horizon_cell = &AtomicU64::new(0);
    let bound_cell = &AtomicU64::new(max_cycles);
    let lat_ref = &lat;

    // Worker threads only pay off when the OS can actually run them
    // concurrently; on a single hardware thread the coordinator free-runs
    // every shard itself (same shard structure, same commit order, same
    // result — the phase split is equivalence-invariant by construction).
    // `GRS_SHARD_THREADS=always` forces the thread path (used by the
    // equivalence suite so single-core CI still exercises it);
    // `GRS_SHARD_THREADS=never` pins the inline path.
    let threaded = nshards > 1
        && match std::env::var("GRS_SHARD_THREADS").as_deref() {
            Ok("always") => true,
            Ok("never") => false,
            _ => std::thread::available_parallelism().map_or(1, |p| p.get()) > 1,
        };

    // Exclusive cycle bound. Starts at `max_cycles` and clamps to one past
    // the grid-completing cycle once the finishing commit lands: the
    // sequential loop's `finished()` gate still runs every SM whose wake-up
    // falls on the completing cycle, but nothing after it.
    let mut bound = max_cycles;
    let mut finished_at: Option<u64> = None;

    std::thread::scope(|scope| {
        let spawned = if threaded { nshards } else { 1 };
        for cell in cells.iter().take(spawned).skip(1) {
            scope.spawn(move || loop {
                start.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let horizon = horizon_cell.load(Ordering::Acquire);
                let bound = bound_cell.load(Ordering::Acquire);
                let mut shard = cell.lock().unwrap();
                free_run_shard(&mut shard, kinfo, lat_ref, max_pending, horizon, bound);
                drop(shard);
                done.wait();
            });
        }

        // The coordinator: serial commit phases interleaved with parallel
        // free-run phases. `gpu.throttle` is the master instance — it takes
        // no per-SM traffic (that lives in the clones) and only closes
        // windows and owns the authoritative probabilities/deadline.
        let mut deadline = gpu.throttle.next_deadline();
        'run: loop {
            let mut guards: Vec<MutexGuard<Shard>> =
                cells.iter().map(|c| c.lock().unwrap()).collect();
            loop {
                // Minimum (cycle, SM id) over every lane's next event, and
                // the number of unparked lanes that could free-run now.
                let mut best: Option<(u64, usize, usize, usize, bool)> = None;
                let mut runnable = 0usize;
                for (si, shard) in guards.iter().enumerate() {
                    for (li, lane) in shard.lanes.iter().enumerate() {
                        let key = lane.key();
                        if key == u64::MAX {
                            continue;
                        }
                        let parked = lane.park.is_some();
                        if !parked && key <= deadline && key < bound {
                            runnable += 1;
                        }
                        if best.is_none_or(|(bk, bid, ..)| (key, lane.sm.id) < (bk, bid)) {
                            best = Some((key, lane.sm.id, si, li, parked));
                        }
                    }
                }
                let Some((b, _, si, li, parked)) = best else {
                    break 'run; // every lane retired: the grid drained
                };
                if b >= bound {
                    break 'run; // timeout or grid completion: nothing left in bounds
                }
                if b > deadline {
                    // Every step at cycles ≤ deadline has happened (the
                    // sequential loop fires the boundary between its steps at
                    // `deadline` and `deadline + 1`): close the window.
                    let mut stalls = vec![0u64; n];
                    for (sm, stall) in stalls.iter_mut().enumerate() {
                        *stall = guards[sm % nshards]
                            .throttle
                            .drain_window_stalls(sm, deadline);
                    }
                    gpu.throttle.close_window_with(&stalls);
                    let probs = gpu.throttle.probs().to_vec();
                    for shard in guards.iter_mut() {
                        shard.throttle.sync_after_window(&probs);
                    }
                    deadline = gpu.throttle.next_deadline();
                    continue;
                }
                if parked {
                    let shard = &mut *guards[si];
                    commit_lane(
                        &mut shard.lanes[li],
                        &mut shard.throttle,
                        &mut gpu.shared,
                        &mut gpu.dispatcher,
                        kinfo,
                        &lat,
                    );
                    // Grid completion can only happen here (it takes an exit
                    // issue, which always parks), and the min-key order
                    // guarantees no lane has yet stepped past `b` — so
                    // clamping now reproduces the sequential `finished()`
                    // gate exactly.
                    if finished_at.is_none()
                        && gpu.dispatcher.remaining() == 0
                        && guards
                            .iter()
                            .all(|g| g.lanes.iter().all(|l| l.sm.live_blocks() == 0))
                    {
                        finished_at = Some(b);
                        bound = b + 1;
                    }
                    continue;
                }
                if runnable == 1 {
                    // A lone lane between commits: running it inline beats a
                    // barrier round-trip through idle workers.
                    let shard = &mut *guards[si];
                    free_run_lane(
                        &mut shard.lanes[li],
                        &mut shard.throttle,
                        &mut shard.stub,
                        &mut shard.scrap,
                        kinfo,
                        &lat,
                        max_pending,
                        deadline,
                        bound,
                    );
                    continue;
                }
                break; // ≥2 lanes can progress independently: go parallel
            }
            drop(guards);

            if threaded {
                horizon_cell.store(deadline, Ordering::Release);
                bound_cell.store(bound, Ordering::Release);
                start.wait();
                {
                    let mut shard = cells[0].lock().unwrap();
                    free_run_shard(&mut shard, kinfo, &lat, max_pending, deadline, bound);
                }
                done.wait();
            } else {
                for cell in cells.iter() {
                    let mut shard = cell.lock().unwrap();
                    free_run_shard(&mut shard, kinfo, &lat, max_pending, deadline, bound);
                }
            }
        }
        if threaded {
            stop.store(true, Ordering::Release);
            start.wait(); // release the workers into their exit path
        }
    });

    // Tear down: reassemble the SM array in id order, credit interrupted
    // sleepers, and aggregate — the same epilogue as the sequential loop.
    let mut lanes: Vec<Lane> = cells
        .iter()
        .flat_map(|c| {
            let shard = &mut *c.lock().unwrap();
            debug_assert_eq!(
                shard.stub.stats,
                Default::default(),
                "free-run must never touch (even stub) global memory"
            );
            std::mem::take(&mut shard.lanes)
        })
        .collect();
    lanes.sort_by_key(|l| l.sm.id);
    // The sequential loop's exit cycle: one past the grid-completing
    // iteration (the completing SM's exit issue keeps its wake-up at the
    // next cycle, so the fast-forward jump never overshoots it), or the
    // bound on a timeout.
    let finished = finished_at.is_some();
    let final_cycle = finished_at.map_or(max_cycles, |c| c + 1);
    debug_assert_eq!(
        finished,
        gpu.dispatcher.remaining() == 0 && lanes.iter().all(|l| l.sm.live_blocks() == 0)
    );
    for lane in &mut lanes {
        if let Some(since) = lane.sleep_from.take() {
            if final_cycle > since {
                if lane.sleep_gated {
                    lane.sm.credit_gated(final_cycle - since);
                } else {
                    lane.sm.credit_skipped(final_cycle - since);
                }
            }
        }
    }
    gpu.shared.finalize(final_cycle);
    gpu.sms.extend(lanes.into_iter().map(|l| l.sm));
    gpu.collect(final_cycle, !finished)
}
