//! Deterministic cross-SM sharded execution: the epoch/commit engine.
//!
//! ## Why sharding is not "just step SMs on threads"
//!
//! SMs interact through exactly three pieces of shared state — the L2/DRAM
//! memory system, the grid dispatcher, and the dynamic throttle's RNG
//! streams and window probabilities — and the sequential loop visits them
//! in a canonical order: ascending cycle, then ascending SM id within a
//! cycle. Cache tags, MSHR admission, DRAM-queue scheduling, lock arrival
//! order and throttle draws all depend on that order, so any engine that
//! lets two SMs race to the L2 produces different (if individually
//! plausible) statistics. This module keeps the canonical order for every
//! shared-state interaction while running everything else in parallel.
//!
//! ## The protocol
//!
//! Each SM lives in a [`Lane`] owned by one shard; shards are serviced by
//! worker threads plus the coordinator (which owns shard 0). Execution
//! alternates two phases:
//!
//! - **Parallel free-run.** Every shard steps its lanes independently
//!   against a *stub* memory system ([`MemoryModel::Functional`] with the
//!   gate permanently open, provably never reached — see below) and its own
//!   clone of the throttle, up to the next globally-committed boundary: a
//!   lane *parks* the cycle [`Sm::wants_commit`] reports a warp that could
//!   touch global memory or retire a block, and stops at the throttle's
//!   next window deadline (a global horizon) or the cycle bound.
//! - **Serial commit.** The coordinator repeatedly takes the lexicographic
//!   minimum `(cycle, SM id)` over all lanes' next events. A parked lane at
//!   the minimum is stepped once against the *real* memory system,
//!   dispatcher and its owner-clone throttle — exactly the call the
//!   sequential loop would make at that `(cycle, SM id)` — and resumes
//!   free-running. When the minimum crosses a window deadline, the window
//!   closes: per-SM stall counts are drained from the owning clones in SM
//!   id order, folded on the master instance, and the new probabilities are
//!   broadcast ([`DynThrottle::close_window_with`] /
//!   [`DynThrottle::sync_after_window`]).
//!
//! ## Why free-running is invisible
//!
//! A free-run step can only execute warps whose next instruction is
//! SM-local (ALU, barrier, L1-resident control flow): any warp that is
//! *ready* on a global-memory instruction — no hazard, per-warp MSHR quota
//! free — or ready to retire the last warp of a block parks the lane
//! *before* the step ([`Sm::wants_commit`] is checked at every wake, after
//! draining writebacks). Consequences, each load-bearing:
//!
//! - The stub memory system is never asked for a load or store, so its
//!   (default-zeroed) statistics never diverge — asserted at teardown.
//! - The throttle's per-SM RNG streams advance only inside commit steps
//!   ([`DynThrottle::allow`] is consulted only for ready global-memory
//!   candidates), and commits happen in canonical order, so every draw
//!   happens at the same point in the stream as sequentially.
//! - Memory-gated sleep spans ([`StepOutcome::gated`]) begin only at
//!   commit steps, and a gated sleeper re-parks at its wake cycle (sleep
//!   only *shrinks* hazards, never the gate candidacy), so
//!   [`Sm::credit_gated`]'s closed-form crediting runs with real gate
//!   state.
//! - Lock busy-waits park too (`wants_commit` does not consult pair
//!   locks), so `lock_retries` and lock hand-off order stay canonical.
//!
//! The remaining shared calls are call-pattern independent:
//! [`SharedMem::advance_to`] credits occupancy integrals piecewise at
//! event times (skipping it on free-run cycles is unobservable), and the
//! throttle's sleep/wake crediting is driven per-SM from the owning clone
//! with the same spans the sequential loop produces.
//!
//! Sharded runs force event-driven (fast-forward) stepping internally —
//! lanes must be able to sleep past boundaries — which is itself
//! bit-identical to per-cycle stepping (pinned by the fast-forward
//! equivalence suite), so the combined result is bit-identical to a plain
//! sequential run for *any* shard count. `tests/shard_equivalence.rs` pins
//! this across the scheduler × sharing-mode × memory-model matrix.
//!
//! ## Spans, supervision and crash safety
//!
//! The engine executes one **span** at a time ([`run_sharded_span`]): from
//! the engine state's current cycle to a stop cycle, with the per-SM
//! wake/sleep bookkeeping carried in [`crate::gpu::EngineState`] exactly as
//! the sequential loop carries it. The supervisor
//! ([`crate::supervise`]) chains spans to implement checkpointing, and the
//! span boundary is unobservable: parked lanes are dropped at the boundary
//! and re-derived on entry ([`Sm::wants_commit`] is idempotent and a parked
//! lane's park cycle *is* its wake cycle), and each shard clone's per-SM
//! throttle state is folded back into the master instance
//! ([`DynThrottle::adopt_sm`]) so the next span's clones start exact.
//!
//! Every parallel free-run phase runs under `catch_unwind`. A panicking
//! worker records its message, **poisons** both spin barriers (releasing
//! every current and future waiter), and exits; the coordinator sees the
//! poisoned hand-off and returns [`ShardSpanEnd::Faulted`] instead of
//! hanging or crashing the process. The supervisor then rolls back to its
//! last snapshot and replays with fewer shards. Deterministic fault
//! injection ([`crate::supervise::FaultPlan`]) hooks the start of each
//! parallel phase — phases are numbered by a global *epoch* counter that is
//! identical in threaded and inline modes — so tests can prove the whole
//! recovery path yields bit-identical statistics.
//!
//! ## Performance shape
//!
//! Wall-clock wins come from free-run spans: stretches where SMs execute
//! local work or sleep between memory interactions. When every lane parks
//! every few cycles (e.g. tightly interleaved DRAM traffic), the engine
//! degrades toward the serial commit loop plus barrier overhead; the
//! coordinator free-runs a lone unparked lane inline (no barriers) and
//! only pays a barrier round-trip when ≥2 lanes can make independent
//! progress. Synchronization uses spin barriers sized for
//! microsecond-scale phases.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use grs_core::{DynThrottle, LatencyConfig};

use crate::dispatch::Dispatcher;
use crate::gpu::{EngineState, Gpu};
use crate::kinfo::KernelInfo;
use crate::mem::{MemoryModel, SharedMem};
use crate::sm::Sm;
use crate::supervise::FaultPlan;
use crate::telemetry::TelemetryEvent;

/// How long a barrier waiter spins/yields before declaring its peers dead
/// and poisoning the barrier itself. Phases are microseconds long; this is
/// a last-resort escape against a peer that vanished without poisoning
/// (which the `catch_unwind` wrappers should make impossible).
const BARRIER_TIMEOUT: Duration = Duration::from_secs(10);

/// How a sharded span ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ShardSpanEnd {
    /// The grid drained; `st.cycle` is one past the completing cycle.
    Finished,
    /// The stop cycle arrived first; `st.cycle == stop`.
    ReachedStop,
    /// The forward-progress watchdog tripped; `st.cycle` is the trip cycle
    /// (identical to the sequential engine's).
    Stalled,
    /// A worker panicked (injected or genuine). The machine state is
    /// partial; the caller must roll back to a snapshot. The payload is the
    /// panic message.
    Faulted(String),
}

/// One SM plus the engine bookkeeping the sequential loop keeps in arrays.
struct Lane {
    sm: Sm,
    /// Next cycle this SM must step (`u64::MAX`: retired, nothing can wake
    /// it).
    wake_at: u64,
    /// First cycle of a pending sleep span, for stats crediting at wake.
    sleep_from: Option<u64>,
    /// The pending sleep span is a memory-gated stall span.
    sleep_gated: bool,
    /// `Some(cycle)`: stopped at a shared-state interaction, awaiting its
    /// commit step at that cycle. Invariant: equals `wake_at` when set (a
    /// lane parks *before* stepping), which is what lets span boundaries
    /// drop the park and re-derive it on resume.
    park: Option<u64>,
    /// Latest cycle this SM issued an instruction, for the watchdog
    /// watermark (folded into `EngineState::last_issue` at the span end).
    last_issue: u64,
}

impl Lane {
    /// The lane's next event cycle for the coordinator's min-key scan.
    fn key(&self) -> u64 {
        self.park.unwrap_or(self.wake_at)
    }
}

/// Per-shard state. The throttle clone carries the live sleep/stall
/// bookkeeping for exactly this shard's SMs; the stub memory system absorbs
/// `advance_to` calls during free-run and is never asked for an access.
struct Shard {
    lanes: Vec<Lane>,
    throttle: DynThrottle,
    stub: SharedMem,
    /// Empty dispatcher for free-run steps, which provably never complete a
    /// block (block completion requires an exit issue, which parks).
    scrap: Dispatcher,
}

/// Lock a mutex, recovering the data from a poisoned lock. A worker panic
/// can poison a shard's mutex, but never tear its data: panics surface at
/// phase entry (fault injection) or inside a lane step whose containing run
/// is rolled back to a snapshot anyway, so the recovered value is only ever
/// used for structural teardown.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sense-reversing spin barrier with poisoning. Phases are microseconds
/// long, so parking OS threads (std's `Barrier`) costs more than it saves.
/// Poisoning ([`SpinBarrier::poison`]) permanently releases every current
/// and future waiter with a `false` return — the panic-isolation escape
/// hatch that keeps one crashing lane from hanging its peers.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark the barrier unusable and release every waiter, current and
    /// future. Idempotent.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        // Bump the generation so spinners drop out even if they read the
        // poison flag a beat late; the flag check below makes this
        // belt-and-braces rather than load-bearing.
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Wait for all `n` participants. Returns `true` on a clean release,
    /// `false` if the barrier is (or becomes) poisoned.
    fn wait(&self) -> bool {
        self.wait_with_timeout(BARRIER_TIMEOUT)
    }

    /// [`Self::wait`] with an explicit bound: a waiter that spins past
    /// `timeout` poisons the barrier itself and returns `false`, so a peer
    /// that died without poisoning cannot strand it forever.
    fn wait_with_timeout(&self, timeout: Duration) -> bool {
        if self.is_poisoned() {
            return false;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            !self.is_poisoned()
        } else {
            let mut spins = 0u32;
            let mut deadline: Option<Instant> = None;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.is_poisoned() {
                    return false;
                }
                // Bounded spin, then yield: on an oversubscribed (or
                // single-core) machine an unbounded spin burns the peer's
                // whole scheduling quantum per hand-off.
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                    // Consult the clock only every few hundred yields; a
                    // syscall per spin would dominate the hand-off.
                    if spins.is_multiple_of(256) {
                        let d = *deadline.get_or_insert_with(|| Instant::now() + timeout);
                        if Instant::now() >= d {
                            self.poison();
                            return false;
                        }
                    }
                }
                spins = spins.wrapping_add(1);
            }
            !self.is_poisoned()
        }
    }
}

/// Poisons both barriers unless disarmed — the coordinator holds one so
/// that even a *coordinator* panic (a genuine bug, not an injected fault)
/// releases the workers instead of deadlocking the thread scope.
struct BarrierPoisonGuard<'a> {
    start: &'a SpinBarrier,
    done: &'a SpinBarrier,
    armed: bool,
}

impl Drop for BarrierPoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.start.poison();
            self.done.poison();
        }
    }
}

/// Record the first panic's message (later ones are drops of the same
/// event or cascades from it).
fn record_panic(note: &Mutex<Option<String>>, shard: usize, payload: Box<dyn Any + Send>) {
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    let mut slot = lock_recover(note);
    if slot.is_none() {
        *slot = Some(format!("shard {shard} panicked: {msg}"));
    }
}

/// Take the recorded panic message, with a fallback for the
/// timed-out-without-a-note case.
fn take_panic(note: &Mutex<Option<String>>) -> String {
    lock_recover(note)
        .take()
        .unwrap_or_else(|| "a shard worker died without recording a panic".to_string())
}

/// Free-run one lane: step it against the shard's stub state until it
/// parks, passes `horizon` (the throttle's next window deadline), reaches
/// `max_cycles`, or retires. Mirrors the sequential loop body minus every
/// shared-state interaction (each of which parks instead).
#[allow(clippy::too_many_arguments)] // mirrors the Sm::step call site
fn free_run_lane(
    lane: &mut Lane,
    throttle: &mut DynThrottle,
    stub: &mut SharedMem,
    scrap: &mut Dispatcher,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
    max_pending: u32,
    horizon: u64,
    max_cycles: u64,
) {
    debug_assert!(lane.park.is_none());
    loop {
        let now = lane.wake_at;
        if now > horizon || now >= max_cycles {
            return;
        }
        if lane.sm.wants_commit(now, kinfo, max_pending) {
            lane.park = Some(now);
            return;
        }
        if let Some(since) = lane.sleep_from.take() {
            // Gated sleepers re-park at their wake cycle (the gate candidate
            // that put them to sleep is still a candidate), so a free-run
            // wake is always a plain quiescent span.
            debug_assert!(!lane.sleep_gated);
            lane.sm.credit_skipped(since, now);
            throttle.wake_sm(lane.sm.id, now);
        }
        let out = lane.sm.step(now, kinfo, lat, stub, throttle, scrap);
        debug_assert!(!out.gated, "the stub memory system's gate is open");
        if out.issued {
            lane.last_issue = now;
        }
        lane.wake_at = if out.quiescent {
            if out.live {
                match lane.sm.next_wake() {
                    Some(w) if w > now => w,
                    _ => now + 1,
                }
            } else {
                u64::MAX
            }
        } else {
            now + 1
        };
        if lane.wake_at > now + 1 {
            lane.sleep_from = Some(now + 1);
            lane.sleep_gated = false;
            if out.live {
                throttle.sleep_sm(lane.sm.id, now + 1);
            }
        }
    }
}

/// Commit a parked lane: one step against the real shared state, exactly
/// the call the sequential loop makes at this `(cycle, SM id)` — including
/// the gated wake-up calculation, which must read
/// [`SharedMem::next_release`] immediately after this SM's own accesses.
fn commit_lane(
    lane: &mut Lane,
    throttle: &mut DynThrottle,
    shared: &mut SharedMem,
    dispatcher: &mut Dispatcher,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
) {
    let now = lane.park.take().expect("commit_lane needs a parked lane");
    if let Some(since) = lane.sleep_from.take() {
        if lane.sleep_gated {
            lane.sm.credit_gated(since, now);
        } else {
            lane.sm.credit_skipped(since, now);
        }
        throttle.wake_sm(lane.sm.id, now);
    }
    // A park cycle is by definition a commit cycle: stamp it before the
    // step so the epoch marker precedes the step's own events at `now`.
    lane.sm.record_event(now, TelemetryEvent::EpochCommit);
    let out = lane.sm.step(now, kinfo, lat, shared, throttle, dispatcher);
    if out.issued {
        lane.last_issue = now;
    }
    lane.wake_at = if out.quiescent || out.gated {
        if out.live {
            let mut wake = lane.sm.next_wake();
            if out.gated {
                wake = match (wake, shared.next_release()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            match wake {
                Some(w) if w > now => w,
                _ => now + 1,
            }
        } else {
            u64::MAX
        }
    } else {
        now + 1
    };
    if lane.wake_at > now + 1 {
        lane.sleep_from = Some(now + 1);
        lane.sleep_gated = out.gated;
        if out.live {
            throttle.sleep_sm(lane.sm.id, now + 1);
        }
    }
}

/// Free-run every unparked lane of one shard — the body of a parallel
/// phase, run by workers for their shard and by the coordinator for
/// shard 0.
#[allow(clippy::too_many_arguments)]
fn free_run_shard(
    shard: &mut Shard,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
    max_pending: u32,
    horizon: u64,
    max_cycles: u64,
) {
    let Shard {
        lanes,
        throttle,
        stub,
        scrap,
    } = shard;
    for lane in lanes.iter_mut() {
        if lane.park.is_none() {
            free_run_lane(
                lane,
                throttle,
                stub,
                scrap,
                kinfo,
                lat,
                max_pending,
                horizon,
                max_cycles,
            );
        }
    }
}

/// Run a free-run phase body for one shard with fault injection and panic
/// capture. Returns `false` (after recording the panic) on unwind.
#[allow(clippy::too_many_arguments)]
fn guarded_free_run(
    cell: &Mutex<Shard>,
    shard_idx: usize,
    epoch: u64,
    fault: Option<&FaultPlan>,
    note: &Mutex<Option<String>>,
    kinfo: &KernelInfo,
    lat: &LatencyConfig,
    max_pending: u32,
    horizon: u64,
    max_cycles: u64,
) -> bool {
    let res = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = fault {
            if plan.take(epoch, shard_idx) {
                panic!("injected fault (epoch {epoch}, shard {shard_idx})");
            }
        }
        let mut shard = lock_recover(cell);
        free_run_shard(&mut shard, kinfo, lat, max_pending, horizon, max_cycles);
    }));
    match res {
        Ok(()) => true,
        Err(payload) => {
            record_panic(note, shard_idx, payload);
            false
        }
    }
}

/// The watchdog's progress watermark over the sharded state: latest issue,
/// latest writeback scheduled on any lane's wheel, latest capacity release
/// scheduled — the same quantity [`Gpu::progress_watermark`] computes for
/// the sequential engines, over the same (engine-invariant) inputs.
fn span_watermark(guards: &[MutexGuard<Shard>], shared: &SharedMem, base_issue: u64) -> u64 {
    let mut wm = base_issue.max(shared.latest_release_scheduled());
    for g in guards.iter() {
        for lane in &g.lanes {
            wm = wm.max(lane.last_issue).max(lane.sm.latest_writeback());
        }
    }
    wm
}

/// Run one sharded span: from `st.cycle` until the grid completes, `stop`
/// arrives, the watchdog trips, or a worker faults. Bit-identical (for the
/// non-faulted ends) to [`Gpu::run_until`] over the same span — which is
/// itself bit-identical to the per-cycle reference loop — for any shard
/// count. `epoch` numbers parallel free-run phases globally for
/// deterministic fault addressing; it advances identically in threaded and
/// inline modes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded_span(
    gpu: &mut Gpu,
    st: &mut EngineState,
    kinfo: &KernelInfo,
    stop: u64,
    shards: usize,
    watchdog: Option<u64>,
    fault: Option<&FaultPlan>,
    epoch: &mut u64,
) -> ShardSpanEnd {
    if gpu.finished() {
        return ShardSpanEnd::Finished;
    }
    let lat = gpu.cfg.lat;
    let mem_cfg = gpu.cfg.mem;
    let max_pending = mem_cfg.max_pending_per_warp;
    let n = gpu.sms.len();
    let nshards = shards.clamp(1, n.max(1));

    // Distribute SMs round-robin so a shard's lanes stay spread across the
    // id space (neighbouring SMs tend to park together). Lanes resume from
    // the engine state verbatim; parks are re-derived at the first wake
    // (see the `Lane::park` invariant).
    let mut cells: Vec<Mutex<Shard>> = (0..nshards)
        .map(|_| {
            Mutex::new(Shard {
                lanes: Vec::new(),
                throttle: gpu.throttle.clone(),
                stub: SharedMem::with_model(mem_cfg, MemoryModel::Functional),
                scrap: Dispatcher::new(0),
            })
        })
        .collect();
    for sm in gpu.sms.drain(..) {
        let id = sm.id;
        cells[id % nshards]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .lanes
            .push(Lane {
                sm,
                wake_at: st.wake_at[id],
                sleep_from: st.sleep_from[id],
                sleep_gated: st.sleep_gated[id],
                park: None,
                last_issue: st.last_issue,
            });
    }
    let cells = &cells; // shared borrow for the worker closures

    let start = &SpinBarrier::new(nshards);
    let done = &SpinBarrier::new(nshards);
    let stop_flag = &AtomicBool::new(false);
    let horizon_cell = &AtomicU64::new(0);
    let bound_cell = &AtomicU64::new(stop);
    let epoch_cell = &AtomicU64::new(*epoch);
    let panic_note = &Mutex::new(None::<String>);
    let lat_ref = &lat;

    // Worker threads only pay off when the OS can actually run them
    // concurrently; on a single hardware thread the coordinator free-runs
    // every shard itself (same shard structure, same commit order, same
    // result — the phase split is equivalence-invariant by construction).
    // `GRS_SHARD_THREADS=always` forces the thread path (used by the
    // equivalence suite so single-core CI still exercises it);
    // `GRS_SHARD_THREADS=never` pins the inline path.
    let threaded = nshards > 1
        && match std::env::var("GRS_SHARD_THREADS").as_deref() {
            Ok("always") => true,
            Ok("never") => false,
            _ => std::thread::available_parallelism().map_or(1, |p| p.get()) > 1,
        };

    // Exclusive cycle bound. Starts at `stop` and clamps to one past the
    // grid-completing cycle once the finishing commit lands (the sequential
    // loop's `finished()` gate still runs every SM whose wake-up falls on
    // the completing cycle, but nothing after it), or to the watchdog's
    // trip cycle.
    let mut bound = stop;
    let mut finished_at: Option<u64> = None;
    let mut stalled = false;
    let mut aborted: Option<String> = None;

    std::thread::scope(|scope| {
        // If the coordinator itself unwinds, release the workers on the way
        // out so the scope can join them (their panics are already caught).
        let mut poison_guard = BarrierPoisonGuard {
            start,
            done,
            armed: true,
        };
        let spawned = if threaded { nshards } else { 1 };
        for (widx, cell) in cells.iter().enumerate().take(spawned).skip(1) {
            scope.spawn(move || loop {
                if !start.wait() {
                    break;
                }
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                let horizon = horizon_cell.load(Ordering::Acquire);
                let bound = bound_cell.load(Ordering::Acquire);
                let ep = epoch_cell.load(Ordering::Acquire);
                if !guarded_free_run(
                    cell,
                    widx,
                    ep,
                    fault,
                    panic_note,
                    kinfo,
                    lat_ref,
                    max_pending,
                    horizon,
                    bound,
                ) {
                    start.poison();
                    done.poison();
                    break;
                }
                if !done.wait() {
                    break;
                }
            });
        }

        // The coordinator: serial commit phases interleaved with parallel
        // free-run phases. `gpu.throttle` is the master instance — it takes
        // no per-SM traffic (that lives in the clones) and only closes
        // windows and owns the authoritative probabilities/deadline.
        let mut deadline = gpu.throttle.next_deadline();
        'run: loop {
            let mut guards: Vec<MutexGuard<Shard>> = cells.iter().map(lock_recover).collect();
            let phase_bound;
            loop {
                // Minimum (cycle, SM id) over every lane's next event, and
                // the number of unparked lanes that could free-run now.
                let mut best: Option<(u64, usize, usize, usize, bool)> = None;
                let mut runnable = 0usize;
                for (si, shard) in guards.iter().enumerate() {
                    for (li, lane) in shard.lanes.iter().enumerate() {
                        let key = lane.key();
                        if key == u64::MAX {
                            continue;
                        }
                        let parked = lane.park.is_some();
                        if !parked && key <= deadline && key < bound {
                            runnable += 1;
                        }
                        if best.is_none_or(|(bk, bid, ..)| (key, lane.sm.id) < (bk, bid)) {
                            best = Some((key, lane.sm.id, si, li, parked));
                        }
                    }
                }
                let Some((b, _, si, li, parked)) = best else {
                    break 'run; // every lane retired: the grid drained
                };
                if b >= bound {
                    break 'run; // stop cycle or grid completion: nothing left in bounds
                }
                if let Some(w) = watchdog {
                    // Identical trip rule to the sequential engines: the
                    // next evaluated cycle has left a full window of
                    // provable silence behind it. All keys are ≤ the trip
                    // cycle (no event can be scheduled past the watermark),
                    // so the span ends exactly at `watermark + w`.
                    let trip =
                        span_watermark(&guards, &gpu.shared, st.last_issue).saturating_add(w);
                    if b >= trip {
                        stalled = true;
                        bound = trip;
                        break 'run;
                    }
                }
                if b > deadline {
                    // Every step at cycles ≤ deadline has happened (the
                    // sequential loop fires the boundary between its steps at
                    // `deadline` and `deadline + 1`): close the window.
                    let mut stalls = vec![0u64; n];
                    for (sm, stall) in stalls.iter_mut().enumerate() {
                        *stall = guards[sm % nshards]
                            .throttle
                            .drain_window_stalls(sm, deadline);
                    }
                    gpu.throttle.close_window_with(&stalls);
                    let probs = gpu.throttle.probs().to_vec();
                    for shard in guards.iter_mut() {
                        shard.throttle.sync_after_window(&probs);
                    }
                    deadline = gpu.throttle.next_deadline();
                    continue;
                }
                if parked {
                    let shard = &mut *guards[si];
                    commit_lane(
                        &mut shard.lanes[li],
                        &mut shard.throttle,
                        &mut gpu.shared,
                        &mut gpu.dispatcher,
                        kinfo,
                        &lat,
                    );
                    // Grid completion can only happen here (it takes an exit
                    // issue, which always parks), and the min-key order
                    // guarantees no lane has yet stepped past `b` — so
                    // clamping now reproduces the sequential `finished()`
                    // gate exactly.
                    if finished_at.is_none()
                        && gpu.dispatcher.remaining() == 0
                        && guards
                            .iter()
                            .all(|g| g.lanes.iter().all(|l| l.sm.live_blocks() == 0))
                    {
                        finished_at = Some(b);
                        bound = b + 1;
                    }
                    continue;
                }
                // Free-run phases must not outrun a pending watchdog trip:
                // a livelocked lane never parks and would otherwise burn
                // real time all the way to `bound`.
                let run_bound = match watchdog {
                    Some(w) => bound
                        .min(span_watermark(&guards, &gpu.shared, st.last_issue).saturating_add(w)),
                    None => bound,
                };
                if runnable == 1 {
                    // A lone lane between commits: running it inline beats a
                    // barrier round-trip through idle workers.
                    let shard = &mut *guards[si];
                    free_run_lane(
                        &mut shard.lanes[li],
                        &mut shard.throttle,
                        &mut shard.stub,
                        &mut shard.scrap,
                        kinfo,
                        &lat,
                        max_pending,
                        deadline,
                        run_bound,
                    );
                    continue;
                }
                phase_bound = run_bound;
                break; // ≥2 lanes can progress independently: go parallel
            }
            drop(guards);

            let ep = *epoch;
            *epoch += 1;
            if threaded {
                horizon_cell.store(deadline, Ordering::Release);
                bound_cell.store(phase_bound, Ordering::Release);
                epoch_cell.store(ep, Ordering::Release);
                if !start.wait() {
                    aborted = Some(take_panic(panic_note));
                    break 'run;
                }
                let own_ok = guarded_free_run(
                    &cells[0],
                    0,
                    ep,
                    fault,
                    panic_note,
                    kinfo,
                    &lat,
                    max_pending,
                    deadline,
                    phase_bound,
                );
                if !own_ok {
                    start.poison();
                    done.poison();
                    aborted = Some(take_panic(panic_note));
                    break 'run;
                }
                if !done.wait() {
                    aborted = Some(take_panic(panic_note));
                    break 'run;
                }
            } else {
                for (idx, cell) in cells.iter().enumerate() {
                    if !guarded_free_run(
                        cell,
                        idx,
                        ep,
                        fault,
                        panic_note,
                        kinfo,
                        &lat,
                        max_pending,
                        deadline,
                        phase_bound,
                    ) {
                        aborted = Some(take_panic(panic_note));
                        break 'run;
                    }
                }
            }
        }
        if threaded {
            stop_flag.store(true, Ordering::Release);
            start.wait(); // release the workers into their exit path
        }
        poison_guard.armed = false;
    });

    // Tear down: reassemble the SM array in id order and write the engine
    // state back. Crediting interrupted sleepers and finalizing the
    // occupancy integrals is `Gpu::finish`'s job — a span boundary is not
    // the end of the run. On a fault the state is partial but structurally
    // valid; the caller rolls back to a snapshot.
    let faulted = aborted.is_some();
    let mut lanes: Vec<Lane> = cells
        .iter()
        .flat_map(|c| {
            let shard = &mut *lock_recover(c);
            debug_assert!(
                faulted || shard.stub.stats == Default::default(),
                "free-run must never touch (even stub) global memory"
            );
            std::mem::take(&mut shard.lanes)
        })
        .collect();
    lanes.sort_by_key(|l| l.sm.id);
    if !faulted {
        // Fold each clone's per-SM throttle bookkeeping back into the
        // master so the next span's clones (or a checkpoint) start exact.
        let shard_throttles: Vec<DynThrottle> = cells
            .iter()
            .map(|c| lock_recover(c).throttle.clone())
            .collect();
        for id in 0..n {
            gpu.throttle.adopt_sm(id, &shard_throttles[id % nshards]);
        }
        for (id, lane) in lanes.iter().enumerate() {
            debug_assert_eq!(lane.sm.id, id);
            st.wake_at[id] = lane.wake_at;
            st.sleep_from[id] = lane.sleep_from;
            st.sleep_gated[id] = lane.sleep_gated;
            st.last_issue = st.last_issue.max(lane.last_issue);
        }
    }
    gpu.sms.extend(lanes.into_iter().map(|l| l.sm));
    if let Some(reason) = aborted {
        return ShardSpanEnd::Faulted(reason);
    }
    if let Some(c) = finished_at {
        debug_assert!(gpu.finished());
        // One past the grid-completing iteration (the completing SM's exit
        // issue keeps its wake-up at the next cycle, so nothing overshoots
        // it) — the sequential loop's exact exit cycle.
        st.cycle = c + 1;
        ShardSpanEnd::Finished
    } else if stalled {
        st.cycle = bound; // the trip cycle: watermark + window
        ShardSpanEnd::Stalled
    } else {
        debug_assert!(!gpu.finished());
        st.cycle = stop;
        ShardSpanEnd::ReachedStop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoning_releases_a_spinning_waiter() {
        let barrier = SpinBarrier::new(2);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| barrier.wait());
            // Give the waiter a moment to actually start spinning, then
            // poison instead of arriving.
            std::thread::sleep(Duration::from_millis(10));
            barrier.poison();
            assert!(!waiter.join().expect("waiter thread exits cleanly"));
        });
        // Future waiters bounce immediately.
        assert!(!barrier.wait());
    }

    #[test]
    fn a_timed_out_waiter_poisons_the_barrier_itself() {
        let barrier = SpinBarrier::new(2);
        let released = barrier.wait_with_timeout(Duration::from_millis(20));
        assert!(!released, "no peer ever arrives");
        assert!(barrier.is_poisoned());
        assert!(!barrier.wait(), "poisoned stays poisoned");
    }

    #[test]
    fn a_full_complement_releases_cleanly() {
        let barrier = SpinBarrier::new(3);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| barrier.wait());
            let b = scope.spawn(|| barrier.wait());
            assert!(barrier.wait());
            assert!(a.join().unwrap());
            assert!(b.join().unwrap());
        });
        assert!(!barrier.is_poisoned());
    }
}
