//! Per-warp microarchitectural state.

use crate::rng::XorShift64;

/// Sentinel register id used in writeback events that carry no destination
/// (store completions).
pub const NO_REG: u16 = u16::MAX;

/// One in-flight global-memory **instruction** of a warp under the
/// event-driven memory model: the destination register it will release and
/// the per-line transactions still outstanding. The instruction's scoreboard
/// entry (and its [`Warp::outstanding_mem`] slot) clears when the *last*
/// transaction returns — per-transaction completions coalesce into one
/// warp-level wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingMem {
    /// Destination register, [`NO_REG`] for stores.
    pub reg: u16,
    /// Transactions not yet returned; `0` marks a free table slot.
    pub remaining: u32,
}

/// State of one resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Program counter (index into the kernel program).
    pub pc: u32,
    /// Launch-order id within the SM ("dynamic warp id", used by GTO/OWF).
    pub dynamic_id: u64,
    /// Owning block slot on the SM.
    pub block_slot: u32,
    /// Warp index within its block (pairs warp *i* of block A with warp *i*
    /// of block B under register sharing).
    pub warp_in_block: u32,
    /// Active threads (≤ 32; last warp of a partial block has fewer).
    pub threads: u32,
    /// Per-loop remaining-trip counters.
    pub loop_counters: Vec<u16>,
    /// Bitmask: which loop counters are initialized.
    pub loop_init: u64,
    /// Bitmask of architectural registers with a pending writeback
    /// (scoreboard). Limits the simulator to ≤ 64 registers per thread,
    /// ample for the paper's kernels (max 48).
    pub pending_regs: u64,
    /// In-flight global-memory operations.
    pub outstanding_mem: u32,
    /// Per-instruction transaction groups of the event-driven memory model
    /// (empty under the functional model). Indexed by the group id carried
    /// in `MemTxn` writeback events; slots are recycled once drained.
    pub pending_mem: Vec<PendingMem>,
    /// Waiting at a block barrier.
    pub at_barrier: bool,
    /// Retired.
    pub finished: bool,
    /// Streaming-pattern position counter. Wide on purpose: the address
    /// generator advances it saturatingly, never by wrapping — a wrap would
    /// silently re-alias the stream onto already-visited lines and corrupt
    /// the hit-rate statistics (see `mem::generate_addresses`).
    pub stream_pos: u64,
    /// Tile-pattern position counter; same non-wrapping contract as
    /// [`Self::stream_pos`].
    pub tile_pos: u64,
    /// Per-warp deterministic RNG for scatter address generation.
    pub rng: XorShift64,
}

impl Warp {
    /// Fresh warp at pc 0.
    pub fn new(
        dynamic_id: u64,
        block_slot: u32,
        warp_in_block: u32,
        threads: u32,
        num_loops: usize,
        grid_block: u32,
    ) -> Self {
        Warp {
            pc: 0,
            dynamic_id,
            block_slot,
            warp_in_block,
            threads,
            loop_counters: vec![0; num_loops],
            loop_init: 0,
            pending_regs: 0,
            outstanding_mem: 0,
            pending_mem: Vec::new(),
            at_barrier: false,
            finished: false,
            stream_pos: 0,
            tile_pos: 0,
            rng: XorShift64::new(
                0xC0FF_EE00_0000_0000 ^ (u64::from(grid_block) << 16) ^ u64::from(warp_in_block),
            ),
        }
    }

    /// Does `reg_mask` overlap a pending writeback?
    #[inline]
    pub fn has_hazard(&self, reg_mask: u64) -> bool {
        self.pending_regs & reg_mask != 0
    }

    /// Mark `reg` pending.
    #[inline]
    pub fn mark_pending(&mut self, reg: u16) {
        debug_assert!(reg < 64);
        self.pending_regs |= 1 << reg;
    }

    /// Clear `reg` on writeback; `NO_REG` clears nothing.
    #[inline]
    pub fn clear_pending(&mut self, reg: u16) {
        if reg != NO_REG {
            self.pending_regs &= !(1 << reg);
        }
    }

    /// Open a transaction group for a memory instruction writing `reg`
    /// (`NO_REG` for stores) with `txns` line transactions in flight; returns
    /// the group id carried by its per-transaction writeback events.
    pub fn alloc_mem_group(&mut self, reg: u16, txns: u32) -> u16 {
        debug_assert!(txns > 0);
        let entry = PendingMem {
            reg,
            remaining: txns,
        };
        if let Some(i) = self.pending_mem.iter().position(|g| g.remaining == 0) {
            self.pending_mem[i] = entry;
            i as u16
        } else {
            self.pending_mem.push(entry);
            (self.pending_mem.len() - 1) as u16
        }
    }

    /// One transaction of group `group` returned. On the group's *last*
    /// transaction the destination's scoreboard entry clears, the
    /// instruction's [`Self::outstanding_mem`] slot frees, and `true` is
    /// returned (the warp-level wake-up).
    pub fn mem_txn_done(&mut self, group: u16) -> bool {
        let e = &mut self.pending_mem[group as usize];
        debug_assert!(e.remaining > 0, "completion for a drained group");
        e.remaining -= 1;
        if e.remaining == 0 {
            let reg = e.reg;
            self.clear_pending(reg);
            self.outstanding_mem = self.outstanding_mem.saturating_sub(1);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_mask_roundtrip() {
        let mut w = Warp::new(0, 0, 0, 32, 2, 0);
        assert!(!w.has_hazard(1 << 5));
        w.mark_pending(5);
        assert!(w.has_hazard(1 << 5));
        assert!(w.has_hazard((1 << 5) | (1 << 9)));
        assert!(!w.has_hazard(1 << 9));
        w.clear_pending(5);
        assert!(!w.has_hazard(1 << 5));
    }

    #[test]
    fn no_reg_clear_is_noop() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 0);
        w.mark_pending(3);
        w.clear_pending(NO_REG);
        assert!(w.has_hazard(1 << 3));
    }

    #[test]
    fn mem_groups_coalesce_to_one_wakeup_and_recycle_slots() {
        let mut w = Warp::new(0, 0, 0, 32, 0, 0);
        w.mark_pending(4);
        w.outstanding_mem = 1;
        let g = w.alloc_mem_group(4, 3);
        assert!(!w.mem_txn_done(g));
        assert!(!w.mem_txn_done(g));
        assert!(w.has_hazard(1 << 4), "reg held until the last transaction");
        assert!(w.mem_txn_done(g));
        assert!(!w.has_hazard(1 << 4));
        assert_eq!(w.outstanding_mem, 0);
        // The drained slot is reused before the table grows.
        assert_eq!(w.alloc_mem_group(NO_REG, 1), g);
        assert_eq!(w.pending_mem.len(), 1);
    }

    #[test]
    fn rng_seed_depends_on_identity() {
        let a = Warp::new(0, 0, 0, 32, 0, 1);
        let b = Warp::new(0, 0, 1, 32, 0, 1);
        let c = Warp::new(0, 0, 0, 32, 0, 2);
        assert_ne!(a.rng, b.rng);
        assert_ne!(a.rng, c.rng);
    }
}
