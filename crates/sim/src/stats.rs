//! Simulation statistics — the quantities the paper's figures plot.

use serde::{Deserialize, Serialize};

/// Per-SM counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmStats {
    /// Warp instructions issued.
    pub warp_instrs: u64,
    /// Thread instructions issued (warp instructions × active threads).
    pub thread_instrs: u64,
    /// Cycles with zero issues while ≥1 warp was blocked by a lock, the
    /// dynamic throttle, or a structural port conflict ("pipeline stall",
    /// paper Sec. VI-B).
    pub stall_cycles: u64,
    /// Cycles with zero issues while every live warp waited on long-latency
    /// results or barriers ("idle", paper Sec. VI-B).
    pub idle_cycles: u64,
    /// Cycles with no resident work at all (grid smaller than the machine or
    /// end-of-grid drain); excluded from the stall/idle split.
    pub empty_cycles: u64,
    /// Thread blocks completed on this SM.
    pub blocks_completed: u64,
    /// Maximum resident blocks observed.
    pub max_resident_blocks: u32,
    /// Lock-acquisition attempts that were denied (busy-wait retries).
    pub lock_retries: u64,
    /// Non-owner memory instructions suppressed by the dynamic throttle.
    pub throttled_issues: u64,
    /// Warp-cycles a global **load** was blocked by event-memory-model
    /// back-pressure: the MSHR table (or the DRAM queue behind it) could not
    /// reserve room for its transactions. Always 0 under the functional
    /// model.
    pub mshr_full_stalls: u64,
    /// Warp-cycles a global **store** was blocked by a full DRAM request
    /// queue (stores take no MSHR entry). Always 0 under the functional
    /// model.
    pub dram_queue_full_stalls: u64,
    /// Idle cycles in which ≥1 live warp was blocked on a register hazard
    /// (scoreboard). Part of the per-reason breakdown:
    /// `stall_scoreboard_cycles + stall_barrier_cycles +
    /// stall_no_ready_cycles == idle_cycles`, bit-identical across engines.
    pub stall_scoreboard_cycles: u64,
    /// Idle cycles in which no live warp was scoreboard-blocked but ≥1 was
    /// parked at a block-wide barrier.
    pub stall_barrier_cycles: u64,
    /// Pipeline-stall cycles attributed to the memory system or structural
    /// conflicts. By construction this equals [`Self::stall_cycles`]: every
    /// zero-issue cycle classified as a pipeline stall is caused by the
    /// MSHR/DRAM issue gate, a per-warp MSHR limit, or a port conflict.
    pub stall_mem_gate_cycles: u64,
    /// Remaining idle cycles: live warps existed but none was ready and
    /// none was scoreboard- or barrier-blocked (lock busy-wait, dynamic
    /// throttle suppression, end-of-block exit drain).
    pub stall_no_ready_cycles: u64,
}

/// Memory-hierarchy counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 load hits (all SMs).
    pub l1_hits: u64,
    /// L1 load misses.
    pub l1_misses: u64,
    /// L2 load hits.
    pub l2_hits: u64,
    /// L2 load misses (DRAM accesses).
    pub l2_misses: u64,
    /// Total global-memory transactions issued by coalescers.
    pub transactions: u64,
    /// Event model: requests that merged into an in-flight MSHR entry for
    /// the same line (hit-under-miss / miss merging) instead of paying for
    /// another DRAM access.
    pub mshr_merges: u64,
    /// Event model: sum over cycles of occupied MSHR entries (all
    /// partitions) — the integral `∫ occupancy dt`, credited in closed form
    /// at release events so it is exact across fast-forward jumps. Divide by
    /// `SimStats::cycles` for the mean outstanding-miss count.
    pub mshr_occupancy_cycles: u64,
    /// Event model: sum over cycles of held DRAM request-queue slots (all
    /// partitions); exact across fast-forward jumps like
    /// [`Self::mshr_occupancy_cycles`].
    pub dram_queue_occupancy_cycles: u64,
    /// Event model: most MSHR entries ever occupied **across all
    /// partitions**, sampled at every admission (admissions are the only
    /// point totals grow, so the sample sees every peak).
    pub peak_mshr_occupancy: u32,
    /// Event model: most DRAM-queue slots ever held across all partitions,
    /// sampled at admission like [`Self::peak_mshr_occupancy`].
    pub peak_dram_queue_occupancy: u32,
}

impl MemStats {
    /// L1 miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        ratio(self.l1_misses, self.l1_hits + self.l1_misses)
    }

    /// L2 miss ratio.
    pub fn l2_miss_ratio(&self) -> f64 {
        ratio(self.l2_misses, self.l2_hits + self.l2_misses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Whole-run statistics returned by [`crate::Simulator::run`].
///
/// # Example
///
/// The paper's metrics are ratios over these counters: IPC is thread
/// instructions per cycle, and the Fig. 9(c,d) decomposition compares
/// stall/idle cycles against a baseline run:
///
/// ```
/// use grs_sim::SimStats;
///
/// let baseline = SimStats {
///     cycles: 1_000,
///     thread_instrs: 8_000,
///     stall_cycles: 400,
///     ..Default::default()
/// };
/// let shared = SimStats {
///     cycles: 800,
///     thread_instrs: 8_000,
///     stall_cycles: 300,
///     ..Default::default()
/// };
/// assert_eq!(baseline.ipc(), 8.0);
/// assert_eq!(shared.ipc(), 10.0);
/// assert_eq!(shared.ipc_improvement_pct(&baseline), 25.0);
/// assert_eq!(shared.stall_decrease_pct(&baseline), 25.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Sum of warp instructions across SMs.
    pub warp_instrs: u64,
    /// Sum of thread instructions across SMs — the numerator of the paper's
    /// IPC metric.
    pub thread_instrs: u64,
    /// Sum of per-SM stall cycles.
    pub stall_cycles: u64,
    /// Sum of per-SM idle cycles.
    pub idle_cycles: u64,
    /// Sum of per-SM empty cycles.
    pub empty_cycles: u64,
    /// Blocks completed (must equal the grid size on a clean run).
    pub blocks_completed: u64,
    /// Max resident blocks observed on any SM — the quantity of paper
    /// Fig. 8(a)/(b) and Tables VI/VIII.
    pub max_resident_blocks: u32,
    /// Busy-wait lock retries.
    pub lock_retries: u64,
    /// Throttle suppressions.
    pub throttled_issues: u64,
    /// Sum of per-SM load-side memory-gate stalls (event model; see
    /// [`SmStats::mshr_full_stalls`]).
    pub mshr_full_stalls: u64,
    /// Sum of per-SM store-side memory-gate stalls (event model).
    pub dram_queue_full_stalls: u64,
    /// Sum of per-SM scoreboard-blocked idle cycles (see
    /// [`SmStats::stall_scoreboard_cycles`]).
    pub stall_scoreboard_cycles: u64,
    /// Sum of per-SM barrier-blocked idle cycles.
    pub stall_barrier_cycles: u64,
    /// Sum of per-SM memory-gate/structural pipeline-stall cycles
    /// (equals [`Self::stall_cycles`] by construction).
    pub stall_mem_gate_cycles: u64,
    /// Sum of per-SM no-ready-warp idle cycles.
    pub stall_no_ready_cycles: u64,
    /// Memory counters.
    pub mem: MemStats,
    /// Per-SM breakdown.
    pub per_sm: Vec<SmStats>,
    /// True if the run hit the safety cycle bound before the grid finished.
    pub timed_out: bool,
}

impl SimStats {
    /// Instructions per cycle (thread instructions, paper metric).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instrs as f64 / self.cycles as f64
        }
    }

    /// Percentage IPC improvement over `baseline`
    /// (`(IPC − IPC_base)/IPC_base × 100`, the paper's headline metric).
    pub fn ipc_improvement_pct(&self, baseline: &SimStats) -> f64 {
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            (self.ipc() - b) / b * 100.0
        }
    }

    /// Percentage decrease in stall cycles vs `baseline` (paper Fig. 9(c,d));
    /// negative values mean stalls increased.
    pub fn stall_decrease_pct(&self, baseline: &SimStats) -> f64 {
        decrease_pct(self.stall_cycles, baseline.stall_cycles)
    }

    /// Percentage decrease in idle cycles vs `baseline`.
    pub fn idle_decrease_pct(&self, baseline: &SimStats) -> f64 {
        decrease_pct(self.idle_cycles, baseline.idle_cycles)
    }

    /// Roll per-SM counters (in SM-id order) and the shared-memory counters
    /// into whole-run statistics. Both execution engines — the sequential
    /// loop and the sharded epoch loop — build their result through this one
    /// function, so the sharded path cannot drift from the sequential one in
    /// how counters are folded (the bit-identity the equivalence suite pins).
    pub fn aggregate<'a, I>(cycles: u64, timed_out: bool, mem: MemStats, sms: I) -> SimStats
    where
        I: IntoIterator<Item = &'a SmStats>,
    {
        let mut out = SimStats {
            cycles,
            timed_out,
            mem,
            ..SimStats::default()
        };
        for s in sms {
            out.warp_instrs += s.warp_instrs;
            out.thread_instrs += s.thread_instrs;
            out.stall_cycles += s.stall_cycles;
            out.idle_cycles += s.idle_cycles;
            out.empty_cycles += s.empty_cycles;
            out.blocks_completed += s.blocks_completed;
            out.max_resident_blocks = out.max_resident_blocks.max(s.max_resident_blocks);
            out.lock_retries += s.lock_retries;
            out.throttled_issues += s.throttled_issues;
            out.mshr_full_stalls += s.mshr_full_stalls;
            out.dram_queue_full_stalls += s.dram_queue_full_stalls;
            out.stall_scoreboard_cycles += s.stall_scoreboard_cycles;
            out.stall_barrier_cycles += s.stall_barrier_cycles;
            out.stall_mem_gate_cycles += s.stall_mem_gate_cycles;
            out.stall_no_ready_cycles += s.stall_no_ready_cycles;
            out.per_sm.push(s.clone());
        }
        out
    }
}

fn decrease_pct(now: u64, before: u64) -> f64 {
    if before == 0 {
        if now == 0 {
            0.0
        } else {
            -100.0
        }
    } else {
        (before as f64 - now as f64) / before as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_thread_instrs_per_cycle() {
        let s = SimStats {
            cycles: 100,
            thread_instrs: 2500,
            ..Default::default()
        };
        assert_eq!(s.ipc(), 25.0);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn improvement_pct() {
        let base = SimStats {
            cycles: 100,
            thread_instrs: 1000,
            ..Default::default()
        };
        let better = SimStats {
            cycles: 100,
            thread_instrs: 1200,
            ..Default::default()
        };
        assert!((better.ipc_improvement_pct(&base) - 20.0).abs() < 1e-12);
        assert!((base.ipc_improvement_pct(&better) + 16.666).abs() < 0.01);
    }

    #[test]
    fn decrease_pct_handles_zero_baselines() {
        let zero = SimStats::default();
        let some = SimStats {
            stall_cycles: 50,
            ..Default::default()
        };
        assert_eq!(zero.stall_decrease_pct(&zero), 0.0);
        assert_eq!(some.stall_decrease_pct(&zero), -100.0);
        assert_eq!(zero.stall_decrease_pct(&some), 100.0);
    }

    #[test]
    fn mem_ratios() {
        let m = MemStats {
            l1_hits: 75,
            l1_misses: 25,
            l2_hits: 20,
            l2_misses: 5,
            transactions: 100,
            ..Default::default()
        };
        assert!((m.l1_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((m.l2_miss_ratio() - 0.2).abs() < 1e-12);
        assert_eq!(MemStats::default().l1_miss_ratio(), 0.0);
    }
}
