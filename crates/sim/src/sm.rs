//! The SM pipeline: per-cycle readiness scan, dual-issue scheduling,
//! execution, barriers, block completion and refill.
//!
//! Each cycle an SM:
//!
//! 1. drains due writebacks (scoreboard clears, MSHR slots free),
//! 2. scans every resident warp and classifies it *ready* or blocked
//!    (scoreboard hazard, MSHR full, barrier, pair-lock busy-wait per the
//!    Fig. 3/Fig. 4 automata, dynamic-throttle suppression),
//! 3. lets each scheduler unit pick one ready warp (policy from
//!    [`grs_core::sched`]) and issues its next instruction, subject to one
//!    global-memory and one scratchpad instruction per SM per cycle
//!    (structural ports),
//! 4. accounts the cycle as productive, *stall* (something was blocked by a
//!    lock/throttle/port) or *idle* (everything ready-less was waiting on
//!    latency or barriers) — the paper's Fig. 9(c,d) split.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use grs_core::{
    DynThrottle, LatencyConfig, LaunchPlan, RegAccess, RegPairLocks, Scheduler, SchedulerKind,
    SmemPairLock, WarpClass, WarpView,
};
use grs_isa::Op;

use crate::block::{pairing_of_slot, Block, PairLocks, Pairing};
use crate::cache::Cache;
use crate::dispatch::Dispatcher;
use crate::kinfo::KernelInfo;
use crate::mem::{generate_addresses, SharedMem};
use crate::stats::SmStats;
use crate::warp::{Warp, NO_REG};

/// Writeback event: completes at `.0`, targets warp slot `.1`, clears
/// register `.2` (`NO_REG` for stores), and frees an MSHR slot when `.3`.
type Writeback = (u64, u32, u16, bool);

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index (SM0 is the throttle reference).
    pub id: usize,
    /// L1 data cache.
    pub l1: Cache,
    /// Resident blocks by slot.
    pub blocks: Vec<Option<Block>>,
    /// Warp contexts: block slot `b` owns warp slots
    /// `b*warps_per_block ..= (b+1)*warps_per_block - 1`.
    pub warps: Vec<Option<Warp>>,
    /// Pair-lock state, one entry per shared pair of the launch plan.
    pub pairs: Vec<PairLocks>,
    /// The launch plan this SM was configured with.
    pub plan: LaunchPlan,
    /// Statistics.
    pub stats: SmStats,
    sched: Scheduler,
    units: usize,
    next_dyn_id: u64,
    writebacks: BinaryHeap<Reverse<Writeback>>,
    // per-cycle scratch, reused to avoid allocation
    views: Vec<WarpView>,
    addr_buf: Vec<u64>,
}

impl Sm {
    /// Build an SM for one run.
    pub fn new(
        id: usize,
        plan: LaunchPlan,
        kinfo: &KernelInfo,
        sched_kind: SchedulerKind,
        units: usize,
        l1: Cache,
        register_sharing: bool,
    ) -> Self {
        let slots = plan.max_blocks as usize;
        let wpb = kinfo.warps_per_block as usize;
        let pairs = (0..plan.shared_pairs)
            .map(|_| {
                if register_sharing {
                    PairLocks::Reg(RegPairLocks::new(wpb))
                } else {
                    PairLocks::Smem(SmemPairLock::new())
                }
            })
            .collect();
        Sm {
            id,
            l1,
            blocks: vec![None; slots],
            warps: vec![None; slots * wpb],
            pairs,
            plan,
            stats: SmStats::default(),
            sched: sched_kind.build(slots * wpb, units),
            units,
            next_dyn_id: 0,
            writebacks: BinaryHeap::new(),
            views: Vec::with_capacity(slots * wpb),
            addr_buf: Vec::with_capacity(32),
        }
    }

    /// Number of blocks currently resident.
    pub fn live_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u32
    }

    /// Does any slot lack a block?
    pub fn has_free_slot(&self) -> bool {
        self.blocks.iter().any(|b| b.is_none())
    }

    /// Launch grid block `grid_id` into the first free slot. Panics if no
    /// slot is free (callers check [`Self::has_free_slot`]).
    pub fn launch_block(&mut self, grid_id: u32, kinfo: &KernelInfo) {
        let slot = self
            .blocks
            .iter()
            .position(|b| b.is_none())
            .expect("launch_block requires a free slot");
        let wpb = kinfo.warps_per_block;
        self.blocks[slot] = Some(Block {
            grid_id,
            live_warps: wpb,
            at_barrier: 0,
            pairing: pairing_of_slot(slot as u32, self.plan.unshared),
        });
        for w in 0..wpb {
            let dyn_id = self.next_dyn_id;
            self.next_dyn_id += 1;
            self.warps[slot * wpb as usize + w as usize] = Some(Warp::new(
                dyn_id,
                slot as u32,
                w,
                kinfo.threads_in_warp[w as usize],
                kinfo.num_loops,
                grid_id,
            ));
        }
        self.stats.max_resident_blocks = self.stats.max_resident_blocks.max(self.live_blocks());
    }

    /// Advance one cycle.
    pub fn step(
        &mut self,
        now: u64,
        kinfo: &KernelInfo,
        lat: &LatencyConfig,
        shared: &mut SharedMem,
        throttle: &mut DynThrottle,
        dispatcher: &mut Dispatcher,
    ) {
        self.drain_writebacks(now);
        let max_pending = shared.cfg.max_pending_per_warp;
        let (any_live, any_stall_reason) = self.scan_readiness(kinfo, throttle, max_pending);

        let mut issued = 0u32;
        let mut port_conflict = false;
        let mut global_port_used = false;
        let mut smem_port_used = false;
        for unit in 0..self.units {
            let Some(slot) = self.sched.pick(unit, self.units, &self.views) else {
                continue;
            };
            let pc = self.warps[slot].as_ref().expect("picked warp exists").pc as usize;
            let op = kinfo.kernel.program.instrs[pc].op;
            // Structural ports: one global-memory and one scratchpad
            // instruction per SM per cycle.
            if op.is_global_mem() {
                if global_port_used {
                    port_conflict = true;
                    continue;
                }
                global_port_used = true;
            } else if op.is_shared_mem() {
                if smem_port_used {
                    port_conflict = true;
                    continue;
                }
                smem_port_used = true;
            }
            if self.issue(slot, now, kinfo, lat, shared, dispatcher) {
                issued += 1;
            } else {
                port_conflict = true; // same-cycle lock race: counts as stall
            }
        }

        if issued == 0 {
            if any_stall_reason || port_conflict {
                self.stats.stall_cycles += 1;
            } else if any_live {
                self.stats.idle_cycles += 1;
            } else {
                self.stats.empty_cycles += 1;
            }
            if any_live {
                // The Sec. IV-C monitor compares per-SM lost cycles; both
                // pipeline stalls and ready-less (memory-wait) cycles are
                // symptoms of the interference it throttles.
                throttle.note_stall(self.id);
            }
        }
    }

    fn drain_writebacks(&mut self, now: u64) {
        while let Some(&Reverse((cycle, wslot, reg, is_mem))) = self.writebacks.peek() {
            if cycle > now {
                break;
            }
            self.writebacks.pop();
            if let Some(w) = self.warps[wslot as usize].as_mut() {
                w.clear_pending(reg);
                if is_mem {
                    w.outstanding_mem = w.outstanding_mem.saturating_sub(1);
                }
            }
        }
    }

    /// Scan every resident warp, building the scheduler view. Returns
    /// `(any_live, any_stall_reason)`.
    fn scan_readiness(
        &mut self,
        kinfo: &KernelInfo,
        throttle: &mut DynThrottle,
        max_pending: u32,
    ) -> (bool, bool) {
        self.views.clear();
        let mut any_live = false;
        let mut any_stall = false;
        for slot in 0..self.warps.len() {
            let Some(w) = self.warps[slot].as_ref() else {
                continue;
            };
            if w.finished {
                continue;
            }
            any_live = true;
            let block = self.blocks[w.block_slot as usize]
                .as_ref()
                .expect("live warp belongs to a live block");
            // OWF class (paper Sec. IV-A). Ownership only exists once a
            // block waits on shared resources held by its partner: a shared
            // block whose partner slot is empty, or whose pair has no
            // determined owner yet, behaves like an unshared block.
            let class = match block.pairing {
                Pairing::Unshared => WarpClass::Unshared,
                Pairing::Paired { pair, member } => {
                    let base = self.plan.unshared + 2 * pair;
                    let partner_slot = base
                        + if member == grs_core::PairMember::A {
                            1
                        } else {
                            0
                        };
                    let partner_present = self.blocks[partner_slot as usize].is_some();
                    match self.pairs[pair as usize].owner() {
                        _ if !partner_present => WarpClass::Unshared,
                        Some(m) if m == member => WarpClass::Owner,
                        Some(_) => WarpClass::NonOwner,
                        None => WarpClass::Unshared,
                    }
                }
            };

            let mut ready = false;
            if !w.at_barrier {
                let pc = w.pc as usize;
                let instr = &kinfo.kernel.program.instrs[pc];
                let hazard = w.has_hazard(kinfo.op_masks[pc]);
                let drain_for_exit =
                    matches!(instr.op, Op::Exit) && (w.outstanding_mem > 0 || w.pending_regs != 0);
                let mshr_full = instr.op.is_global_mem() && w.outstanding_mem >= max_pending;
                if mshr_full {
                    // Structural congestion: the warp has work but the
                    // memory pipeline cannot accept it — a *pipeline stall*
                    // in the paper's Sec. VI-B accounting (and the signal
                    // the Sec. IV-C throttle monitors).
                    any_stall = true;
                }
                if !hazard && !drain_for_exit && !mshr_full {
                    ready = true;
                    // Pair-lock busy-wait (Fig. 3 / Fig. 4 step (e)): the
                    // warp is simply not ready; it retries next cycle.
                    if let Pairing::Paired { pair, member } = block.pairing {
                        if kinfo.uses_shared_reg[pc] {
                            if let PairLocks::Reg(l) = &self.pairs[pair as usize] {
                                if !l.can_access(member, w.warp_in_block as usize) {
                                    ready = false;
                                    self.stats.lock_retries += 1;
                                }
                            }
                        }
                        if ready && kinfo.uses_shared_smem[pc] {
                            if let PairLocks::Smem(l) = &self.pairs[pair as usize] {
                                if !l.can_access(member) {
                                    ready = false;
                                    self.stats.lock_retries += 1;
                                }
                            }
                        }
                    }
                    // Dynamic warp-execution throttle (paper Sec. IV-C):
                    // intentional suppression, not a pipeline stall.
                    if ready
                        && instr.op.is_global_mem()
                        && class == WarpClass::NonOwner
                        && throttle.enabled()
                        && !throttle.allow(self.id)
                    {
                        ready = false;
                        self.stats.throttled_issues += 1;
                    }
                }
            }
            self.views.push(WarpView {
                slot,
                dynamic_id: w.dynamic_id,
                class,
                ready,
            });
        }
        (any_live, any_stall)
    }

    /// Issue the next instruction of the warp in `slot`. Returns false only
    /// when a same-cycle lock race invalidated the readiness decision.
    fn issue(
        &mut self,
        slot: usize,
        now: u64,
        kinfo: &KernelInfo,
        lat: &LatencyConfig,
        shared: &mut SharedMem,
        dispatcher: &mut Dispatcher,
    ) -> bool {
        let (pc, block_slot, warp_in_block, pairing) = {
            let w = self.warps[slot].as_ref().expect("issuing a live warp");
            let b = self.blocks[w.block_slot as usize]
                .as_ref()
                .expect("live block");
            (w.pc as usize, w.block_slot, w.warp_in_block, b.pairing)
        };
        let instr = kinfo.kernel.program.instrs[pc];

        // Acquire pair locks for real (a peer scheduler unit may have taken
        // them since the readiness scan).
        if let Pairing::Paired { pair, member } = pairing {
            if kinfo.uses_shared_reg[pc] {
                if let PairLocks::Reg(l) = &mut self.pairs[pair as usize] {
                    if l.access_shared(member, warp_in_block as usize) == RegAccess::Blocked {
                        self.stats.lock_retries += 1;
                        return false;
                    }
                }
            }
            if kinfo.uses_shared_smem[pc] {
                if let PairLocks::Smem(l) = &mut self.pairs[pair as usize] {
                    if l.access_shared(member) == RegAccess::Blocked {
                        self.stats.lock_retries += 1;
                        return false;
                    }
                }
            }
        }

        let threads;
        {
            let w = self.warps[slot].as_mut().expect("issuing a live warp");
            threads = w.threads;
            match instr.op {
                Op::IAlu => advance_alu(
                    w,
                    &instr,
                    now,
                    u64::from(lat.ialu),
                    slot,
                    &mut self.writebacks,
                ),
                Op::IMul => advance_alu(
                    w,
                    &instr,
                    now,
                    u64::from(lat.imul),
                    slot,
                    &mut self.writebacks,
                ),
                Op::FAdd | Op::FMul | Op::FFma => advance_alu(
                    w,
                    &instr,
                    now,
                    u64::from(lat.fp),
                    slot,
                    &mut self.writebacks,
                ),
                Op::Sfu => advance_alu(
                    w,
                    &instr,
                    now,
                    u64::from(lat.sfu),
                    slot,
                    &mut self.writebacks,
                ),
                Op::LdShared(_) => advance_alu(
                    w,
                    &instr,
                    now,
                    u64::from(lat.scratchpad),
                    slot,
                    &mut self.writebacks,
                ),
                Op::StShared(_) => {
                    w.pc += 1; // fire-and-forget scratchpad write
                }
                Op::LdGlobal(p) | Op::StGlobal(p) => {
                    self.addr_buf.clear();
                    let grid_id = self.blocks[block_slot as usize].as_ref().unwrap().grid_id;
                    generate_addresses(p, w, grid_id, &mut self.addr_buf);
                    let is_load = matches!(instr.op, Op::LdGlobal(_));
                    let mut max_lat = 0u64;
                    for &addr in &self.addr_buf {
                        let l = if is_load {
                            shared.load(&mut self.l1, addr, now)
                        } else {
                            shared.store(&mut self.l1, addr, now)
                        };
                        max_lat = max_lat.max(l);
                    }
                    let reg = if is_load {
                        let r = instr.dst.map(|d| d.0).unwrap_or(NO_REG);
                        if r != NO_REG {
                            w.mark_pending(r);
                        }
                        r
                    } else {
                        NO_REG
                    };
                    w.outstanding_mem += 1;
                    self.writebacks
                        .push(Reverse((now + max_lat, slot as u32, reg, true)));
                    w.pc += 1;
                }
                Op::Barrier => {
                    w.at_barrier = true;
                    w.pc += 1;
                    let block = self.blocks[block_slot as usize].as_mut().unwrap();
                    block.at_barrier += 1;
                    if block.at_barrier == block.live_warps {
                        release_barrier(&mut self.warps, block_slot, kinfo.warps_per_block);
                        self.blocks[block_slot as usize]
                            .as_mut()
                            .unwrap()
                            .at_barrier = 0;
                    }
                }
                Op::BranchBack {
                    target,
                    trips,
                    loop_id,
                } => {
                    let id = loop_id as usize;
                    if w.loop_init & (1 << id) == 0 {
                        w.loop_counters[id] = trips;
                        w.loop_init |= 1 << id;
                    }
                    if w.loop_counters[id] > 0 {
                        w.loop_counters[id] -= 1;
                        w.pc = u32::from(target);
                    } else {
                        w.loop_init &= !(1 << id);
                        w.pc += 1;
                    }
                }
                Op::Exit => {
                    w.finished = true;
                    self.retire_warp(slot, block_slot, warp_in_block, pairing, kinfo, dispatcher);
                }
            }
        }

        self.stats.warp_instrs += 1;
        self.stats.thread_instrs += u64::from(threads);
        true
    }

    /// Handle a warp retirement: release its register pair lock, resolve
    /// barriers it is no longer part of, and complete the block when it was
    /// the last warp.
    fn retire_warp(
        &mut self,
        _slot: usize,
        block_slot: u32,
        warp_in_block: u32,
        pairing: Pairing,
        kinfo: &KernelInfo,
        dispatcher: &mut Dispatcher,
    ) {
        if let Pairing::Paired { pair, member } = pairing {
            if let PairLocks::Reg(l) = &mut self.pairs[pair as usize] {
                l.warp_finished(member, warp_in_block as usize);
            }
        }
        let block = self.blocks[block_slot as usize]
            .as_mut()
            .expect("retiring into live block");
        block.live_warps -= 1;
        if block.live_warps == 0 {
            self.complete_block(block_slot, pairing, kinfo, dispatcher);
        } else if block.at_barrier > 0 && block.at_barrier == block.live_warps {
            // Remaining warps were all at the barrier; the exit releases it.
            release_barrier(&mut self.warps, block_slot, kinfo.warps_per_block);
            self.blocks[block_slot as usize]
                .as_mut()
                .unwrap()
                .at_barrier = 0;
        }
    }

    fn complete_block(
        &mut self,
        block_slot: u32,
        pairing: Pairing,
        kinfo: &KernelInfo,
        dispatcher: &mut Dispatcher,
    ) {
        if let Pairing::Paired { pair, member } = pairing {
            self.pairs[pair as usize].block_completed(member);
        }
        self.stats.blocks_completed += 1;
        let wpb = kinfo.warps_per_block as usize;
        let base = block_slot as usize * wpb;
        for w in &mut self.warps[base..base + wpb] {
            debug_assert!(w.as_ref().map(|w| w.finished).unwrap_or(true));
            *w = None;
        }
        self.blocks[block_slot as usize] = None;
        // Refill immediately (paper Sec. IV: the replacement enters the pair
        // as the new non-owner).
        if let Some(gid) = dispatcher.next_block() {
            self.launch_block(gid, kinfo);
        }
    }
}

fn advance_alu(
    w: &mut Warp,
    instr: &grs_isa::Instr,
    now: u64,
    latency: u64,
    slot: usize,
    writebacks: &mut BinaryHeap<Reverse<Writeback>>,
) {
    if let Some(d) = instr.dst {
        w.mark_pending(d.0);
        writebacks.push(Reverse((now + latency, slot as u32, d.0, false)));
    }
    w.pc += 1;
}

fn release_barrier(warps: &mut [Option<Warp>], block_slot: u32, warps_per_block: u32) {
    let base = block_slot as usize * warps_per_block as usize;
    for w in warps[base..base + warps_per_block as usize]
        .iter_mut()
        .flatten()
    {
        w.at_barrier = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::{GpuConfig, ResourceKind, Threshold};
    use grs_isa::KernelBuilder;

    fn kinfo(regs: u32, threads: u32) -> KernelInfo {
        let k = KernelBuilder::new("t")
            .threads_per_block(threads)
            .regs_per_thread(regs)
            .grid_blocks(16)
            .ialu(4)
            .build();
        KernelInfo::new(k, None, Threshold::paper_default())
    }

    fn plan(unshared: u32, pairs: u32) -> LaunchPlan {
        LaunchPlan {
            unshared,
            shared_pairs: pairs,
            max_blocks: unshared + 2 * pairs,
            baseline_blocks: unshared + pairs,
            resource: ResourceKind::Registers,
        }
    }

    fn sm(ki: &KernelInfo, p: LaunchPlan) -> Sm {
        let cfg = GpuConfig::tiny();
        let l1 = Cache::new(
            u64::from(cfg.mem.l1_bytes),
            cfg.mem.l1_ways,
            u64::from(cfg.mem.line_bytes),
        );
        Sm::new(0, p, ki, SchedulerKind::Lrr, 2, l1, true)
    }

    #[test]
    fn launch_fills_slots_and_counts_residency() {
        let ki = kinfo(8, 64);
        let mut s = sm(&ki, plan(3, 0));
        assert!(s.has_free_slot());
        s.launch_block(0, &ki);
        s.launch_block(1, &ki);
        assert_eq!(s.live_blocks(), 2);
        assert_eq!(s.stats.max_resident_blocks, 2);
        s.launch_block(2, &ki);
        assert!(!s.has_free_slot());
    }

    #[test]
    fn whole_block_retires_and_slot_refills() {
        let ki = kinfo(8, 32);
        let cfg = GpuConfig::tiny();
        let mut s = sm(&ki, plan(1, 0));
        let mut shared = SharedMem::new(cfg.mem);
        let mut throttle = DynThrottle::disabled(1);
        let mut disp = Dispatcher::new(3);
        s.launch_block(disp.next_block().unwrap(), &ki);
        let lat = cfg.lat;
        for cycle in 0..2000 {
            s.step(cycle, &ki, &lat, &mut shared, &mut throttle, &mut disp);
            if s.stats.blocks_completed == 3 && s.live_blocks() == 0 {
                break;
            }
        }
        assert_eq!(s.stats.blocks_completed, 3);
        assert_eq!(disp.remaining(), 0);
        // 5 dynamic warp instructions per block (4 ialu + exit) × 3 blocks.
        assert_eq!(s.stats.warp_instrs, 15);
        assert_eq!(s.stats.thread_instrs, 15 * 32);
    }

    #[test]
    fn barrier_joins_all_warps_of_a_block() {
        let k = KernelBuilder::new("barrier")
            .threads_per_block(64) // 2 warps
            .regs_per_thread(8)
            .grid_blocks(1)
            .ialu(1)
            .barrier()
            .ialu(1)
            .build();
        let ki = KernelInfo::new(k, None, Threshold::paper_default());
        let cfg = GpuConfig::tiny();
        let mut s = sm(&ki, plan(1, 0));
        let mut shared = SharedMem::new(cfg.mem);
        let mut throttle = DynThrottle::disabled(1);
        let mut disp = Dispatcher::new(1);
        s.launch_block(disp.next_block().unwrap(), &ki);
        for cycle in 0..1000 {
            s.step(cycle, &ki, &cfg.lat, &mut shared, &mut throttle, &mut disp);
            if s.live_blocks() == 0 {
                break;
            }
        }
        assert_eq!(s.stats.blocks_completed, 1);
        // 2 warps × 4 instructions (ialu, barrier, ialu, exit).
        assert_eq!(s.stats.warp_instrs, 8);
    }
}
