//! The SM pipeline: per-cycle readiness scan, dual-issue scheduling,
//! execution, barriers, block completion and refill.
//!
//! Each cycle an SM:
//!
//! 1. drains due writebacks (scoreboard clears, MSHR slots free),
//! 2. scans every resident warp and classifies it *ready* or blocked
//!    (scoreboard hazard, MSHR full, barrier, pair-lock busy-wait per the
//!    Fig. 3/Fig. 4 automata, dynamic-throttle suppression),
//! 3. lets each scheduler unit pick one ready warp (policy from
//!    [`grs_core::sched`]) and issues its next instruction, subject to one
//!    global-memory and one scratchpad instruction per SM per cycle
//!    (structural ports),
//! 4. accounts the cycle as productive, *stall* (something was blocked by a
//!    lock/throttle/port) or *idle* (everything ready-less was waiting on
//!    latency or barriers) — the paper's Fig. 9(c,d) split.
//!
//! ## Incremental readiness
//!
//! The scan is incremental: each warp slot carries a `SlotScan` state and
//! the cached [`WarpView`] from its last evaluation. A warp blocked purely on
//! conditions that only a writeback drain or an issue on this SM can change —
//! scoreboard hazard, exit drain, barrier wait — is *stable*: its cached view
//! remains valid and the reference scan would produce no side effects for it,
//! so it is skipped until something dirties it. Warps whose evaluation has
//! per-cycle side effects or same-cycle dependencies (ready, lock busy-wait,
//! throttle gating, MSHR backpressure) are *volatile* and re-evaluated every
//! cycle, reproducing the reference side-effect sequence (stat counters, RNG
//! draws) in slot order. Structural changes (block launch/retire) rebuild the
//! whole view vector, which otherwise keeps the exact composition the
//! schedulers saw in the reference implementation.
//!
//! ## Fast-forward support
//!
//! [`Sm::step`] reports whether the cycle was *quiescent* — zero issues, no
//! stall reason, and no volatile warp, i.e. a cycle whose outcome is fully
//! determined until the next writeback drains. [`Sm::next_wake`] exposes that
//! drain cycle (the timing wheel's minimum); [`crate::gpu::Gpu::run`] jumps
//! the clock when every SM is quiescent and credits the skipped span through
//! [`Sm::credit_skipped`], preserving the idle/empty split bit for bit.

use grs_core::{
    DynThrottle, LatencyConfig, LaunchPlan, RegAccess, RegPairLocks, Scheduler, SchedulerKind,
    SmemPairLock, WarpClass, WarpView,
};
use grs_isa::Op;

use crate::block::{pairing_of_slot, Block, PairLocks, Pairing};
use crate::cache::Cache;
use crate::dispatch::Dispatcher;
use crate::kinfo::KernelInfo;
use crate::mem::{generate_addresses, GateBlock, MemGate, SharedMem};
use crate::stats::SmStats;
use crate::telemetry::{SmTelemetry, StallReason, TelemetryConfig, TelemetryEvent};
use crate::warp::{Warp, NO_REG};
use crate::wheel::TimingWheel;

/// Payload of one completion event on the SM's timing wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Target warp slot.
    pub slot: u32,
    /// Register to clear ([`NO_REG`] for none); unused by `MemTxn` events,
    /// whose register lives in the warp's pending-group table.
    pub reg: u16,
    /// What completed.
    pub kind: WbKind,
}

/// Kind of completion a [`Writeback`] delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbKind {
    /// An ALU/SFU/scratchpad result.
    Alu,
    /// A whole global-memory instruction (functional memory model: one
    /// event at the max transaction latency).
    MemInstr,
    /// One transaction of pending-group `.0` (event memory model: the group
    /// coalesces its transactions into a single warp wake-up on the last).
    MemTxn(u16),
}

/// Scan bookkeeping for one warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotScan {
    /// No live warp in the slot.
    Vacant,
    /// State changed since the last evaluation; re-evaluate once.
    Dirty,
    /// Blocked on conditions only a drain or an SM-local issue can change
    /// (hazard, exit drain, barrier): cached view valid, no per-cycle side
    /// effects. Skippable.
    Stable,
    /// Re-evaluate every cycle: ready, lock-blocked, throttle-gated or
    /// MSHR-full — evaluation has per-cycle side effects (stat counters,
    /// RNG draws) or can change without time passing.
    Volatile,
    /// Blocked solely by event-memory-model back-pressure ([`MemGate`]).
    /// Re-evaluated every stepped cycle (the per-cycle block counters are
    /// side effects), but — unlike [`SlotScan::Volatile`] — it does not
    /// prevent the SM from sleeping: the block can only end at a capacity
    /// release, whose cycle the memory system knows, and the skipped span's
    /// accounting is credited in closed form ([`Sm::credit_gated`]).
    Gated,
}

/// How a warp's evaluation left it blocked, as the scan summary needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Not blocked (ready, or waiting without stalling).
    No,
    /// Pipeline stall (lock busy-wait, per-warp MSHR limit): never
    /// skippable.
    Hard,
    /// Event-model MSHR back-pressure: stall cycles, but sleepable.
    GateMshr,
    /// Event-model DRAM-queue back-pressure: stall cycles, but sleepable.
    GateDram,
}

/// Aggregate outcome of one readiness scan.
#[derive(Debug, Clone, Copy)]
struct ScanSummary {
    any_live: bool,
    any_stall: bool,
    any_volatile: bool,
    any_ready: bool,
    /// Warps blocked by the memory gate this cycle (MSHR, DRAM queue).
    gate_mshr: u32,
    gate_dram: u32,
}

impl ScanSummary {
    #[inline]
    fn note(&mut self, view: &WarpView, state: SlotScan, blocked: Blocked) {
        match blocked {
            Blocked::No => {}
            Blocked::Hard => self.any_stall = true,
            Blocked::GateMshr => self.gate_mshr += 1,
            Blocked::GateDram => self.gate_dram += 1,
        }
        self.any_volatile |= state == SlotScan::Volatile;
        self.any_ready |= view.ready;
    }

    /// Any warp blocked by the memory gate?
    #[inline]
    fn any_gated(&self) -> bool {
        self.gate_mshr + self.gate_dram > 0
    }
}

/// Static per-run SM mode flags.
#[derive(Debug, Clone, Copy)]
pub struct SmMode {
    /// Register (true) or scratchpad (false) pair locks for shared slots.
    pub register_sharing: bool,
    /// Event-engine incremental scan (true) or the per-cycle reference scan
    /// (false; see [`Sm`] field docs).
    pub incremental: bool,
    /// Telemetry recording for this SM (`None` = fully disabled; see
    /// [`crate::telemetry`]).
    pub telemetry: Option<TelemetryConfig>,
}

/// What one [`Sm::step`] call did, as the fast-forward engine needs it.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Did the SM hold any live (unfinished) warp this cycle?
    pub live: bool,
    /// Zero issues, no stall reason, no volatile warp: nothing on this SM
    /// can change before its next writeback drains.
    pub quiescent: bool,
    /// Like `quiescent`, except ≥1 warp is blocked by event-memory-model
    /// back-pressure: the SM may sleep, but it must also wake on the next
    /// MSHR/DRAM-queue release and the skipped span counts as *stall*
    /// cycles, credited by [`Sm::credit_gated`]. Mutually exclusive with
    /// `quiescent`.
    pub gated: bool,
    /// Did the SM issue at least one instruction this cycle? The
    /// forward-progress watchdog treats issues as progress even when they
    /// schedule no wheel event (barriers, branches, scratchpad stores,
    /// exits), so this feeds its watermark directly.
    pub issued: bool,
}

/// One streaming multiprocessor.
#[derive(Debug, Clone)]
pub struct Sm {
    /// SM index (SM0 is the throttle reference).
    pub id: usize,
    /// L1 data cache.
    pub l1: Cache,
    /// Resident blocks by slot.
    pub blocks: Vec<Option<Block>>,
    /// Warp contexts: block slot `b` owns warp slots
    /// `b*warps_per_block ..= (b+1)*warps_per_block - 1`.
    pub warps: Vec<Option<Warp>>,
    /// Pair-lock state, one entry per shared pair of the launch plan.
    pub pairs: Vec<PairLocks>,
    /// The launch plan this SM was configured with.
    pub plan: LaunchPlan,
    /// Statistics.
    pub stats: SmStats,
    sched: Scheduler,
    units: usize,
    next_dyn_id: u64,
    writebacks: TimingWheel<Writeback>,
    // Incremental-scan state.
    scan_state: Vec<SlotScan>,
    view_pos: Vec<u32>,
    live_warp_count: u32,
    structural: bool,
    /// Gate-blocked warp counts `(mshr, dram)` from the latest scan, kept
    /// for closed-form crediting of a gated sleep span.
    last_gate_blocks: (u32, u32),
    /// With `incremental` off (the `fast_forward: false` reference mode)
    /// every scan rebuilds every view from scratch and ready-less cycles
    /// still walk the scheduler units — the seed's exact per-cycle
    /// behaviour, so the equivalence suite genuinely diffs the incremental
    /// engine (dirty tracking, idle shortcut) against it.
    incremental: bool,
    /// Telemetry recording state (`None` unless tracing is on). Boxed so the
    /// disabled case costs one pointer; cloned with the SM, so snapshots,
    /// restores and shard hand-offs carry the buffers automatically.
    telemetry: Option<Box<SmTelemetry>>,
    /// Current stall reason per warp slot (0 = none, 1 = scoreboard,
    /// 2 = barrier, 3 = memory gate), maintained by [`Sm::set_reason`] so
    /// reason changes are edge-triggered events and the counts below stay
    /// incremental (never recomputed — that is what keeps them identical
    /// between the per-cycle and the incremental scan).
    slot_reason: Vec<u8>,
    /// Live slots currently scoreboard-blocked (reason 1).
    n_hazard: u32,
    /// Live slots currently barrier-parked (reason 2).
    n_barrier: u32,
    // per-cycle scratch, reused to avoid allocation
    views: Vec<WarpView>,
    addr_buf: Vec<u64>,
    wb_scratch: Vec<(u64, Writeback)>,
}

const NO_VIEW: u32 = u32::MAX;

impl Sm {
    /// Build an SM for one run. `mode.incremental` selects the event-engine
    /// scan (see the module docs); off reproduces the per-cycle reference.
    pub fn new(
        id: usize,
        plan: LaunchPlan,
        kinfo: &KernelInfo,
        sched_kind: SchedulerKind,
        units: usize,
        l1: Cache,
        mode: SmMode,
    ) -> Self {
        let slots = plan.max_blocks as usize;
        let wpb = kinfo.warps_per_block as usize;
        let pairs = (0..plan.shared_pairs)
            .map(|_| {
                if mode.register_sharing {
                    PairLocks::Reg(RegPairLocks::new(wpb))
                } else {
                    PairLocks::Smem(SmemPairLock::new())
                }
            })
            .collect();
        Sm {
            id,
            l1,
            blocks: vec![None; slots],
            warps: vec![None; slots * wpb],
            pairs,
            plan,
            stats: SmStats::default(),
            sched: sched_kind.build(slots * wpb, units),
            units,
            next_dyn_id: 0,
            writebacks: TimingWheel::new(),
            scan_state: vec![SlotScan::Vacant; slots * wpb],
            view_pos: vec![NO_VIEW; slots * wpb],
            live_warp_count: 0,
            structural: true,
            last_gate_blocks: (0, 0),
            incremental: mode.incremental,
            telemetry: mode.telemetry.map(|c| Box::new(SmTelemetry::new(&c))),
            slot_reason: vec![0; slots * wpb],
            n_hazard: 0,
            n_barrier: 0,
            views: Vec::with_capacity(slots * wpb),
            addr_buf: Vec::with_capacity(32),
            wb_scratch: Vec::with_capacity(32),
        }
    }

    /// Number of blocks currently resident.
    pub fn live_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u32
    }

    /// Does any slot lack a block?
    pub fn has_free_slot(&self) -> bool {
        self.blocks.iter().any(|b| b.is_none())
    }

    /// Does the SM hold any live (unfinished) warp?
    pub fn has_live_warps(&self) -> bool {
        self.live_warp_count > 0
    }

    /// Earliest cycle at which a pending writeback will drain, if any — the
    /// only future event that can change a quiescent SM's state.
    pub fn next_wake(&self) -> Option<u64> {
        self.writebacks.next_due()
    }

    /// Latest completion cycle ever scheduled on this SM's writeback wheel
    /// (0 if none yet) — one input to the forward-progress watchdog's
    /// watermark. Engine-invariant: every engine pushes the same writebacks
    /// at the same due cycles.
    pub fn latest_writeback(&self) -> u64 {
        self.writebacks.latest_scheduled()
    }

    /// Gate-blocked warp counts `(mshr, dram)` from the latest readiness
    /// scan — surfaced in the watchdog's [`crate::supervise::StallDiagnosis`].
    pub fn gate_block_counts(&self) -> (u32, u32) {
        self.last_gate_blocks
    }

    /// Credit the skipped sleep span `[since, now)` with exactly the
    /// accounting the per-cycle loop would have produced for a quiescent SM:
    /// idle when live warps wait on latency, empty when no work is resident.
    /// The per-reason breakdown is frozen for the whole span (no drain can
    /// occur inside it, so no warp's stall reason can change), and sample
    /// rows falling inside the span are emitted piecewise at their exact
    /// boundaries — a row at cycle `b` sees precisely the counters the
    /// per-cycle loop would have accumulated through cycle `b - 1`.
    pub fn credit_skipped(&mut self, since: u64, now: u64) {
        if now <= since {
            return;
        }
        if let Some(mut t) = self.telemetry.take() {
            t.record(
                since,
                TelemetryEvent::SleepSpan {
                    until: now,
                    gated: false,
                },
            );
            let lb = self.live_blocks();
            let lw = self.live_warp_count;
            let mut cur = since;
            // Strictly-inside boundaries only: a boundary at `now` is
            // emitted by the step that follows the wake (mirroring the
            // per-cycle loop), and a run ending at `now` never emits it.
            while t.next_sample < now {
                let b = t.next_sample;
                self.credit_idle_span(b - cur);
                t.emit_row(self.id as u32, &self.stats, lb, lw);
                cur = b;
            }
            self.credit_idle_span(now - cur);
            self.telemetry = Some(t);
        } else {
            self.credit_idle_span(now - since);
        }
    }

    fn credit_idle_span(&mut self, span: u64) {
        if span == 0 {
            return;
        }
        if self.live_warp_count > 0 {
            self.stats.idle_cycles += span;
            if self.n_hazard > 0 {
                self.stats.stall_scoreboard_cycles += span;
            } else if self.n_barrier > 0 {
                self.stats.stall_barrier_cycles += span;
            } else {
                self.stats.stall_no_ready_cycles += span;
            }
        } else {
            self.stats.empty_cycles += span;
        }
    }

    /// Credit the sleep span `[since, now)` slept under memory back-pressure
    /// ([`StepOutcome::gated`]) in closed form: each skipped cycle would have
    /// counted one pipeline-stall cycle and re-blocked the same warps (the
    /// gate can only open at a capacity release, which bounds the span), so
    /// the per-cycle counters scale linearly with the span. Sample rows
    /// inside the span are emitted piecewise like [`Sm::credit_skipped`].
    pub fn credit_gated(&mut self, since: u64, now: u64) {
        if now <= since {
            return;
        }
        if let Some(mut t) = self.telemetry.take() {
            t.record(
                since,
                TelemetryEvent::SleepSpan {
                    until: now,
                    gated: true,
                },
            );
            let lb = self.live_blocks();
            let lw = self.live_warp_count;
            let mut cur = since;
            // Strictly-inside boundaries only, as in `credit_skipped`.
            while t.next_sample < now {
                let b = t.next_sample;
                self.credit_gated_span(b - cur);
                t.emit_row(self.id as u32, &self.stats, lb, lw);
                cur = b;
            }
            self.credit_gated_span(now - cur);
            self.telemetry = Some(t);
        } else {
            self.credit_gated_span(now - since);
        }
    }

    fn credit_gated_span(&mut self, span: u64) {
        self.stats.stall_cycles += span;
        self.stats.stall_mem_gate_cycles += span;
        self.stats.mshr_full_stalls += span * u64::from(self.last_gate_blocks.0);
        self.stats.dram_queue_full_stalls += span * u64::from(self.last_gate_blocks.1);
    }

    /// Update `slot`'s stall reason (0 none, 1 scoreboard, 2 barrier,
    /// 3 memory gate), keeping the incremental reason counts and recording
    /// an edge-triggered [`TelemetryEvent::WarpStall`] on a change into a
    /// non-ready reason. Reasons only change when the slot is re-evaluated,
    /// and every engine re-evaluates a slot at the same cycles, so both the
    /// counts and the event stream are engine-invariant.
    #[inline]
    fn set_reason(&mut self, slot: usize, reason: u8, now: u64) {
        let old = self.slot_reason[slot];
        if old == reason {
            return;
        }
        match old {
            1 => self.n_hazard -= 1,
            2 => self.n_barrier -= 1,
            _ => {}
        }
        match reason {
            1 => self.n_hazard += 1,
            2 => self.n_barrier += 1,
            _ => {}
        }
        self.slot_reason[slot] = reason;
        if reason != 0 {
            if let Some(t) = self.telemetry.as_deref_mut() {
                let r = match reason {
                    1 => StallReason::Scoreboard,
                    2 => StallReason::Barrier,
                    _ => StallReason::MemGate,
                };
                t.record(
                    now,
                    TelemetryEvent::WarpStall {
                        slot: slot as u32,
                        reason: r,
                    },
                );
            }
        }
    }

    /// Take this SM's telemetry state for end-of-run assembly.
    pub(crate) fn take_telemetry(&mut self) -> Option<SmTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// Record an engine-level event on this SM's track (used by the sharded
    /// engine to stamp epoch commits). No-op when tracing is off.
    pub(crate) fn record_event(&mut self, cycle: u64, event: TelemetryEvent) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record(cycle, event);
        }
    }

    /// Launch grid block `grid_id` into the first free slot at cycle `now`.
    /// Panics if no slot is free (callers check [`Self::has_free_slot`]).
    pub fn launch_block(&mut self, grid_id: u32, kinfo: &KernelInfo, now: u64) {
        let slot = self
            .blocks
            .iter()
            .position(|b| b.is_none())
            .expect("launch_block requires a free slot");
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record(
                now,
                TelemetryEvent::BlockLaunch {
                    grid_id,
                    slot: slot as u32,
                },
            );
        }
        let wpb = kinfo.warps_per_block;
        self.blocks[slot] = Some(Block {
            grid_id,
            live_warps: wpb,
            at_barrier: 0,
            pairing: pairing_of_slot(slot as u32, self.plan.unshared),
        });
        for w in 0..wpb {
            let dyn_id = self.next_dyn_id;
            self.next_dyn_id += 1;
            self.warps[slot * wpb as usize + w as usize] = Some(Warp::new(
                dyn_id,
                slot as u32,
                w,
                kinfo.threads_in_warp[w as usize],
                kinfo.num_loops,
                grid_id,
            ));
        }
        self.live_warp_count += wpb;
        self.structural = true;
        self.stats.max_resident_blocks = self.stats.max_resident_blocks.max(self.live_blocks());
    }

    /// Would stepping this SM at `now` possibly touch cross-SM shared state
    /// (the shared memory system or the grid dispatcher)? This is the
    /// **park predicate** of the sharded epoch engine
    /// ([`crate::shard`]): a shard free-runs an SM against a stub memory
    /// system only while this returns false, and hands it to the canonical
    /// commit phase the moment it returns true.
    ///
    /// The check drains due writebacks first (idempotent — the eventual
    /// [`Self::step`] at `now` re-drains as a no-op) and then inspects every
    /// live warp side-effect-free. Two instruction classes interact:
    ///
    /// * a **global-memory candidate** — not at a barrier, no scoreboard
    ///   hazard, under the per-warp MSHR limit: its evaluation consults the
    ///   issue gate (with per-cycle stall counters and, if it issues, real
    ///   L2/DRAM traffic and throttle RNG draws);
    /// * a **ready exit** — scoreboard and memory drained: issuing it can
    ///   complete the block and pull the next one from the dispatcher.
    ///
    /// Everything else (ALU, scratchpad, barriers, branches, pair-lock
    /// traffic, warps blocked on hazards/barriers/`max_pending`) reads and
    /// writes SM-local state only, so those cycles commute with other SMs'
    /// commits. The predicate is deliberately conservative: parking a
    /// non-interacting cycle is only a performance loss, never a
    /// correctness one.
    pub fn wants_commit(&mut self, now: u64, kinfo: &KernelInfo, max_pending: u32) -> bool {
        self.drain_writebacks(now);
        self.warps.iter().flatten().any(|w| {
            if w.finished || w.at_barrier {
                return false;
            }
            let meta = &kinfo.meta[w.pc as usize];
            if meta.is_global_mem() {
                !w.has_hazard(meta.op_mask) && w.outstanding_mem < max_pending
            } else {
                meta.is_exit() && w.outstanding_mem == 0 && w.pending_regs == 0
            }
        })
    }

    /// Advance one cycle.
    pub fn step(
        &mut self,
        now: u64,
        kinfo: &KernelInfo,
        lat: &LatencyConfig,
        shared: &mut SharedMem,
        throttle: &mut DynThrottle,
        dispatcher: &mut Dispatcher,
    ) -> StepOutcome {
        // Same-cycle tie-break (load-bearing for gated-sleep wake-ups and
        // the sharded commit order, pinned by
        // `capacity_release_is_visible_exactly_at_its_cycle`): the SM's own
        // writebacks drain FIRST, then capacity releases due at `now` settle,
        // and only then is the gate read — so an SM woken at `now` by a
        // release observes both its drained scoreboard and the freed
        // capacity in the same scan.
        if let Some(mut t) = self.telemetry.take() {
            // Sample boundaries due at or before this cycle: a row at `b`
            // reflects the state at the start of cycle `b`, before the
            // cycle's drains, scans and issues (the crediting paths emit
            // in-span boundaries themselves, so at most one is due here in
            // the per-cycle engine and none after a credited wake).
            if t.next_sample <= now {
                let lb = self.live_blocks();
                let lw = self.live_warp_count;
                while t.next_sample <= now {
                    t.emit_row(self.id as u32, &self.stats, lb, lw);
                }
            }
            self.telemetry = Some(t);
        }
        self.drain_writebacks(now);
        shared.advance_to(now); // event model: settle capacity releases
        let max_pending = shared.cfg.max_pending_per_warp;
        let gate = shared.issue_gate();
        let scan = self.scan_readiness(now, kinfo, throttle, max_pending, gate);

        let mut issued = 0u32;
        let mut port_conflict = false;
        let mut global_port_used = false;
        let mut smem_port_used = false;
        if scan.any_ready || !self.incremental {
            for unit in 0..self.units {
                let Some(slot) = self.sched.pick(unit, self.units, &self.views) else {
                    continue;
                };
                let pc = self.warps[slot].as_ref().expect("picked warp exists").pc as usize;
                let meta = &kinfo.meta[pc];
                // Structural ports: one global-memory and one scratchpad
                // instruction per SM per cycle.
                if meta.is_global_mem() {
                    if global_port_used {
                        port_conflict = true;
                        continue;
                    }
                    global_port_used = true;
                } else if meta.is_shared_mem() {
                    if smem_port_used {
                        port_conflict = true;
                        continue;
                    }
                    smem_port_used = true;
                }
                if self.issue(slot, now, kinfo, lat, shared, dispatcher) {
                    issued += 1;
                } else {
                    port_conflict = true; // same-cycle lock race: counts as stall
                }
            }
        } else {
            // No unit can pick anything; apply the scheduler-state
            // transition an all-unready pick round would have made and skip
            // the per-unit view walks.
            self.sched.note_idle_cycle();
        }

        if issued == 0 {
            if scan.any_stall || port_conflict || scan.any_gated() {
                // Every pipeline-stall cycle is caused by the memory system
                // or a structural conflict, so the breakdown attributes it
                // to the mem-gate bucket wholesale.
                self.stats.stall_cycles += 1;
                self.stats.stall_mem_gate_cycles += 1;
            } else if scan.any_live {
                self.stats.idle_cycles += 1;
                if self.n_hazard > 0 {
                    self.stats.stall_scoreboard_cycles += 1;
                } else if self.n_barrier > 0 {
                    self.stats.stall_barrier_cycles += 1;
                } else {
                    self.stats.stall_no_ready_cycles += 1;
                }
            } else {
                self.stats.empty_cycles += 1;
            }
            if scan.any_live {
                // The Sec. IV-C monitor compares per-SM lost cycles; both
                // pipeline stalls and ready-less (memory-wait) cycles are
                // symptoms of the interference it throttles.
                throttle.note_stall(self.id);
            }
        }

        self.last_gate_blocks = (scan.gate_mshr, scan.gate_dram);
        let sleepable = issued == 0 && !scan.any_stall && !port_conflict && !scan.any_volatile;
        StepOutcome {
            live: scan.any_live,
            quiescent: sleepable && !scan.any_gated(),
            gated: sleepable && scan.any_gated(),
            issued: issued > 0,
        }
    }

    fn drain_writebacks(&mut self, now: u64) {
        self.writebacks.drain_due_into(now, &mut self.wb_scratch);
        for &(_, wb) in &self.wb_scratch {
            let slot = wb.slot as usize;
            if let Some(w) = self.warps[slot].as_mut() {
                match wb.kind {
                    WbKind::Alu => w.clear_pending(wb.reg),
                    WbKind::MemInstr => {
                        w.clear_pending(wb.reg);
                        w.outstanding_mem = w.outstanding_mem.saturating_sub(1);
                    }
                    // Intermediate transactions of a group dirty the slot
                    // harmlessly (a still-blocked warp re-evaluates to the
                    // same view with no side effects); the group's last
                    // transaction is the real wake-up.
                    WbKind::MemTxn(group) => {
                        w.mem_txn_done(group);
                    }
                }
                if self.scan_state[slot] == SlotScan::Stable {
                    self.scan_state[slot] = SlotScan::Dirty;
                }
            }
        }
    }

    #[inline]
    fn mark_slot_dirty(&mut self, slot: usize) {
        if self.scan_state[slot] == SlotScan::Stable {
            self.scan_state[slot] = SlotScan::Dirty;
        }
    }

    /// Invalidate every warp of `block_slot` (barrier release, lock/owner
    /// transitions of the block's pair).
    fn mark_block_dirty(&mut self, block_slot: u32, warps_per_block: u32) {
        let base = block_slot as usize * warps_per_block as usize;
        for slot in base..base + warps_per_block as usize {
            self.mark_slot_dirty(slot);
        }
    }

    /// Invalidate both blocks of `pair` — a lock grant may have changed the
    /// pair's owner, which feeds every cached view's [`WarpClass`].
    fn mark_pair_dirty(&mut self, pair: u32, warps_per_block: u32) {
        let a = self.plan.unshared + 2 * pair;
        self.mark_block_dirty(a, warps_per_block);
        self.mark_block_dirty(a + 1, warps_per_block);
    }

    /// Scan resident warps, refreshing the scheduler view. Stable slots are
    /// skipped; their cached views are still exactly what a full scan would
    /// produce, with the same (empty) side-effect set. Ready warps are
    /// always volatile, so `any_ready` only needs the re-evaluated slots.
    fn scan_readiness(
        &mut self,
        now: u64,
        kinfo: &KernelInfo,
        throttle: &mut DynThrottle,
        max_pending: u32,
        gate: MemGate,
    ) -> ScanSummary {
        let mut summary = ScanSummary {
            any_live: self.live_warp_count > 0,
            any_stall: false,
            any_volatile: false,
            any_ready: false,
            gate_mshr: 0,
            gate_dram: 0,
        };
        if self.structural || !self.incremental {
            self.structural = false;
            self.views.clear();
            for slot in 0..self.warps.len() {
                let live = self.warps[slot].as_ref().is_some_and(|w| !w.finished);
                if !live {
                    self.scan_state[slot] = SlotScan::Vacant;
                    self.view_pos[slot] = NO_VIEW;
                    self.set_reason(slot, 0, now);
                    continue;
                }
                let (view, state, blocked) =
                    self.eval_warp(slot, now, kinfo, throttle, max_pending, gate);
                summary.note(&view, state, blocked);
                self.scan_state[slot] = state;
                self.view_pos[slot] = self.views.len() as u32;
                self.views.push(view);
            }
        } else {
            for slot in 0..self.warps.len() {
                match self.scan_state[slot] {
                    SlotScan::Vacant | SlotScan::Stable => {}
                    SlotScan::Dirty | SlotScan::Volatile | SlotScan::Gated => {
                        let (view, state, blocked) =
                            self.eval_warp(slot, now, kinfo, throttle, max_pending, gate);
                        summary.note(&view, state, blocked);
                        self.scan_state[slot] = state;
                        self.views[self.view_pos[slot] as usize] = view;
                    }
                }
            }
        }
        summary
    }

    /// Evaluate one live warp exactly as the reference per-cycle scan would:
    /// same checks, same order, same side effects (lock-retry and throttle
    /// counters, throttle RNG draws).
    fn eval_warp(
        &mut self,
        slot: usize,
        now: u64,
        kinfo: &KernelInfo,
        throttle: &mut DynThrottle,
        max_pending: u32,
        gate: MemGate,
    ) -> (WarpView, SlotScan, Blocked) {
        let w = self.warps[slot].as_ref().expect("evaluating a live warp");
        let block = self.blocks[w.block_slot as usize]
            .as_ref()
            .expect("live warp belongs to a live block");
        // OWF class (paper Sec. IV-A). Ownership only exists once a
        // block waits on shared resources held by its partner: a shared
        // block whose partner slot is empty, or whose pair has no
        // determined owner yet, behaves like an unshared block.
        let class = match block.pairing {
            Pairing::Unshared => WarpClass::Unshared,
            Pairing::Paired { pair, member } => {
                let base = self.plan.unshared + 2 * pair;
                let partner_slot = base
                    + if member == grs_core::PairMember::A {
                        1
                    } else {
                        0
                    };
                let partner_present = self.blocks[partner_slot as usize].is_some();
                match self.pairs[pair as usize].owner() {
                    _ if !partner_present => WarpClass::Unshared,
                    Some(m) if m == member => WarpClass::Owner,
                    Some(_) => WarpClass::NonOwner,
                    None => WarpClass::Unshared,
                }
            }
        };

        let mut ready = false;
        let mut blocked = Blocked::No;
        let mut state = SlotScan::Stable;
        // Stall reason for the breakdown counters: barrier unless the
        // !at_barrier branch refines it below.
        let mut reason = 2u8;
        if !w.at_barrier {
            let meta = &kinfo.meta[w.pc as usize];
            let hazard = w.has_hazard(meta.op_mask);
            let drain_for_exit = meta.is_exit() && (w.outstanding_mem > 0 || w.pending_regs != 0);
            let mshr_full = meta.is_global_mem() && w.outstanding_mem >= max_pending;
            if mshr_full {
                // Structural congestion: the warp has work but the
                // memory pipeline cannot accept it — a *pipeline stall*
                // in the paper's Sec. VI-B accounting (and the signal
                // the Sec. IV-C throttle monitors).
                blocked = Blocked::Hard;
                state = SlotScan::Volatile;
            }
            let mut gated = false;
            if !hazard && !drain_for_exit && !mshr_full {
                // Event-model issue gate: the shared memory system cannot
                // take this instruction's transactions. Same stall class as
                // `mshr_full`, but sleepable (see `SlotScan::Gated`).
                match gate.blocks(meta) {
                    Some(GateBlock::Mshr) => {
                        blocked = Blocked::GateMshr;
                        self.stats.mshr_full_stalls += 1;
                        gated = true;
                    }
                    Some(GateBlock::DramQueue) => {
                        blocked = Blocked::GateDram;
                        self.stats.dram_queue_full_stalls += 1;
                        gated = true;
                    }
                    None => {}
                }
                if gated {
                    state = SlotScan::Gated;
                }
            }
            if !hazard && !drain_for_exit && !mshr_full && !gated {
                state = SlotScan::Volatile;
                ready = true;
                // Pair-lock busy-wait (Fig. 3 / Fig. 4 step (e)): the
                // warp is simply not ready; it retries next cycle.
                if let Pairing::Paired { pair, member } = block.pairing {
                    if meta.uses_shared_reg() {
                        if let PairLocks::Reg(l) = &self.pairs[pair as usize] {
                            if !l.can_access(member, w.warp_in_block as usize) {
                                ready = false;
                                self.stats.lock_retries += 1;
                            }
                        }
                    }
                    if ready && meta.uses_shared_smem() {
                        if let PairLocks::Smem(l) = &self.pairs[pair as usize] {
                            if !l.can_access(member) {
                                ready = false;
                                self.stats.lock_retries += 1;
                            }
                        }
                    }
                }
                // Dynamic warp-execution throttle (paper Sec. IV-C):
                // intentional suppression, not a pipeline stall.
                if ready
                    && meta.is_global_mem()
                    && class == WarpClass::NonOwner
                    && throttle.enabled()
                    && !throttle.allow(self.id)
                {
                    ready = false;
                    self.stats.throttled_issues += 1;
                }
            }
            // Scoreboard beats the memory gate when both hold; everything
            // else (exit drain, lock busy-wait, throttle, ready) is "none".
            reason = if hazard {
                1
            } else if mshr_full || gated {
                3
            } else {
                0
            };
        }
        let view = WarpView {
            slot,
            dynamic_id: w.dynamic_id,
            class,
            ready,
        };
        self.set_reason(slot, reason, now);
        (view, state, blocked)
    }

    /// Issue the next instruction of the warp in `slot`. Returns false only
    /// when a same-cycle lock race invalidated the readiness decision.
    fn issue(
        &mut self,
        slot: usize,
        now: u64,
        kinfo: &KernelInfo,
        lat: &LatencyConfig,
        shared: &mut SharedMem,
        dispatcher: &mut Dispatcher,
    ) -> bool {
        let (pc, block_slot, warp_in_block, pairing) = {
            let w = self.warps[slot].as_ref().expect("issuing a live warp");
            let b = self.blocks[w.block_slot as usize]
                .as_ref()
                .expect("live block");
            (w.pc as usize, w.block_slot, w.warp_in_block, b.pairing)
        };
        let meta = kinfo.meta[pc];

        // Re-check the event-model issue gate: a peer scheduler unit's issue
        // this cycle may have consumed the capacity the readiness scan saw.
        // Nothing has been mutated yet, so bailing out is side-effect-free
        // (like a lost same-cycle lock race below).
        match shared.issue_gate().blocks(&meta) {
            Some(GateBlock::Mshr) => {
                self.stats.mshr_full_stalls += 1;
                return false;
            }
            Some(GateBlock::DramQueue) => {
                self.stats.dram_queue_full_stalls += 1;
                return false;
            }
            None => {}
        }

        // Acquire pair locks for real (a peer scheduler unit may have taken
        // them since the readiness scan). A grant may flip the pair's lock
        // and owner state, so cached views of both blocks are invalidated;
        // a denial mutates nothing.
        if let Pairing::Paired { pair, member } = pairing {
            if meta.uses_shared_reg() {
                if let PairLocks::Reg(l) = &mut self.pairs[pair as usize] {
                    if l.access_shared(member, warp_in_block as usize) == RegAccess::Blocked {
                        self.stats.lock_retries += 1;
                        return false;
                    }
                }
                self.mark_pair_dirty(pair, kinfo.warps_per_block);
            }
            if meta.uses_shared_smem() {
                if let PairLocks::Smem(l) = &mut self.pairs[pair as usize] {
                    if l.access_shared(member) == RegAccess::Blocked {
                        self.stats.lock_retries += 1;
                        return false;
                    }
                }
                self.mark_pair_dirty(pair, kinfo.warps_per_block);
            }
        }

        let threads;
        {
            let w = self.warps[slot].as_mut().expect("issuing a live warp");
            threads = w.threads;
            match meta.op {
                Op::IAlu => advance_alu(
                    w,
                    meta.dst,
                    now,
                    u64::from(lat.ialu),
                    slot,
                    &mut self.writebacks,
                ),
                Op::IMul => advance_alu(
                    w,
                    meta.dst,
                    now,
                    u64::from(lat.imul),
                    slot,
                    &mut self.writebacks,
                ),
                Op::FAdd | Op::FMul | Op::FFma => advance_alu(
                    w,
                    meta.dst,
                    now,
                    u64::from(lat.fp),
                    slot,
                    &mut self.writebacks,
                ),
                Op::Sfu => advance_alu(
                    w,
                    meta.dst,
                    now,
                    u64::from(lat.sfu),
                    slot,
                    &mut self.writebacks,
                ),
                Op::LdShared(_) => advance_alu(
                    w,
                    meta.dst,
                    now,
                    u64::from(lat.scratchpad),
                    slot,
                    &mut self.writebacks,
                ),
                Op::StShared(_) => {
                    w.pc += 1; // fire-and-forget scratchpad write
                }
                Op::LdGlobal(p) | Op::StGlobal(p) => {
                    self.addr_buf.clear();
                    let grid_id = self.blocks[block_slot as usize].as_ref().unwrap().grid_id;
                    generate_addresses(p, w, grid_id, &mut self.addr_buf);
                    let is_load = matches!(meta.op, Op::LdGlobal(_));
                    let reg = if is_load {
                        if meta.dst != NO_REG {
                            w.mark_pending(meta.dst);
                        }
                        meta.dst
                    } else {
                        NO_REG
                    };
                    w.outstanding_mem += 1;
                    if shared.is_event() {
                        // Event model: each transaction runs the partition
                        // pipeline and schedules its own completion; the
                        // group coalesces them into one warp wake-up.
                        let group = w.alloc_mem_group(reg, self.addr_buf.len() as u32);
                        for &addr in &self.addr_buf {
                            let done = shared.event_access(&mut self.l1, addr, now, is_load);
                            self.writebacks.push(
                                done,
                                Writeback {
                                    slot: slot as u32,
                                    reg: NO_REG,
                                    kind: WbKind::MemTxn(group),
                                },
                            );
                        }
                    } else {
                        // Functional model: one completion at the slowest
                        // transaction's issue-time latency.
                        let mut max_lat = 0u64;
                        for &addr in &self.addr_buf {
                            let l = if is_load {
                                shared.load(&mut self.l1, addr, now)
                            } else {
                                shared.store(&mut self.l1, addr, now)
                            };
                            max_lat = max_lat.max(l);
                        }
                        self.writebacks.push(
                            now + max_lat,
                            Writeback {
                                slot: slot as u32,
                                reg,
                                kind: WbKind::MemInstr,
                            },
                        );
                    }
                    w.pc += 1;
                }
                Op::Barrier => {
                    w.at_barrier = true;
                    w.pc += 1;
                    let block = self.blocks[block_slot as usize].as_mut().unwrap();
                    block.at_barrier += 1;
                    if block.at_barrier == block.live_warps {
                        release_barrier(&mut self.warps, block_slot, kinfo.warps_per_block);
                        self.blocks[block_slot as usize]
                            .as_mut()
                            .unwrap()
                            .at_barrier = 0;
                        self.mark_block_dirty(block_slot, kinfo.warps_per_block);
                    }
                }
                Op::BranchBack {
                    target,
                    trips,
                    loop_id,
                } => {
                    let id = loop_id as usize;
                    if w.loop_init & (1 << id) == 0 {
                        w.loop_counters[id] = trips;
                        w.loop_init |= 1 << id;
                    }
                    if w.loop_counters[id] > 0 {
                        w.loop_counters[id] -= 1;
                        w.pc = u32::from(target);
                    } else {
                        w.loop_init &= !(1 << id);
                        w.pc += 1;
                    }
                }
                Op::Exit => {
                    w.finished = true;
                    self.live_warp_count -= 1;
                    self.retire_warp(block_slot, warp_in_block, pairing, kinfo, dispatcher, now);
                }
            }
        }

        self.stats.warp_instrs += 1;
        self.stats.thread_instrs += u64::from(threads);
        true
    }

    /// Handle a warp retirement: release its register pair lock, resolve
    /// barriers it is no longer part of, and complete the block when it was
    /// the last warp. Retirement changes the view composition (and possibly
    /// lock/owner state), so the next scan rebuilds from scratch.
    fn retire_warp(
        &mut self,
        block_slot: u32,
        warp_in_block: u32,
        pairing: Pairing,
        kinfo: &KernelInfo,
        dispatcher: &mut Dispatcher,
        now: u64,
    ) {
        self.structural = true;
        if let Pairing::Paired { pair, member } = pairing {
            if let PairLocks::Reg(l) = &mut self.pairs[pair as usize] {
                l.warp_finished(member, warp_in_block as usize);
            }
        }
        let block = self.blocks[block_slot as usize]
            .as_mut()
            .expect("retiring into live block");
        block.live_warps -= 1;
        if block.live_warps == 0 {
            self.complete_block(block_slot, pairing, kinfo, dispatcher, now);
        } else if block.at_barrier > 0 && block.at_barrier == block.live_warps {
            // Remaining warps were all at the barrier; the exit releases it.
            release_barrier(&mut self.warps, block_slot, kinfo.warps_per_block);
            self.blocks[block_slot as usize]
                .as_mut()
                .unwrap()
                .at_barrier = 0;
        }
    }

    fn complete_block(
        &mut self,
        block_slot: u32,
        pairing: Pairing,
        kinfo: &KernelInfo,
        dispatcher: &mut Dispatcher,
        now: u64,
    ) {
        if let Pairing::Paired { pair, member } = pairing {
            self.pairs[pair as usize].block_completed(member);
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            let grid_id = self.blocks[block_slot as usize]
                .as_ref()
                .expect("completing a live block")
                .grid_id;
            t.record(
                now,
                TelemetryEvent::BlockRetire {
                    grid_id,
                    slot: block_slot,
                },
            );
        }
        self.stats.blocks_completed += 1;
        let wpb = kinfo.warps_per_block as usize;
        let base = block_slot as usize * wpb;
        for w in &mut self.warps[base..base + wpb] {
            debug_assert!(w.as_ref().map(|w| w.finished).unwrap_or(true));
            *w = None;
        }
        self.blocks[block_slot as usize] = None;
        // Refill immediately (paper Sec. IV: the replacement enters the pair
        // as the new non-owner).
        if let Some(gid) = dispatcher.next_block() {
            self.launch_block(gid, kinfo, now);
        }
    }
}

fn advance_alu(
    w: &mut Warp,
    dst: u16,
    now: u64,
    latency: u64,
    slot: usize,
    writebacks: &mut TimingWheel<Writeback>,
) {
    if dst != NO_REG {
        w.mark_pending(dst);
        writebacks.push(
            now + latency,
            Writeback {
                slot: slot as u32,
                reg: dst,
                kind: WbKind::Alu,
            },
        );
    }
    w.pc += 1;
}

fn release_barrier(warps: &mut [Option<Warp>], block_slot: u32, warps_per_block: u32) {
    let base = block_slot as usize * warps_per_block as usize;
    for w in warps[base..base + warps_per_block as usize]
        .iter_mut()
        .flatten()
    {
        w.at_barrier = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_core::{GpuConfig, ResourceKind, Threshold};
    use grs_isa::KernelBuilder;

    fn kinfo(regs: u32, threads: u32) -> KernelInfo {
        let k = KernelBuilder::new("t")
            .threads_per_block(threads)
            .regs_per_thread(regs)
            .grid_blocks(16)
            .ialu(4)
            .build();
        KernelInfo::new(k, None, Threshold::paper_default())
    }

    fn plan(unshared: u32, pairs: u32) -> LaunchPlan {
        LaunchPlan {
            unshared,
            shared_pairs: pairs,
            max_blocks: unshared + 2 * pairs,
            baseline_blocks: unshared + pairs,
            resource: ResourceKind::Registers,
        }
    }

    fn sm(ki: &KernelInfo, p: LaunchPlan) -> Sm {
        let cfg = GpuConfig::tiny();
        let l1 = Cache::new(
            u64::from(cfg.mem.l1_bytes),
            cfg.mem.l1_ways,
            u64::from(cfg.mem.line_bytes),
        );
        Sm::new(
            0,
            p,
            ki,
            SchedulerKind::Lrr,
            2,
            l1,
            SmMode {
                register_sharing: true,
                incremental: true,
                telemetry: None,
            },
        )
    }

    #[test]
    fn launch_fills_slots_and_counts_residency() {
        let ki = kinfo(8, 64);
        let mut s = sm(&ki, plan(3, 0));
        assert!(s.has_free_slot());
        s.launch_block(0, &ki, 0);
        s.launch_block(1, &ki, 0);
        assert_eq!(s.live_blocks(), 2);
        assert_eq!(s.stats.max_resident_blocks, 2);
        s.launch_block(2, &ki, 0);
        assert!(!s.has_free_slot());
    }

    #[test]
    fn whole_block_retires_and_slot_refills() {
        let ki = kinfo(8, 32);
        let cfg = GpuConfig::tiny();
        let mut s = sm(&ki, plan(1, 0));
        let mut shared = SharedMem::new(cfg.mem);
        let mut throttle = DynThrottle::disabled(1);
        let mut disp = Dispatcher::new(3);
        s.launch_block(disp.next_block().unwrap(), &ki, 0);
        let lat = cfg.lat;
        for cycle in 0..2000 {
            s.step(cycle, &ki, &lat, &mut shared, &mut throttle, &mut disp);
            if s.stats.blocks_completed == 3 && s.live_blocks() == 0 {
                break;
            }
        }
        assert_eq!(s.stats.blocks_completed, 3);
        assert_eq!(disp.remaining(), 0);
        // 5 dynamic warp instructions per block (4 ialu + exit) × 3 blocks.
        assert_eq!(s.stats.warp_instrs, 15);
        assert_eq!(s.stats.thread_instrs, 15 * 32);
    }

    #[test]
    fn barrier_joins_all_warps_of_a_block() {
        let k = KernelBuilder::new("barrier")
            .threads_per_block(64) // 2 warps
            .regs_per_thread(8)
            .grid_blocks(1)
            .ialu(1)
            .barrier()
            .ialu(1)
            .build();
        let ki = KernelInfo::new(k, None, Threshold::paper_default());
        let cfg = GpuConfig::tiny();
        let mut s = sm(&ki, plan(1, 0));
        let mut shared = SharedMem::new(cfg.mem);
        let mut throttle = DynThrottle::disabled(1);
        let mut disp = Dispatcher::new(1);
        s.launch_block(disp.next_block().unwrap(), &ki, 0);
        for cycle in 0..1000 {
            s.step(cycle, &ki, &cfg.lat, &mut shared, &mut throttle, &mut disp);
            if s.live_blocks() == 0 {
                break;
            }
        }
        assert_eq!(s.stats.blocks_completed, 1);
        // 2 warps × 4 instructions (ialu, barrier, ialu, exit).
        assert_eq!(s.stats.warp_instrs, 8);
    }

    #[test]
    fn quiescent_cycles_report_the_next_writeback() {
        // A single warp issues one ialu (latency 4) then hazards on its
        // result: the following cycles are quiescent with a wake at the
        // writeback, exactly what the fast-forward engine consumes.
        let k = KernelBuilder::new("dep")
            .threads_per_block(32)
            .regs_per_thread(8)
            .grid_blocks(1)
            .ialu(2) // dependent chain
            .build();
        let ki = KernelInfo::new(k, None, Threshold::paper_default());
        let cfg = GpuConfig::tiny();
        let mut s = sm(&ki, plan(1, 0));
        let mut shared = SharedMem::new(cfg.mem);
        let mut throttle = DynThrottle::disabled(1);
        let mut disp = Dispatcher::new(1);
        s.launch_block(disp.next_block().unwrap(), &ki, 0);
        let out0 = s.step(0, &ki, &cfg.lat, &mut shared, &mut throttle, &mut disp);
        assert!(!out0.quiescent, "cycle 0 issues");
        let out1 = s.step(1, &ki, &cfg.lat, &mut shared, &mut throttle, &mut disp);
        assert!(out1.quiescent, "cycle 1 hazards on the ialu result");
        assert!(out1.live);
        assert_eq!(s.next_wake(), Some(u64::from(cfg.lat.ialu)));
        assert_eq!(s.stats.idle_cycles, 1);
    }
}
