//! Cycle-level telemetry: structured event tracing and sampled timelines.
//!
//! The subsystem is gated by [`crate::RunConfig`]`::telemetry` and is
//! **zero-cost when disabled**: every recording site is behind an
//! `Option` that is `None` unless a [`TelemetryConfig`] was supplied, and
//! the hard contract (pinned by `tests/telemetry.rs`) is that enabling it
//! never perturbs `SimStats` — traced and untraced runs are bit-identical
//! across all schedulers, sharing modes, memory models, and engines.
//!
//! Events are appended to per-track ring buffers — one per SM, one for the
//! event-driven memory system, one for the supervision engine — each with a
//! configurable capacity and a drop counter. At run end the tracks are
//! merged into one stream in the canonical `(cycle, track rank, seq)`
//! order, the same (cycle, SM id) order the sequential engine steps in, so
//! the merged stream is identical for any shard count and across
//! checkpoint/resume boundaries.
//!
//! On top of events, a periodic sampler (`sample_every` cycles) emits
//! per-SM timeline rows (occupancy, instruction deltas, stall breakdown)
//! and memory-system rows (MSHR / DRAM queue depth). Sampling is exact
//! across fast-forward clock jumps: the closed-form crediting paths emit
//! rows piecewise at each sample boundary inside a skipped span, so a row
//! at cycle `b` always reflects the machine state at the start of cycle
//! `b`, whichever engine produced it.

use crate::stats::SmStats;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration for the telemetry subsystem.
///
/// Attach one to a run via [`crate::RunConfig::with_telemetry`]. The
/// default records events into 65 536-entry rings with sampling disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Per-track ring-buffer capacity (events kept per SM / memory /
    /// engine track). When a ring overflows, the oldest events are
    /// dropped and counted in [`TrackStats::dropped`].
    pub capacity: usize,
    /// Sampling period in cycles; `0` disables the sampler. The first
    /// row is emitted at cycle `sample_every`, and each row reports
    /// deltas since the previous row.
    pub sample_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 16,
            sample_every: 0,
        }
    }
}

impl TelemetryConfig {
    /// Returns the config with the sampling period set to `every` cycles.
    pub fn with_sample_every(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }
}

/// Why a warp (slot) is not ready to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallReason {
    /// Waiting on an outstanding register hazard (scoreboard).
    Scoreboard,
    /// Parked at a block-wide barrier.
    Barrier,
    /// Held back by the memory system: per-warp MSHR limit or the
    /// MSHR/DRAM-queue issue gate.
    MemGate,
}

/// One structured, cycle-stamped telemetry event.
///
/// Every variant is recorded on exactly one track (SM, memory, or
/// engine), and the stream per track is monotone in cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A thread block was launched into an SM slot.
    BlockLaunch {
        /// Grid-wide block id.
        grid_id: u32,
        /// Block slot index within the SM.
        slot: u32,
    },
    /// A thread block retired from an SM slot.
    BlockRetire {
        /// Grid-wide block id.
        grid_id: u32,
        /// Block slot index within the SM.
        slot: u32,
    },
    /// A warp slot entered a stalled state (edge-triggered: recorded when
    /// the reason changes, not every stalled cycle).
    WarpStall {
        /// Warp slot index within the SM.
        slot: u32,
        /// Why the warp cannot issue.
        reason: StallReason,
    },
    /// The SM slept from the stamped cycle until `until` (fast-forward
    /// clock jump). `gated` spans were blocked on the memory system.
    SleepSpan {
        /// First cycle after the sleep span.
        until: u64,
        /// Whether the span was a memory-gate stall rather than idleness.
        gated: bool,
    },
    /// A sharded-engine lane committed against real shared state at the
    /// stamped cycle (park and commit happen at the same cycle).
    EpochCommit,
    /// An MSHR entry filled and released its waiters.
    MshrFill {
        /// Memory partition index.
        part: u32,
    },
    /// A memory access merged into an existing MSHR entry.
    MshrMerge {
        /// Memory partition index.
        part: u32,
    },
    /// A transaction was admitted into a DRAM queue.
    DramAdmit {
        /// Memory partition index.
        part: u32,
    },
    /// A DRAM queue slot was serviced and freed.
    DramService {
        /// Memory partition index.
        part: u32,
    },
    /// The supervisor cut a checkpoint snapshot at the stamped cycle.
    CheckpointCut,
    /// The watchdog observed a new forward-progress watermark.
    WatermarkUpdate {
        /// The new watermark cycle.
        watermark: u64,
    },
    /// The supervisor recovered from a faulted span by rolling back and
    /// degrading the shard count.
    Recovery {
        /// Shard count of the span that faulted.
        from_shards: u32,
        /// Shard count retried with; `0` means sequential.
        to_shards: u32,
    },
}

/// Which lane of the merged trace an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Track {
    /// A streaming multiprocessor, by id.
    Sm(u32),
    /// The shared L2/MSHR/DRAM system (event memory model only).
    Mem,
    /// The supervision engine (checkpoints, watchdog, recoveries).
    Engine,
}

impl Track {
    /// Canonical merge rank: SMs by id, then memory, then engine —
    /// mirroring the sequential engine's (cycle, SM id) step order.
    pub fn rank(&self) -> (u8, u32) {
        match *self {
            Track::Sm(id) => (0, id),
            Track::Mem => (1, 0),
            Track::Engine => (2, 0),
        }
    }

    /// Human-readable track label (used as the Chrome-trace thread name).
    pub fn label(&self) -> String {
        match *self {
            Track::Sm(id) => format!("SM {id}"),
            Track::Mem => "MEM".to_string(),
            Track::Engine => "ENGINE".to_string(),
        }
    }
}

/// One event in the merged trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Cycle the event is stamped with.
    pub cycle: u64,
    /// Track the event was recorded on.
    pub track: Track,
    /// Per-track append sequence number (stable across ring overflow:
    /// the first retained event carries the number of dropped events).
    pub seq: u64,
    /// The event payload.
    pub event: TelemetryEvent,
}

/// One sampled per-SM timeline row.
///
/// A row at `cycle` reflects the machine state at the *start* of that
/// cycle; delta fields cover the `sample_every` cycles since the
/// previous row (or since cycle 0 for the first row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleRow {
    /// Sample boundary cycle.
    pub cycle: u64,
    /// SM id.
    pub sm: u32,
    /// Blocks resident at the boundary.
    pub live_blocks: u32,
    /// Warps resident at the boundary.
    pub live_warps: u32,
    /// Warp instructions issued in the window.
    pub warp_instrs: u64,
    /// Idle cycles spent with every live warp scoreboard-blocked.
    pub scoreboard: u64,
    /// Idle cycles spent with warps parked at barriers (none
    /// scoreboard-blocked).
    pub barrier: u64,
    /// Pipeline-stall cycles (memory gate, MSHR limits, port conflicts).
    pub mem_gate: u64,
    /// Remaining zero-issue cycles with live but unready warps
    /// (lock busy-wait, throttle suppression, exit drain).
    pub no_ready: u64,
}

/// One sampled memory-system timeline row (event model only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSampleRow {
    /// Sample boundary cycle.
    pub cycle: u64,
    /// MSHR entries in flight across all partitions at the boundary.
    pub mshr_in_flight: u32,
    /// DRAM queue slots occupied across all partitions at the boundary.
    pub dram_in_queue: u32,
}

/// Per-track append/drop accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackStats {
    /// The track.
    pub track: Track,
    /// Total events appended over the run.
    pub appended: u64,
    /// Events dropped by ring overflow (`appended - kept`).
    pub dropped: u64,
}

/// The collected telemetry of one run: the merged event stream, sampled
/// timelines, and per-track accounting. Attached to
/// [`crate::RunReport`]`::telemetry` when tracing was enabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// All retained events, merged in `(cycle, track rank, seq)` order.
    pub events: Vec<TraceRecord>,
    /// Per-SM sampled timeline rows, in (cycle, SM id) order.
    pub sm_samples: Vec<SampleRow>,
    /// Memory-system sampled rows, in cycle order.
    pub mem_samples: Vec<MemSampleRow>,
    /// Append/drop accounting per track, in track-rank order.
    pub tracks: Vec<TrackStats>,
}

impl TelemetryReport {
    /// Total events appended across all tracks (including dropped ones).
    pub fn appended(&self) -> u64 {
        self.tracks.iter().map(|t| t.appended).sum()
    }

    /// Total events dropped by ring overflow across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// One-line human summary, used by [`crate::RunReport::summary`].
    pub fn summary(&self) -> String {
        format!(
            "{} events kept ({} appended, {} dropped) on {} tracks; {} SM + {} MEM sample rows",
            self.events.len(),
            self.appended(),
            self.dropped(),
            self.tracks.len(),
            self.sm_samples.len(),
            self.mem_samples.len(),
        )
    }
}

/// Fixed-capacity append-only ring: keeps the newest `cap` entries and
/// counts how many were ever appended, so drops are observable.
#[derive(Debug, Clone)]
pub(crate) struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    appended: u64,
}

impl<T> Ring<T> {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            buf: VecDeque::new(),
            cap: cap.max(1),
            appended: 0,
        }
    }

    pub(crate) fn push(&mut self, v: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(v);
        self.appended += 1;
    }

    pub(crate) fn appended(&self) -> u64 {
        self.appended
    }

    /// Rearrange the backing storage into one contiguous slice so
    /// [`Self::as_slice`] can hand the whole ring out zero-copy.
    pub(crate) fn make_contiguous(&mut self) {
        self.buf.make_contiguous();
    }

    /// The retained entries, oldest first. Callers must run
    /// [`Self::make_contiguous`] first.
    pub(crate) fn as_slice(&self) -> &[T] {
        let (head, tail) = self.buf.as_slices();
        debug_assert!(tail.is_empty(), "Ring::as_slice needs make_contiguous");
        head
    }

    /// Sequence number of the first retained entry (== dropped count).
    pub(crate) fn first_seq(&self) -> u64 {
        self.appended - self.buf.len() as u64
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

/// Per-SM recording state. Lives on `Sm` (boxed) so it rides snapshots,
/// restores, and shard hand-offs with the SM it belongs to.
#[derive(Debug, Clone)]
pub(crate) struct SmTelemetry {
    pub(crate) ring: Ring<(u64, TelemetryEvent)>,
    pub(crate) samples: Vec<SampleRow>,
    pub(crate) sample_every: u64,
    /// Next sample boundary cycle (`u64::MAX` when sampling is off).
    pub(crate) next_sample: u64,
    last_warp_instrs: u64,
    last_scoreboard: u64,
    last_barrier: u64,
    last_mem_gate: u64,
    last_no_ready: u64,
}

impl SmTelemetry {
    pub(crate) fn new(cfg: &TelemetryConfig) -> Self {
        Self {
            ring: Ring::new(cfg.capacity),
            samples: Vec::new(),
            sample_every: cfg.sample_every,
            next_sample: if cfg.sample_every == 0 {
                u64::MAX
            } else {
                cfg.sample_every
            },
            last_warp_instrs: 0,
            last_scoreboard: 0,
            last_barrier: 0,
            last_mem_gate: 0,
            last_no_ready: 0,
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, cycle: u64, event: TelemetryEvent) {
        self.ring.push((cycle, event));
    }

    /// Emit the row at the current `next_sample` boundary and advance it.
    /// `stats` must reflect the state at the start of that cycle.
    pub(crate) fn emit_row(&mut self, sm: u32, stats: &SmStats, live_blocks: u32, live_warps: u32) {
        let row = SampleRow {
            cycle: self.next_sample,
            sm,
            live_blocks,
            live_warps,
            warp_instrs: stats.warp_instrs - self.last_warp_instrs,
            scoreboard: stats.stall_scoreboard_cycles - self.last_scoreboard,
            barrier: stats.stall_barrier_cycles - self.last_barrier,
            mem_gate: stats.stall_mem_gate_cycles - self.last_mem_gate,
            no_ready: stats.stall_no_ready_cycles - self.last_no_ready,
        };
        self.samples.push(row);
        self.last_warp_instrs = stats.warp_instrs;
        self.last_scoreboard = stats.stall_scoreboard_cycles;
        self.last_barrier = stats.stall_barrier_cycles;
        self.last_mem_gate = stats.stall_mem_gate_cycles;
        self.last_no_ready = stats.stall_no_ready_cycles;
        self.next_sample = self.next_sample.saturating_add(self.sample_every);
    }
}

/// Memory-system recording state (event model only). Lives on `EventMem`
/// so it clones with snapshots and is restored on rollback.
#[derive(Debug, Clone)]
pub(crate) struct MemTelemetry {
    pub(crate) ring: Ring<(u64, TelemetryEvent)>,
    pub(crate) samples: Vec<MemSampleRow>,
    pub(crate) sample_every: u64,
    /// Next sample boundary cycle (`u64::MAX` when sampling is off).
    pub(crate) next_sample: u64,
}

impl MemTelemetry {
    pub(crate) fn new(cfg: &TelemetryConfig) -> Self {
        Self {
            ring: Ring::new(cfg.capacity),
            samples: Vec::new(),
            sample_every: cfg.sample_every,
            next_sample: if cfg.sample_every == 0 {
                u64::MAX
            } else {
                cfg.sample_every
            },
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, cycle: u64, event: TelemetryEvent) {
        self.ring.push((cycle, event));
    }

    /// Emit the row at the current `next_sample` boundary and advance it.
    /// Occupancy totals must reflect the state at the start of that cycle.
    pub(crate) fn emit_row(&mut self, mshr_in_flight: u32, dram_in_queue: u32) {
        self.samples.push(MemSampleRow {
            cycle: self.next_sample,
            mshr_in_flight,
            dram_in_queue,
        });
        self.next_sample = self.next_sample.saturating_add(self.sample_every);
    }
}

/// Per-track accounting, computed without copying the ring.
fn track_stats(ring: &Ring<(u64, TelemetryEvent)>, track: Track) -> TrackStats {
    TrackStats {
        track,
        appended: ring.appended(),
        dropped: ring.first_seq(),
    }
}

/// Merge all tracks into a [`TelemetryReport`] in the canonical
/// `(cycle, rank, seq)` order.
///
/// Machine tracks record in nondecreasing cycle order by construction
/// (each SM's own clock is monotone, MEM events are drained in due order,
/// and rollback reverts the rings along with the machine), so the merge
/// reads them as sorted runs straight out of the rings — no intermediate
/// copy. The ENGINE ring is the one exception: a post-rollback `Recovery`
/// is stamped at the snapshot cycle, *behind* already-recorded
/// watermarks, so it alone is materialized and sorted first.
///
/// The k-way merge keeps one packed `cycle << 48 | rank` head key per
/// track (ranks are unique per track, so head keys never tie) and picks
/// the minimum by linear scan: for k ≤ SMs + 2 the keys stay in L1 and
/// the compare is one integer op, which beats both a `BinaryHeap` and a
/// comparison sort by 2–3× — and this merge is most of a short traced
/// run's telemetry bill.
pub(crate) fn assemble(
    mut sms: Vec<SmTelemetry>,
    mut mem: Option<MemTelemetry>,
    engine: Ring<(u64, TelemetryEvent)>,
) -> TelemetryReport {
    let mut tracks = Vec::with_capacity(sms.len() + 2);
    let mut engine_run: Vec<TraceRecord> = {
        let base = engine.first_seq();
        engine
            .iter()
            .enumerate()
            .map(|(i, &(cycle, event))| TraceRecord {
                cycle,
                track: Track::Engine,
                seq: base + i as u64,
                event,
            })
            .collect()
    };
    engine_run.sort_unstable_by_key(|r| (r.cycle, r.seq));
    for sm in &mut sms {
        sm.ring.make_contiguous();
    }
    if let Some(m) = mem.as_mut() {
        m.ring.make_contiguous();
    }
    let events = {
        let mut srcs: Vec<&[(u64, TelemetryEvent)]> = Vec::with_capacity(sms.len() + 1);
        let mut track_of: Vec<Track> = Vec::with_capacity(sms.len() + 1);
        let mut base_of: Vec<u64> = Vec::with_capacity(sms.len() + 1);
        for (id, sm) in sms.iter().enumerate() {
            let track = Track::Sm(id as u32);
            tracks.push(track_stats(&sm.ring, track));
            track_of.push(track);
            base_of.push(sm.ring.first_seq());
            srcs.push(sm.ring.as_slice());
        }
        if let Some(m) = mem.as_ref() {
            tracks.push(track_stats(&m.ring, Track::Mem));
            track_of.push(Track::Mem);
            base_of.push(m.ring.first_seq());
            srcs.push(m.ring.as_slice());
        }
        tracks.push(track_stats(&engine, Track::Engine));
        debug_assert!(srcs
            .iter()
            .all(|run| run.windows(2).all(|w| w[0].0 <= w[1].0)));
        // Head key per track: cycle in the high bits, the track's (constant)
        // rank below — unique across heads because ranks are unique.
        let rank_part: Vec<u128> = track_of
            .iter()
            .map(|t| {
                let (major, minor) = t.rank();
                (major as u128) << 40 | (minor as u128) << 8
            })
            .collect();
        let key = |run: &[(u64, TelemetryEvent)], pos: usize, rank: u128| -> u128 {
            run.get(pos)
                .map_or(u128::MAX, |&(cycle, _)| (cycle as u128) << 48 | rank)
        };
        let total: usize = srcs.iter().map(|run| run.len()).sum();
        let k = srcs.len();
        let mut machine = Vec::with_capacity(total + engine_run.len());
        let mut pos = vec![0usize; k];
        // Cursor list kept sorted ascending by head key: the next event is
        // always `order[0]`, and because machine tracks advance in near
        // lockstep the advanced cursor usually re-inserts at or near the
        // front — a couple of compares per event instead of a k-wide
        // rescan. Exhausted runs carry `u128::MAX` and sink to the back.
        let mut order: Vec<(u128, usize)> =
            (0..k).map(|i| (key(srcs[i], 0, rank_part[i]), i)).collect();
        order.sort_unstable();
        for _ in 0..total {
            let i = order[0].1;
            let p = pos[i];
            let (cycle, event) = srcs[i][p];
            machine.push(TraceRecord {
                cycle,
                track: track_of[i],
                seq: base_of[i] + p as u64,
                event,
            });
            pos[i] = p + 1;
            let advanced = key(srcs[i], p + 1, rank_part[i]);
            let mut j = 1;
            while j < k && order[j].0 < advanced {
                order[j - 1] = order[j];
                j += 1;
            }
            order[j - 1] = (advanced, i);
        }
        if engine_run.is_empty() {
            machine
        } else {
            // ENGINE events are rare (checkpoint cuts, watermarks,
            // recoveries) and rank last, so fold them in with a cold-path
            // 2-way merge instead of taxing every machine-event advance.
            let mut merged = Vec::with_capacity(machine.len() + engine_run.len());
            let mut e = engine_run.into_iter().peekable();
            for rec in machine {
                while e.peek().is_some_and(|er| er.cycle < rec.cycle) {
                    merged.push(e.next().expect("peeked"));
                }
                merged.push(rec);
            }
            merged.extend(e);
            merged
        }
    };
    let mut sm_samples = Vec::with_capacity(sms.iter().map(|s| s.samples.len()).sum());
    for sm in sms {
        sm_samples.extend(sm.samples);
    }
    let mem_samples = mem.map_or_else(Vec::new, |m| m.samples);
    sm_samples.sort_unstable_by_key(|r| (r.cycle, r.sm));
    TelemetryReport {
        events,
        sm_samples,
        mem_samples,
        tracks,
    }
}
