//! Deterministic xorshift64* streams.
//!
//! Every source of pseudo-randomness in the simulator (scatter address
//! generation, throttle draws in `grs-core`) is a seeded xorshift stream so
//! that simulations are bit-for-bit reproducible — a property asserted by an
//! integration test.

/// A tiny, fast, deterministic PRNG (xorshift64*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the stream; a zero seed is remapped to a fixed non-zero constant
    /// (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn bounded_draws_respect_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }
}
