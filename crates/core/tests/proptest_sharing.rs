//! Property tests for the sharing runtime: lock mutual exclusion, the
//! deadlock-avoidance invariant, ownership transfer, and scheduler contracts.

use grs_core::{
    PairMember, RegAccess, RegPairLocks, Scheduler, SchedulerKind, SmemPairLock, WarpClass,
    WarpView,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum LockOp {
    Access { member: bool, warp: usize },
    Finish { member: bool, warp: usize },
    CompleteBlock { member: bool },
}

fn lock_ops(warps: usize) -> impl Strategy<Value = Vec<LockOp>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<bool>(), 0..warps).prop_map(|(m, w)| LockOp::Access { member: m, warp: w }),
            (any::<bool>(), 0..warps).prop_map(|(m, w)| LockOp::Finish { member: m, warp: w }),
            any::<bool>().prop_map(|m| LockOp::CompleteBlock { member: m }),
        ],
        1..200,
    )
}

fn member(b: bool) -> PairMember {
    if b {
        PairMember::A
    } else {
        PairMember::B
    }
}

proptest! {
    /// At any point, live lock holders belong to a single block — the
    /// invariant that makes the Fig. 5 barrier deadlock unreachable.
    #[test]
    fn live_holders_always_single_block(ops in lock_ops(8)) {
        let mut locks = RegPairLocks::new(8);
        for op in ops {
            match op {
                LockOp::Access { member: m, warp } => { locks.access_shared(member(m), warp); }
                LockOp::Finish { member: m, warp } => locks.warp_finished(member(m), warp),
                LockOp::CompleteBlock { member: m } => locks.block_completed(member(m)),
            }
            let a = locks.live_holders(PairMember::A);
            let b = locks.live_holders(PairMember::B);
            prop_assert!(a == 0 || b == 0, "both blocks hold live locks: A={a} B={b}");
        }
    }

    /// A granted access means the partner is denied on the same warp pair.
    #[test]
    fn mutual_exclusion_per_warp_pair(ops in lock_ops(4), probe in 0usize..4) {
        let mut locks = RegPairLocks::new(4);
        for op in ops {
            if let LockOp::Access { member: m, warp } = op {
                locks.access_shared(member(m), warp);
            }
        }
        let a = locks.holds(PairMember::A, probe);
        let b = locks.holds(PairMember::B, probe);
        prop_assert!(!(a && b), "both members hold warp pair {probe}");
    }

    /// `can_access` exactly predicts `access_shared` (peek soundness).
    #[test]
    fn peek_matches_acquire(ops in lock_ops(4), m in any::<bool>(), w in 0usize..4) {
        let mut locks = RegPairLocks::new(4);
        for op in ops {
            if let LockOp::Access { member: mm, warp } = op {
                locks.access_shared(member(mm), warp);
            }
        }
        let predicted = locks.can_access(member(m), w);
        let got = locks.access_shared(member(m), w);
        prop_assert_eq!(predicted, got == RegAccess::Granted);
    }

    /// The scratchpad pair lock never reports two concurrent holders and its
    /// peek is sound.
    #[test]
    fn smem_lock_exclusive(accessors in proptest::collection::vec(any::<bool>(), 1..50)) {
        let mut lock = SmemPairLock::new();
        for m in accessors {
            let predicted = lock.can_access(member(m));
            let got = lock.access_shared(member(m));
            prop_assert_eq!(predicted, got == RegAccess::Granted);
            prop_assert!(!(lock.holds(PairMember::A) && lock.holds(PairMember::B)));
        }
    }
}

fn arb_views() -> impl Strategy<Value = Vec<WarpView>> {
    proptest::collection::vec(
        (0u64..100, 0u8..3, any::<bool>()).prop_map(|(id, class, ready)| (id, class, ready)),
        1..24,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .enumerate()
            .map(|(slot, (dynamic_id, class, ready))| WarpView {
                slot,
                dynamic_id,
                class: match class {
                    0 => WarpClass::Owner,
                    1 => WarpClass::Unshared,
                    _ => WarpClass::NonOwner,
                },
                ready,
            })
            .collect()
    })
}

proptest! {
    /// Every scheduler only ever picks a ready warp in its own partition,
    /// and picks None iff no such warp exists.
    #[test]
    fn schedulers_pick_ready_warps_in_partition(
        views in arb_views(),
        kind in prop_oneof![
            Just(SchedulerKind::Lrr),
            Just(SchedulerKind::Gto),
            Just(SchedulerKind::TwoLevel { group_size: 4 }),
            Just(SchedulerKind::Owf),
        ],
        rounds in 1usize..8,
    ) {
        let units = 2;
        let mut sched: Scheduler = kind.build(views.len(), units);
        for _ in 0..rounds {
            for unit in 0..units {
                let pick = sched.pick(unit, units, &views);
                let any_candidate = views.iter().any(|v| v.ready && v.slot % units == unit);
                match pick {
                    Some(slot) => {
                        let v = views.iter().find(|v| v.slot == slot).expect("picked view exists");
                        prop_assert!(v.ready, "{kind:?} picked non-ready warp");
                        prop_assert_eq!(slot % units, unit, "scheduler {:?} violated partition", kind);
                    }
                    None => prop_assert!(!any_candidate, "{kind:?} missed a ready warp"),
                }
            }
        }
    }

    /// OWF never picks a lower class while a strictly higher class is ready
    /// (owner > unshared > non-owner, paper Sec. IV-A).
    #[test]
    fn owf_respects_class_priority(views in arb_views()) {
        let units = 1;
        let mut sched = SchedulerKind::Owf.build(views.len(), units);
        if let Some(slot) = sched.pick(0, units, &views) {
            let picked = views.iter().find(|v| v.slot == slot).unwrap();
            let best_rank = views
                .iter()
                .filter(|v| v.ready)
                .map(|v| v.class.rank())
                .min()
                .unwrap();
            prop_assert_eq!(picked.class.rank(), best_rank);
        }
    }
}
