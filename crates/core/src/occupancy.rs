//! Baseline occupancy and resource-waste arithmetic (paper Sec. I-A, Fig. 1).

use serde::{Deserialize, Serialize};

use crate::config::SmConfig;
use crate::sharing::KernelFootprint;

/// Which launch constraint binds the baseline block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LimitingFactor {
    /// Register file (`⌊R/Rtb⌋` smallest).
    Registers,
    /// Scratchpad memory.
    Scratchpad,
    /// Max resident threads per SM.
    Threads,
    /// Max resident blocks per SM.
    Blocks,
}

impl std::fmt::Display for LimitingFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LimitingFactor::Registers => "registers",
            LimitingFactor::Scratchpad => "scratchpad",
            LimitingFactor::Threads => "threads",
            LimitingFactor::Blocks => "blocks",
        };
        f.write_str(s)
    }
}

/// Result of the baseline (non-sharing) occupancy computation for one kernel
/// on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident thread blocks (`min` over all four constraints; paper
    /// Sec. II).
    pub blocks: u32,
    /// Which constraint produced `blocks` (ties resolved in the order
    /// registers, scratchpad, threads, blocks — the paper's Set-1/2/3
    /// classification order).
    pub limiting: LimitingFactor,
    /// Per-constraint limits, for reporting.
    pub reg_limit: u32,
    /// Blocks allowed by scratchpad capacity.
    pub smem_limit: u32,
    /// Blocks allowed by the max-threads limit.
    pub thread_limit: u32,
    /// Blocks allowed by the max-blocks limit.
    pub block_limit: u32,
    /// Registers left unallocated (`R mod Rtb` when register-limited, else
    /// whatever the resident blocks leave over).
    pub wasted_registers: u32,
    /// Scratchpad bytes left unallocated.
    pub wasted_scratchpad: u32,
}

impl Occupancy {
    /// Percentage of the SM's registers wasted (paper Fig. 1(b)).
    pub fn register_waste_pct(&self, sm: &SmConfig) -> f64 {
        100.0 * f64::from(self.wasted_registers) / f64::from(sm.registers)
    }

    /// Percentage of the SM's scratchpad wasted (paper Fig. 1(d)).
    pub fn scratchpad_waste_pct(&self, sm: &SmConfig) -> f64 {
        100.0 * f64::from(self.wasted_scratchpad) / f64::from(sm.scratchpad_bytes)
    }
}

/// Compute baseline (non-sharing) occupancy of `kernel` on an SM described by
/// `sm`: the number of resident blocks is the minimum over the four
/// constraints of paper Sec. II, and the waste figures are what Fig. 1
/// plots.
pub fn occupancy(sm: &SmConfig, kernel: &KernelFootprint) -> Occupancy {
    let reg_limit = sm
        .registers
        .checked_div(kernel.regs_per_block())
        .unwrap_or(u32::MAX);
    let smem_limit = sm
        .scratchpad_bytes
        .checked_div(kernel.smem_per_block)
        .unwrap_or(u32::MAX);
    let thread_limit = sm.max_threads / kernel.threads_per_block.max(1);
    let block_limit = sm.max_blocks;

    let blocks = reg_limit.min(smem_limit).min(thread_limit).min(block_limit);
    let limiting = if blocks == reg_limit {
        LimitingFactor::Registers
    } else if blocks == smem_limit {
        LimitingFactor::Scratchpad
    } else if blocks == thread_limit {
        LimitingFactor::Threads
    } else {
        LimitingFactor::Blocks
    };

    Occupancy {
        blocks,
        limiting,
        reg_limit,
        smem_limit,
        thread_limit,
        block_limit,
        wasted_registers: sm.registers
            - blocks
                .saturating_mul(kernel.regs_per_block())
                .min(sm.registers),
        wasted_scratchpad: sm.scratchpad_bytes
            - blocks
                .saturating_mul(kernel.smem_per_block)
                .min(sm.scratchpad_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn sm() -> SmConfig {
        GpuConfig::paper_baseline().sm
    }

    fn fp(threads: u32, regs: u32, smem: u32) -> KernelFootprint {
        KernelFootprint {
            threads_per_block: threads,
            regs_per_thread: regs,
            smem_per_block: smem,
        }
    }

    #[test]
    fn hotspot_motivating_example() {
        // Paper Sec. I-A: hotspot 36 regs × 256 threads = 9216/block → 3
        // blocks, 5120 registers wasted.
        let occ = occupancy(&sm(), &fp(256, 36, 0));
        assert_eq!(occ.blocks, 3);
        assert_eq!(occ.limiting, LimitingFactor::Registers);
        assert_eq!(occ.wasted_registers, 32768 - 3 * 9216);
        assert_eq!(occ.wasted_registers, 5120);
        assert!((occ.register_waste_pct(&sm()) - 15.625).abs() < 1e-9);
    }

    #[test]
    fn lavamd_motivating_example() {
        // Paper Sec. I-A: lavaMD 7200 bytes/block → 2 blocks, 1984 bytes
        // wasted.
        let occ = occupancy(&sm(), &fp(128, 20, 7200));
        assert_eq!(occ.blocks, 2);
        assert_eq!(occ.limiting, LimitingFactor::Scratchpad);
        assert_eq!(occ.wasted_scratchpad, 1984);
    }

    #[test]
    fn thread_limited_kernel() {
        // 512 threads/block, tiny resources → 1536/512 = 3 blocks.
        let occ = occupancy(&sm(), &fp(512, 4, 0));
        assert_eq!(occ.blocks, 3);
        assert_eq!(occ.limiting, LimitingFactor::Threads);
    }

    #[test]
    fn block_limited_kernel() {
        let occ = occupancy(&sm(), &fp(32, 2, 0));
        assert_eq!(occ.blocks, 8);
        assert_eq!(occ.limiting, LimitingFactor::Blocks);
    }

    #[test]
    fn zero_resource_kernels_do_not_divide_by_zero() {
        let occ = occupancy(&sm(), &fp(96, 0, 0));
        assert_eq!(occ.blocks, 8); // block-limited
        assert_eq!(occ.wasted_registers, 32768);
    }
}
