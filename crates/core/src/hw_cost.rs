//! Hardware storage-overhead model (paper Sec. V).
//!
//! Implementing sharing needs a handful of bits per SM:
//!
//! * 1 bit — "sharing mode enabled" flag;
//! * `T·⌈log2(T+1)⌉` bits — partner-block id per block (id `T` encodes −1);
//! * `W` bits — owner flag per warp;
//! * register sharing additionally: `W` bits (shared/unshared per warp) and
//!   `⌊W/2⌋·⌈log2 W⌉` bits of per-warp-pair lock variables;
//! * scratchpad sharing additionally: `⌊T/2⌋·⌈log2 T⌉` bits of per-block-pair
//!   lock variables;
//!
//! all multiplied by the number of SMs `N`. Two comparator circuits per SM
//! implement the Fig. 3/Fig. 4 boundary checks (steps (b) and (c)); they are
//! reported separately as they are logic, not storage.

use crate::config::GpuConfig;

/// `⌈log2(x)⌉` with the convention `ceil_log2(0) = 0`, `ceil_log2(1) = 0`.
#[inline]
pub fn ceil_log2(x: u32) -> u32 {
    if x <= 1 {
        0
    } else {
        32 - (x - 1).leading_zeros()
    }
}

/// Storage (bits) for register sharing on a GPU with `n` SMs, `t` block slots
/// and `w` warp slots per SM (paper Sec. V):
/// `(1 + T·⌈log2(T+1)⌉ + 2W + ⌊W/2⌋·⌈log2 W⌉) · N`.
pub fn register_sharing_bits(t: u32, w: u32, n: u32) -> u64 {
    let per_sm = 1
        + u64::from(t) * u64::from(ceil_log2(t + 1))
        + 2 * u64::from(w)
        + u64::from(w / 2) * u64::from(ceil_log2(w));
    per_sm * u64::from(n)
}

/// Storage (bits) for scratchpad sharing (paper Sec. V):
/// `(1 + T·⌈log2(T+1)⌉ + W + ⌊T/2⌋·⌈log2 T⌉) · N`.
pub fn scratchpad_sharing_bits(t: u32, w: u32, n: u32) -> u64 {
    let per_sm = 1
        + u64::from(t) * u64::from(ceil_log2(t + 1))
        + u64::from(w)
        + u64::from(t / 2) * u64::from(ceil_log2(t));
    per_sm * u64::from(n)
}

/// Overhead summary for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCost {
    /// Register-sharing storage in bits (whole GPU).
    pub register_sharing_bits: u64,
    /// Scratchpad-sharing storage in bits (whole GPU).
    pub scratchpad_sharing_bits: u64,
    /// Comparator circuits per SM (Fig. 3/4 steps (b) and (c)).
    pub comparators_per_sm: u32,
}

/// Evaluate the Sec. V cost model for `cfg`, with warp slots derived from the
/// max-threads limit.
pub fn hw_cost(cfg: &GpuConfig) -> HwCost {
    let t = cfg.sm.max_blocks;
    let w = cfg.sm.max_threads / grs_isa::WARP_SIZE;
    HwCost {
        register_sharing_bits: register_sharing_bits(t, w, cfg.num_sms),
        scratchpad_sharing_bits: scratchpad_sharing_bits(t, w, cfg.num_sms),
        comparators_per_sm: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(48), 6);
    }

    #[test]
    fn paper_baseline_costs() {
        // Table I machine: T = 8 blocks, W = 1536/32 = 48 warps, N = 14.
        // Register sharing per SM:
        //   1 + 8·⌈log2 9⌉ + 2·48 + 24·⌈log2 48⌉ = 1 + 32 + 96 + 144 = 273.
        assert_eq!(register_sharing_bits(8, 48, 1), 273);
        assert_eq!(register_sharing_bits(8, 48, 14), 273 * 14);
        // Scratchpad sharing per SM:
        //   1 + 32 + 48 + 4·3 = 93.
        assert_eq!(scratchpad_sharing_bits(8, 48, 1), 93);
        assert_eq!(scratchpad_sharing_bits(8, 48, 14), 93 * 14);

        let cost = hw_cost(&GpuConfig::paper_baseline());
        assert_eq!(cost.register_sharing_bits, 273 * 14);
        assert_eq!(cost.scratchpad_sharing_bits, 93 * 14);
        assert_eq!(cost.comparators_per_sm, 2);
        // Sanity: the whole mechanism costs < 500 bytes of state on the GPU.
        assert!(cost.register_sharing_bits / 8 < 500);
    }

    #[test]
    fn cost_scales_linearly_with_sms() {
        assert_eq!(
            register_sharing_bits(8, 48, 28),
            2 * register_sharing_bits(8, 48, 14)
        );
        assert_eq!(
            scratchpad_sharing_bits(8, 48, 28),
            2 * scratchpad_sharing_bits(8, 48, 14)
        );
    }
}
