//! Pair locks for shared resources, with the barrier-deadlock avoidance rule.
//!
//! **Register sharing** (paper Sec. III-A, Fig. 3): warp *i* of block A and
//! warp *i* of block B share one register region guarded by one lock. A warp
//! accessing a register whose sequence number exceeds the `Rw·t` boundary
//! must hold its pair lock; it busy-waits (retries every cycle) otherwise.
//!
//! **Deadlock avoidance** (paper Fig. 5): with barriers, naive per-pair
//! locking deadlocks (W1 waits on W3's registers, W3 waits at a barrier for
//! W4, W4 waits on W2's registers, W2 waits at a barrier for W1). The paper's
//! rule: *a warp from block A may acquire a lock only if no warp of block B
//! currently holds a live (unfinished) lock*. Hence at any time all live lock
//! holders of a pair belong to a single block — the **owner block**.
//!
//! **Scratchpad sharing** (paper Sec. III-B, Fig. 4): one lock per block
//! pair; deadlock-free by construction.
//!
//! Locks are released when the *holder finishes* (warp exit for registers,
//! block completion for scratchpad), never earlier — that is what allows the
//! paper's future-work section to speculate about live-range-based early
//! release as an extension ([`release_early`] implements that extension,
//! disabled by default).

use serde::{Deserialize, Serialize};

/// Identifies a member of a shared block pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairMember {
    /// First member (launched earlier).
    A,
    /// Second member.
    B,
}

impl PairMember {
    /// The other member.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            PairMember::A => PairMember::B,
            PairMember::B => PairMember::A,
        }
    }

    /// 0 for A, 1 for B.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PairMember::A => 0,
            PairMember::B => 1,
        }
    }
}

/// Outcome of a shared-register access attempt (Fig. 3 steps (c)–(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegAccess {
    /// Register below the `Rw·t` boundary: direct register-file access.
    Private,
    /// Shared register and the warp holds (or just acquired) its pair lock.
    Granted,
    /// Shared register, lock unavailable: retry next cycle (busy-wait).
    Blocked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum LockSlot {
    Free,
    Held(PairMember),
}

/// Lock state for one shared *block pair* under register sharing: one lock
/// per warp index, plus the live-holder counts that implement the deadlock
/// avoidance rule, plus the owner designation used by OWF scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegPairLocks {
    locks: Vec<LockSlot>,
    /// Live (unfinished) lock holders per member.
    live_held: [u32; 2],
    owner: Option<PairMember>,
}

impl RegPairLocks {
    /// Create lock state for blocks of `warps_per_block` warps.
    pub fn new(warps_per_block: usize) -> Self {
        RegPairLocks {
            locks: vec![LockSlot::Free; warps_per_block],
            live_held: [0, 0],
            owner: None,
        }
    }

    /// Does warp `warp_idx` of `member` currently hold its pair lock?
    #[inline]
    pub fn holds(&self, member: PairMember, warp_idx: usize) -> bool {
        self.locks[warp_idx] == LockSlot::Held(member)
    }

    /// Non-mutating check: would [`Self::access_shared`] succeed right now?
    /// Used by the simulator's readiness scan, which must not acquire locks
    /// for warps the scheduler may not pick.
    pub fn can_access(&self, member: PairMember, warp_idx: usize) -> bool {
        match self.locks[warp_idx] {
            LockSlot::Held(m) => m == member,
            LockSlot::Free => self.live_held[member.other().index()] == 0,
        }
    }

    /// Attempt a shared-register access by warp `warp_idx` of `member`
    /// (paper Fig. 3 steps (d)–(e)). Acquires the pair lock if permitted by
    /// the deadlock-avoidance rule; returns [`RegAccess::Blocked`] otherwise
    /// (the warp must retry in a later cycle).
    pub fn access_shared(&mut self, member: PairMember, warp_idx: usize) -> RegAccess {
        match self.locks[warp_idx] {
            LockSlot::Held(m) if m == member => RegAccess::Granted,
            LockSlot::Held(_) => RegAccess::Blocked,
            LockSlot::Free => {
                // Deadlock-avoidance: the partner block must have no live
                // lock holders (Fig. 5 rule).
                if self.live_held[member.other().index()] > 0 {
                    return RegAccess::Blocked;
                }
                self.locks[warp_idx] = LockSlot::Held(member);
                self.live_held[member.index()] += 1;
                // The member with live locks is, by the paper's definition,
                // the owner block: its partner waits on it.
                self.owner = Some(member);
                RegAccess::Granted
            }
        }
    }

    /// A warp of `member` finished execution: its shared registers are
    /// released and the partner warp may acquire them (paper Sec. III-A:
    /// "only after W20 finishes execution, W30 can access the shared
    /// registers").
    pub fn warp_finished(&mut self, member: PairMember, warp_idx: usize) {
        if self.locks[warp_idx] == LockSlot::Held(member) {
            self.locks[warp_idx] = LockSlot::Free;
            self.live_held[member.index()] -= 1;
        }
    }

    /// Early lock release for a warp that provably no longer needs its shared
    /// registers (live-range analysis) — the paper's *future work* extension
    /// (Sec. VIII). Semantically identical to [`Self::warp_finished`]; kept
    /// separate so ablations can count how often it fires.
    pub fn release_early(&mut self, member: PairMember, warp_idx: usize) {
        self.warp_finished(member, warp_idx);
    }

    /// The owner block of this pair, if determined (paper Sec. IV: the block
    /// whose warps hold shared resources the partner waits for).
    #[inline]
    pub fn owner(&self) -> Option<PairMember> {
        self.owner
    }

    /// Number of live lock holders of `member`.
    #[inline]
    pub fn live_holders(&self, member: PairMember) -> u32 {
        self.live_held[member.index()]
    }

    /// `member`'s block completed: release any remaining locks, transfer
    /// ownership to the partner (paper Sec. IV: "as soon as the owner thread
    /// block finishes ... it transfers its ownership to the non-owner thread
    /// block"), and make the slot ready for a replacement block.
    pub fn block_completed(&mut self, member: PairMember) {
        for slot in &mut self.locks {
            if *slot == LockSlot::Held(member) {
                *slot = LockSlot::Free;
            }
        }
        self.live_held[member.index()] = 0;
        if self.owner == Some(member) {
            self.owner = Some(member.other());
        }
    }

    /// Forget ownership (used when a pair dissolves at the grid tail, when
    /// one slot will never be refilled).
    pub fn clear_owner(&mut self) {
        self.owner = None;
    }
}

/// Lock state for one shared block pair under **scratchpad** sharing: a
/// single lock at block granularity (paper Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmemPairLock {
    holder: Option<PairMember>,
    owner: Option<PairMember>,
}

impl SmemPairLock {
    /// Fresh, unheld lock.
    pub fn new() -> Self {
        SmemPairLock {
            holder: None,
            owner: None,
        }
    }

    /// Does `member` hold the scratchpad lock?
    #[inline]
    pub fn holds(&self, member: PairMember) -> bool {
        self.holder == Some(member)
    }

    /// Non-mutating check: would [`Self::access_shared`] succeed right now?
    pub fn can_access(&self, member: PairMember) -> bool {
        self.holder.is_none() || self.holder == Some(member)
    }

    /// Attempt a shared-scratchpad access by `member` (paper Fig. 4 steps
    /// (d)–(e)). The whole block acquires; the partner block busy-waits until
    /// this block completes.
    pub fn access_shared(&mut self, member: PairMember) -> RegAccess {
        match self.holder {
            Some(m) if m == member => RegAccess::Granted,
            Some(_) => RegAccess::Blocked,
            None => {
                self.holder = Some(member);
                self.owner = Some(member);
                RegAccess::Granted
            }
        }
    }

    /// The owner block, if determined.
    #[inline]
    pub fn owner(&self) -> Option<PairMember> {
        self.owner
    }

    /// `member`'s block completed: release the lock if held and transfer
    /// ownership.
    pub fn block_completed(&mut self, member: PairMember) {
        if self.holder == Some(member) {
            self.holder = None;
        }
        if self.owner == Some(member) {
            self.owner = Some(member.other());
        }
    }

    /// Forget ownership (pair dissolution at the grid tail).
    pub fn clear_owner(&mut self) {
        self.owner = None;
    }
}

impl Default for SmemPairLock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PairMember::{A, B};

    #[test]
    fn private_member_helpers() {
        assert_eq!(A.other(), B);
        assert_eq!(B.other(), A);
        assert_eq!(A.index(), 0);
        assert_eq!(B.index(), 1);
    }

    #[test]
    fn first_acquirer_becomes_owner() {
        let mut l = RegPairLocks::new(4);
        assert_eq!(l.owner(), None);
        assert_eq!(l.access_shared(B, 2), RegAccess::Granted);
        assert_eq!(l.owner(), Some(B));
        assert!(l.holds(B, 2));
        assert_eq!(l.live_holders(B), 1);
    }

    #[test]
    fn partner_blocked_on_same_pair_lock() {
        let mut l = RegPairLocks::new(2);
        assert_eq!(l.access_shared(A, 0), RegAccess::Granted);
        assert_eq!(l.access_shared(B, 0), RegAccess::Blocked);
        // Holder re-accessing is fine (no self-blocking).
        assert_eq!(l.access_shared(A, 0), RegAccess::Granted);
    }

    #[test]
    fn deadlock_avoidance_rule_fig5() {
        // Fig. 5: W2 (block A, warp idx 1) holds shared registers; W3
        // (block B, warp idx 0) must NOT be able to acquire its own pair
        // lock even though that lock is free — otherwise the barrier
        // deadlock of Fig. 5 becomes reachable.
        let mut l = RegPairLocks::new(2);
        assert_eq!(l.access_shared(A, 1), RegAccess::Granted); // W2
        assert_eq!(l.access_shared(B, 0), RegAccess::Blocked); // W3 denied

        // Once W2 finishes, B may proceed.
        l.warp_finished(A, 1);
        assert_eq!(l.access_shared(B, 0), RegAccess::Granted);
    }

    #[test]
    fn same_block_warps_may_hold_multiple_locks() {
        let mut l = RegPairLocks::new(3);
        assert_eq!(l.access_shared(A, 0), RegAccess::Granted);
        assert_eq!(l.access_shared(A, 1), RegAccess::Granted);
        assert_eq!(l.access_shared(A, 2), RegAccess::Granted);
        assert_eq!(l.live_holders(A), 3);
    }

    #[test]
    fn warp_finish_releases_exactly_its_lock() {
        let mut l = RegPairLocks::new(2);
        l.access_shared(A, 0);
        l.access_shared(A, 1);
        l.warp_finished(A, 0);
        assert!(!l.holds(A, 0));
        assert!(l.holds(A, 1));
        assert_eq!(l.live_holders(A), 1);
        // Partner still blocked by the live holder on warp 1.
        assert_eq!(l.access_shared(B, 0), RegAccess::Blocked);
        l.warp_finished(A, 1);
        assert_eq!(l.access_shared(B, 0), RegAccess::Granted);
    }

    #[test]
    fn finishing_a_nonholder_is_a_noop() {
        let mut l = RegPairLocks::new(2);
        l.access_shared(A, 0);
        l.warp_finished(B, 0); // B holds nothing
        assert!(l.holds(A, 0));
        assert_eq!(l.live_holders(A), 1);
    }

    #[test]
    fn block_completion_transfers_ownership() {
        let mut l = RegPairLocks::new(2);
        l.access_shared(A, 0);
        l.access_shared(A, 1);
        assert_eq!(l.owner(), Some(A));
        l.block_completed(A);
        assert_eq!(l.owner(), Some(B));
        assert_eq!(l.live_holders(A), 0);
        // Replacement block in slot A can acquire once B has no live locks.
        assert_eq!(l.access_shared(A, 0), RegAccess::Granted);
        assert_eq!(l.owner(), Some(A));
    }

    #[test]
    fn non_owner_completion_keeps_ownership() {
        let mut l = RegPairLocks::new(1);
        l.access_shared(A, 0);
        l.block_completed(B); // non-owner leaves
        assert_eq!(l.owner(), Some(A));
        assert!(l.holds(A, 0));
    }

    #[test]
    fn smem_lock_basics() {
        let mut l = SmemPairLock::new();
        assert_eq!(l.access_shared(B), RegAccess::Granted);
        assert_eq!(l.owner(), Some(B));
        assert_eq!(l.access_shared(A), RegAccess::Blocked);
        assert_eq!(l.access_shared(B), RegAccess::Granted);
        l.block_completed(B);
        assert_eq!(l.owner(), Some(A));
        assert_eq!(l.access_shared(A), RegAccess::Granted);
    }

    #[test]
    fn smem_clear_owner() {
        let mut l = SmemPairLock::new();
        l.access_shared(A);
        l.clear_owner();
        assert_eq!(l.owner(), None);
    }

    #[test]
    fn early_release_behaves_like_finish() {
        let mut l = RegPairLocks::new(1);
        l.access_shared(A, 0);
        l.release_early(A, 0);
        assert_eq!(l.access_shared(B, 0), RegAccess::Granted);
    }
}
