//! The launch-count computation of paper Sec. III-C.
//!
//! Given a threshold `t` and a resource with `R` units per SM of which each
//! block needs `Rtb`, the paper launches `U` unshared blocks and `S` shared
//! *pairs* such that
//!
//! ```text
//! (1)  U + S = ⌊R/Rtb⌋            — as many effective blocks as baseline
//! (2)  U·Rtb + S·(1+t)·Rtb ≤ R    — capacity
//! (3)  M = U + 2S                 — resident blocks
//! ```
//!
//! which solves to `S = ⌊(R − ⌊R/Rtb⌋·Rtb) / (t·Rtb)⌋` clamped to `S ≤ ⌊R/Rtb⌋`
//! (a block can share with at most one partner), and the final `M` is further
//! clamped by the max-threads / max-blocks / other-resource constraints of
//! paper Sec. II. When a clamp lowers `M`, pairs are dissolved first (each
//! dissolved pair lowers `M` by one while keeping eq. (1) intact).

use serde::{Deserialize, Serialize};

use crate::config::SmConfig;
use crate::occupancy::occupancy;
use crate::sharing::{KernelFootprint, ResourceKind, Threshold};

/// Per-SM launch plan produced by [`compute_launch_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchPlan {
    /// `U`: blocks launched with a full private allocation.
    pub unshared: u32,
    /// `S`: pairs of blocks sharing one `(1+t)·Rtb` allocation.
    pub shared_pairs: u32,
    /// `M = U + 2S`: total resident blocks.
    pub max_blocks: u32,
    /// Baseline (non-sharing) resident blocks for the same kernel, i.e. the
    /// paper's `⌊R/Rtb⌋` intersected with the Sec. II constraints.
    pub baseline_blocks: u32,
    /// Resource this plan shares.
    pub resource: ResourceKind,
}

impl LaunchPlan {
    /// Guaranteed-progress block count: `U + S` (paper: "at least S + U
    /// thread blocks always make progress").
    #[inline]
    pub fn effective_blocks(&self) -> u32 {
        self.unshared + self.shared_pairs
    }

    /// Extra resident blocks relative to the baseline.
    #[inline]
    pub fn extra_blocks(&self) -> u32 {
        self.max_blocks.saturating_sub(self.baseline_blocks)
    }

    /// True when the plan degenerates to the baseline (no pairs) — what
    /// happens for Set-3 kernels whose residency is limited by threads or
    /// blocks rather than the shared resource (paper Sec. VI-B2).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.shared_pairs == 0
    }
}

/// Compute the Sec. III-C launch plan for `kernel` on one SM.
///
/// `resource` selects register sharing or scratchpad sharing; the other
/// resource and the thread/block caps act as clamps exactly as in the
/// baseline occupancy computation. The returned plan always satisfies
/// `effective_blocks() ≥ baseline_blocks` (eq. 1) and the capacity bound
/// (eq. 2); both are enforced by unit and property tests.
pub fn compute_launch_plan(
    sm: &SmConfig,
    kernel: &KernelFootprint,
    threshold: Threshold,
    resource: ResourceKind,
) -> LaunchPlan {
    let occ = occupancy(sm, kernel);
    let baseline = occ.blocks;

    let rtb = kernel.per_block(resource);
    let r = match resource {
        ResourceKind::Registers => sm.registers,
        ResourceKind::Scratchpad => sm.scratchpad_bytes,
    };

    // Degenerate cases: kernel does not consume this resource, or cannot fit
    // at all. Sharing adds nothing; everything launches unshared up to the
    // baseline residency.
    if rtb == 0 || rtb > r {
        return LaunchPlan {
            unshared: baseline,
            shared_pairs: 0,
            max_blocks: baseline,
            baseline_blocks: baseline,
            resource,
        };
    }

    // B = ⌊R/Rtb⌋ on the shared resource only.
    let b = r / rtb;

    // Leftover units and S from eq. (2): S ≤ (R − B·Rtb) / (t·Rtb).
    let leftover = r - b * rtb;
    let t = threshold.t();
    // f64 is exact here: register/byte counts are ≤ 2^26, well inside the
    // 53-bit mantissa; a tiny epsilon guards the floor against representation
    // error of t·Rtb.
    let s_capacity = (f64::from(leftover) / (t * f64::from(rtb)) + 1e-9).floor() as u32;
    let s_raw = s_capacity.min(b);

    // Clamps from the remaining Sec. II constraints, applied to M.
    let thread_limit = sm.max_threads / kernel.threads_per_block.max(1);
    let other_limit = match resource {
        ResourceKind::Registers => sm
            .scratchpad_bytes
            .checked_div(kernel.smem_per_block)
            .unwrap_or(u32::MAX),
        ResourceKind::Scratchpad => sm
            .registers
            .checked_div(kernel.regs_per_block())
            .unwrap_or(u32::MAX),
    };
    let m_cap = sm.max_blocks.min(thread_limit).min(other_limit);

    let m = (b + s_raw).min(m_cap);
    let (unshared, shared_pairs) = if m <= b {
        // All pairs dissolved; residency equals the non-sharing limit under
        // the external clamp.
        (m, 0)
    } else {
        let s = m - b;
        (b - s, s)
    };

    LaunchPlan {
        unshared,
        shared_pairs,
        max_blocks: unshared + 2 * shared_pairs,
        baseline_blocks: baseline,
        resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn sm() -> SmConfig {
        GpuConfig::paper_baseline().sm
    }

    fn reg_plan(threads: u32, regs: u32, pct: f64) -> LaunchPlan {
        compute_launch_plan(
            &sm(),
            &KernelFootprint {
                threads_per_block: threads,
                regs_per_thread: regs,
                smem_per_block: 0,
            },
            Threshold::from_sharing_pct(pct).unwrap(),
            ResourceKind::Registers,
        )
    }

    fn smem_plan(threads: u32, smem: u32, pct: f64) -> LaunchPlan {
        compute_launch_plan(
            &sm(),
            &KernelFootprint {
                threads_per_block: threads,
                regs_per_thread: 16,
                smem_per_block: smem,
            },
            Threshold::from_sharing_pct(pct).unwrap(),
            ResourceKind::Scratchpad,
        )
    }

    /// Paper Table VI: resident blocks vs %sharing for every Set-1 kernel.
    #[test]
    fn table_vi_register_sharing_block_counts() {
        // (threads, regs, [blocks at 0,10,30,50,70,90 % sharing])
        let rows: &[(&str, u32, u32, [u32; 6])] = &[
            ("backprop", 256, 24, [5, 5, 5, 5, 6, 6]),
            ("b+tree", 508, 24, [2, 2, 2, 3, 3, 3]),
            ("hotspot", 256, 36, [3, 3, 3, 4, 4, 6]),
            ("LIB", 192, 36, [4, 4, 5, 5, 6, 8]),
            ("MUM", 256, 28, [4, 4, 4, 5, 5, 6]),
            ("mri-q", 256, 24, [5, 5, 5, 5, 6, 6]),
            ("sgemm", 128, 48, [5, 5, 5, 5, 6, 8]),
            ("stencil", 512, 28, [2, 2, 2, 2, 2, 3]),
        ];
        let pcts = [0.0, 10.0, 30.0, 50.0, 70.0, 90.0];
        for &(name, threads, regs, expected) in rows {
            for (i, &pct) in pcts.iter().enumerate() {
                let plan = if pct == 0.0 {
                    // 0% sharing = t = 1; the equations give S from leftover/(1·Rtb),
                    // which is 0 by definition of ⌊R/Rtb⌋.
                    reg_plan(threads, regs, 0.0)
                } else {
                    reg_plan(threads, regs, pct)
                };
                assert_eq!(
                    plan.max_blocks, expected[i],
                    "{name} at {pct}% sharing: got {} expected {}",
                    plan.max_blocks, expected[i]
                );
            }
        }
    }

    /// Paper Table VIII: resident blocks vs %sharing for every Set-2 kernel.
    #[test]
    fn table_viii_scratchpad_sharing_block_counts() {
        let rows: &[(&str, u32, u32, [u32; 6])] = &[
            ("CONV1", 64, 2560, [6, 6, 6, 6, 7, 8]),
            ("CONV2", 128, 5184, [3, 3, 3, 3, 3, 4]),
            ("lavaMD", 128, 7200, [2, 2, 2, 2, 2, 4]),
            ("NW1", 16, 2180, [7, 7, 7, 8, 8, 8]),
            ("NW2", 16, 2180, [7, 7, 7, 8, 8, 8]),
            ("SRAD1", 256, 6144, [2, 2, 2, 3, 4, 4]),
            ("SRAD2", 256, 5120, [3, 3, 3, 3, 3, 5]),
        ];
        let pcts = [0.0, 10.0, 30.0, 50.0, 70.0, 90.0];
        for &(name, threads, smem, expected) in rows {
            for (i, &pct) in pcts.iter().enumerate() {
                let plan = smem_plan(threads, smem, pct);
                assert_eq!(
                    plan.max_blocks, expected[i],
                    "{name} at {pct}% sharing: got {} expected {}",
                    plan.max_blocks, expected[i]
                );
            }
        }
    }

    #[test]
    fn worked_example_from_paper_section_iii() {
        // Paper Fig. 2: R = 35K units, Rtb = 10K, t = 0.5 → TB0, TB1 unshared
        // and one shared pair: U = 2, S = 1, M = 4.
        let sm = SmConfig {
            registers: 35_000,
            scratchpad_bytes: 35_000,
            max_threads: 4096,
            max_blocks: 16,
            schedulers: 2,
        };
        let fp = KernelFootprint {
            threads_per_block: 320,
            regs_per_thread: 1, // negligible: scratchpad is the only binding resource
            smem_per_block: 10_000,
        };
        // Use scratchpad so Rtb is exactly 10K.
        let plan = compute_launch_plan(
            &sm,
            &fp,
            Threshold::new(0.5).unwrap(),
            ResourceKind::Scratchpad,
        );
        assert_eq!(plan.unshared, 2);
        assert_eq!(plan.shared_pairs, 1);
        assert_eq!(plan.max_blocks, 4);
        assert_eq!(plan.effective_blocks(), 3);
    }

    #[test]
    fn effective_blocks_never_below_baseline() {
        for regs in [8u32, 16, 24, 36, 48, 63] {
            for threads in [64u32, 128, 192, 256, 512] {
                for pct in [10.0, 30.0, 50.0, 70.0, 90.0] {
                    let p = reg_plan(threads, regs, pct);
                    assert!(
                        p.effective_blocks() >= p.baseline_blocks,
                        "regs={regs} threads={threads} pct={pct}: {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_bound_eq2_holds() {
        for regs in [20u32, 28, 36, 44] {
            for pct in [10.0, 50.0, 90.0] {
                let t = Threshold::from_sharing_pct(pct).unwrap();
                let fp = KernelFootprint {
                    threads_per_block: 256,
                    regs_per_thread: regs,
                    smem_per_block: 0,
                };
                let p = compute_launch_plan(&sm(), &fp, t, ResourceKind::Registers);
                let rtb = f64::from(fp.regs_per_block());
                let used =
                    f64::from(p.unshared) * rtb + f64::from(p.shared_pairs) * (1.0 + t.t()) * rtb;
                assert!(
                    used <= f64::from(sm().registers) + 1e-6,
                    "{p:?} uses {used}"
                );
            }
        }
    }

    #[test]
    fn zero_resource_kernel_degenerates() {
        let p = smem_plan(128, 0, 90.0);
        assert!(p.is_degenerate());
        assert_eq!(p.max_blocks, p.baseline_blocks);
    }

    #[test]
    fn oversized_block_degenerates() {
        let p = smem_plan(128, 40_000, 90.0); // > 16 KB scratchpad
        assert_eq!(p.max_blocks, 0);
        assert!(p.is_degenerate());
    }

    #[test]
    fn set3_thread_limited_kernel_gets_no_pairs() {
        // Register-light kernel limited by max threads: sharing must not
        // launch anything extra (paper Sec. VI-B2).
        let p = reg_plan(512, 8, 90.0); // reg limit: 32768/4096 = 8, thread limit: 3
        assert_eq!(p.baseline_blocks, 3);
        assert_eq!(p.max_blocks, 3);
        assert!(p.is_degenerate());
    }
}
