//! Resource sharing: launch-plan arithmetic, pair locks, ownership.
//!
//! This module implements paper Sec. III (the sharing mechanism and the
//! launch-count equations) and the ownership machinery of Sec. IV.

mod locks;
mod plan;

pub use locks::{PairMember, RegAccess, RegPairLocks, SmemPairLock};
pub use plan::{compute_launch_plan, LaunchPlan};

use serde::{Deserialize, Serialize};

/// Which SM resource a sharing configuration targets. The paper evaluates
/// both, separately (register sharing on Set-1, scratchpad sharing on Set-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Register-file sharing (paper Sec. III-A).
    Registers,
    /// Scratchpad (shared-memory) sharing (paper Sec. III-B).
    Scratchpad,
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResourceKind::Registers => "registers",
            ResourceKind::Scratchpad => "scratchpad",
        })
    }
}

/// The sharing threshold `t`, `0 < t ≤ 1` (paper Sec. III-C, notation 6).
///
/// A shared pair of blocks is allocated `(1+t)·Rtb` units: `t·Rtb` private to
/// each member, `(1−t)·Rtb` shared. The *percentage of sharing* the paper
/// quotes is `(1−t)·100` — so the headline "90% sharing" configuration is
/// `t = 0.1`, and `t = 1` degenerates to no sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Threshold(f64);

impl Threshold {
    /// Construct a threshold; `t` must satisfy `0 < t ≤ 1`.
    pub fn new(t: f64) -> Result<Self, ThresholdError> {
        if t > 0.0 && t <= 1.0 && t.is_finite() {
            Ok(Threshold(t))
        } else {
            Err(ThresholdError(t))
        }
    }

    /// Construct from a sharing percentage (`90` → `t = 0.1`). `pct` must be
    /// in `[0, 100)`.
    pub fn from_sharing_pct(pct: f64) -> Result<Self, ThresholdError> {
        Self::new(1.0 - pct / 100.0)
    }

    /// The raw `t` value.
    #[inline]
    pub fn t(self) -> f64 {
        self.0
    }

    /// Sharing percentage `(1−t)·100` as reported in paper Tables V–VIII.
    #[inline]
    pub fn sharing_pct(self) -> f64 {
        (1.0 - self.0) * 100.0
    }

    /// The paper's headline configuration: `t = 0.1`, i.e. 90% sharing
    /// ("For all our experimental results, we use the threshold value as
    /// 0.1, unless otherwise specified", Sec. VI-A).
    pub fn paper_default() -> Self {
        Threshold(0.1)
    }

    /// Private units per member out of a per-block requirement `rtb`:
    /// `⌊t·Rtb⌋`. Units at or below this boundary are accessed lock-free.
    #[inline]
    pub fn private_units(self, rtb: u32) -> u32 {
        (self.0 * f64::from(rtb)).floor() as u32
    }
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={} ({:.0}% sharing)", self.0, self.sharing_pct())
    }
}

/// Error for out-of-domain thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdError(pub f64);

impl std::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "threshold t must satisfy 0 < t ≤ 1, got {}", self.0)
    }
}

impl std::error::Error for ThresholdError {}

/// The launch footprint of a kernel — the only kernel properties occupancy
/// and launch planning depend on (the columns of paper Tables II–IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelFootprint {
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Scratchpad bytes per block.
    pub smem_per_block: u32,
}

impl KernelFootprint {
    /// Extract the footprint of an ISA kernel.
    pub fn of(kernel: &grs_isa::Kernel) -> Self {
        KernelFootprint {
            threads_per_block: kernel.threads_per_block,
            regs_per_thread: kernel.regs_per_thread,
            smem_per_block: kernel.smem_per_block,
        }
    }

    /// `Rtb` for the register resource.
    #[inline]
    pub fn regs_per_block(&self) -> u32 {
        self.regs_per_thread * self.threads_per_block
    }

    /// Per-block requirement of `kind` in that resource's units.
    #[inline]
    pub fn per_block(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Registers => self.regs_per_block(),
            ResourceKind::Scratchpad => self.smem_per_block,
        }
    }

    /// Warps per block.
    #[inline]
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(grs_isa::WARP_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_domain() {
        assert!(Threshold::new(0.1).is_ok());
        assert!(Threshold::new(1.0).is_ok());
        assert!(Threshold::new(0.0).is_err());
        assert!(Threshold::new(-0.5).is_err());
        assert!(Threshold::new(1.5).is_err());
        assert!(Threshold::new(f64::NAN).is_err());
    }

    #[test]
    fn sharing_pct_roundtrip() {
        let t = Threshold::from_sharing_pct(90.0).unwrap();
        assert!((t.t() - 0.1).abs() < 1e-12);
        assert!((t.sharing_pct() - 90.0).abs() < 1e-12);
        assert_eq!(Threshold::paper_default().t(), 0.1);
    }

    #[test]
    fn private_units_floor() {
        let t = Threshold::new(0.1).unwrap();
        // hotspot: Rtb = 9216 → 921 private units per member.
        assert_eq!(t.private_units(9216), 921);
        // Rw for a 36-reg warp: 1152 → 115 private registers.
        assert_eq!(t.private_units(1152), 115);
    }

    #[test]
    fn footprint_arithmetic() {
        let f = KernelFootprint {
            threads_per_block: 256,
            regs_per_thread: 36,
            smem_per_block: 1024,
        };
        assert_eq!(f.regs_per_block(), 9216);
        assert_eq!(f.per_block(ResourceKind::Registers), 9216);
        assert_eq!(f.per_block(ResourceKind::Scratchpad), 1024);
        assert_eq!(f.warps_per_block(), 8);
    }
}
