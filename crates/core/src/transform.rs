//! Unrolling and Reordering of Register Declarations (paper Sec. IV-B).
//!
//! Under register sharing, a warp's registers are classified private/shared
//! by *declaration sequence number* against the `Rw·t` boundary. A non-owner
//! warp stalls at its first shared-register access, so the more instructions
//! it can execute using only low-sequence registers, the more latency it can
//! hide before busy-waiting. The paper's compiler pass "unrolls" grouped
//! declarations (`.reg .u32 $r<27>` → 27 individual declarations) and
//! reorders them by **first use**: the register used earliest in the static
//! program gets sequence number 0 (see the sgemm PTXPlus example in paper
//! Fig. 7, where `$p0`/`$r124` move from sequence numbers 31/35 to 1/3).
//!
//! In our ISA the grouped/unrolled distinction is already implicit (the
//! kernel carries an explicit `decl_seq` table), so the pass is exactly the
//! reordering: a permutation assigning sequence numbers in first-use order,
//! with never-used registers appended afterwards in their original relative
//! order.

use grs_isa::Kernel;

/// Report returned by [`reorder_declarations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderReport {
    /// Whether the pass changed the declaration order.
    pub changed: bool,
    /// Number of registers that are used by at least one instruction.
    pub used_registers: u32,
    /// Number of declared-but-unused registers (appended at the tail).
    pub unused_registers: u32,
}

/// Apply the paper's declaration-reordering pass to `kernel` in place.
///
/// After the pass, for any boundary `k`, the set of registers with sequence
/// number `< k` is exactly the `k` earliest-first-used registers — the order
/// that maximizes the number of instructions a non-owner warp executes
/// before first touching a shared register, for *every* threshold `t`
/// simultaneously.
pub fn reorder_declarations(kernel: &mut Kernel) -> ReorderReport {
    let n = kernel.regs_per_thread as usize;
    // First-use order: walk instructions; within an instruction the
    // destination is visited before sources, matching the paper's Fig. 7
    // where the predicate destination `$p0` receives the first sequence
    // number.
    let mut order: Vec<u16> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for instr in &kernel.program.instrs {
        for reg in instr.dst.into_iter().chain(instr.sources().iter().copied()) {
            let i = reg.index();
            if i < n && !seen[i] {
                seen[i] = true;
                order.push(reg.0);
            }
        }
    }
    let used = order.len() as u32;
    // Unused registers keep their original relative order after all used
    // ones.
    for (i, &is_used) in seen.iter().enumerate() {
        if !is_used {
            order.push(i as u16);
        }
    }
    let mut new_seq = vec![0u16; n];
    for (seq, &reg) in order.iter().enumerate() {
        new_seq[reg as usize] = seq as u16;
    }
    let changed = new_seq != kernel.decl_seq;
    kernel.set_decl_order(new_seq);
    ReorderReport {
        changed,
        used_registers: used,
        unused_registers: n as u32 - used,
    }
}

/// Number of static instructions from program start that use only registers
/// with sequence number `< boundary` — the quantity the pass maximizes
/// (instructions a fresh non-owner warp retires before first stalling on a
/// shared register). Control instructions without register operands never
/// stall.
pub fn instrs_before_shared_access(kernel: &Kernel, boundary: u16) -> usize {
    for (pc, instr) in kernel.program.instrs.iter().enumerate() {
        if instr.operands().any(|r| kernel.seq_of(r) >= boundary) {
            return pc;
        }
    }
    kernel.program.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::{Instr, KernelBuilder, Op, Program, Reg};

    /// Model of the paper's Fig. 7: the first instruction uses registers
    /// whose default sequence numbers are high; after the pass they are low.
    #[test]
    fn fig7_style_reordering() {
        let mut k = KernelBuilder::new("sgemm-ish")
            .regs_per_thread(40)
            .ialu(1)
            .build();
        // Overwrite program: first instruction uses $r31 and $r35 (late in
        // declaration order, like $p0 seq 31 / $r124 seq 35 in the paper).
        k.program = Program::new(vec![
            Instr::new(Op::IAlu, Some(Reg(31)), &[Reg(35)]),
            Instr::new(Op::IAlu, Some(Reg(16)), &[Reg(35)]),
            Instr::new(Op::Exit, None, &[]),
        ]);
        assert_eq!(k.seq_of(Reg(31)), 31);
        assert_eq!(k.seq_of(Reg(35)), 35);
        let report = reorder_declarations(&mut k);
        assert!(report.changed);
        assert_eq!(report.used_registers, 3);
        assert_eq!(report.unused_registers, 37);
        // Destination first, then source — $r31 → seq 0, $r35 → seq 1.
        assert_eq!(k.seq_of(Reg(31)), 0);
        assert_eq!(k.seq_of(Reg(35)), 1);
        assert_eq!(k.seq_of(Reg(16)), 2);
        grs_isa::validate(&k).unwrap();
    }

    #[test]
    fn pass_extends_private_prefix() {
        // Program whose early instructions use high registers: with boundary
        // 4 the unoptimized kernel stalls immediately; the optimized one
        // retires both leading instructions first.
        let mut k = KernelBuilder::new("t").regs_per_thread(16).ialu(1).build();
        k.program = Program::new(vec![
            Instr::new(Op::FAdd, Some(Reg(12)), &[Reg(13)]),
            Instr::new(Op::FAdd, Some(Reg(14)), &[Reg(12)]),
            Instr::new(Op::FAdd, Some(Reg(0)), &[Reg(1), Reg(2)]),
            Instr::new(Op::Exit, None, &[]),
        ]);
        assert_eq!(instrs_before_shared_access(&k, 4), 0);
        reorder_declarations(&mut k);
        assert_eq!(instrs_before_shared_access(&k, 4), 2);
    }

    #[test]
    fn pass_is_idempotent() {
        let mut k = KernelBuilder::new("t")
            .regs_per_thread(12)
            .ffma(5)
            .ialu(3)
            .build();
        reorder_declarations(&mut k);
        let first = k.decl_seq.clone();
        let report = reorder_declarations(&mut k);
        assert!(!report.changed);
        assert_eq!(k.decl_seq, first);
    }

    #[test]
    fn result_is_always_a_permutation() {
        let mut k = KernelBuilder::new("t")
            .regs_per_thread(9)
            .ialu(2)
            .sfu(1)
            .build();
        reorder_declarations(&mut k);
        let mut sorted = k.decl_seq.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..9).collect::<Vec<u16>>());
        grs_isa::validate(&k).unwrap();
    }

    #[test]
    fn unused_registers_keep_relative_order() {
        let mut k = KernelBuilder::new("t").regs_per_thread(6).ialu(0).build();
        k.program = Program::new(vec![
            Instr::new(Op::IAlu, Some(Reg(4)), &[]),
            Instr::new(Op::Exit, None, &[]),
        ]);
        reorder_declarations(&mut k);
        // Used: r4 → 0. Unused r0,r1,r2,r3,r5 get 1..5 in original order.
        assert_eq!(k.seq_of(Reg(4)), 0);
        assert_eq!(k.seq_of(Reg(0)), 1);
        assert_eq!(k.seq_of(Reg(1)), 2);
        assert_eq!(k.seq_of(Reg(5)), 5);
    }

    #[test]
    fn monotone_improvement_at_every_boundary() {
        // The optimized order is optimal: at every boundary it retires at
        // least as many leading instructions as the identity order.
        let mut k = KernelBuilder::new("t")
            .regs_per_thread(20)
            .ffma(4)
            .ialu(4)
            .build();
        k.program.instrs.rotate_right(1); // scramble first-use order a bit

        // The rotate moved Exit to the front; rotate back for validity.
        k.program.instrs.rotate_left(1);
        let before: Vec<usize> = (0..20)
            .map(|b| instrs_before_shared_access(&k, b as u16))
            .collect();
        reorder_declarations(&mut k);
        let after: Vec<usize> = (0..20)
            .map(|b| instrs_before_shared_access(&k, b as u16))
            .collect();
        for (b, (x, y)) in before.iter().zip(&after).enumerate() {
            assert!(y >= x, "boundary {b}: {y} < {x}");
        }
    }
}
