//! Warp-scheduling policies.
//!
//! Each SM has `SmConfig::schedulers` scheduler units; warps are statically
//! partitioned among them by slot index (GPGPU-Sim's arrangement). Every
//! cycle each unit picks at most one *ready* warp. The policies:
//!
//! * **LRR** — loose round robin, the paper's baseline (Table I).
//! * **GTO** — greedy-then-oldest: keep issuing the same warp until it
//!   stalls, then fall back to the oldest ready warp (by dynamic id).
//! * **Two-Level** — Narasiman et al.'s fetch groups: round robin inside an
//!   active group, switch groups when the active group has no ready warp.
//! * **OWF** — the paper's Owner-Warp-First (Sec. IV-A): strict priority
//!   *owner > unshared > non-owner*, ties broken by dynamic warp id. With no
//!   sharing active every warp is unshared, so OWF degenerates to
//!   oldest-first — which is why the paper observes Shared-OWF ≈
//!   Unshared-GTO on Set-3 (Sec. VI-B2).

use serde::{Deserialize, Serialize};

/// Scheduling class of a warp under resource sharing (paper Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WarpClass {
    /// Warp of an owner block (holds shared resources): highest priority —
    /// finishing it unblocks its dependent non-owner warps.
    Owner,
    /// Warp of an unshared block.
    Unshared,
    /// Warp of a non-owner shared block: lowest priority, used to fill
    /// stall cycles only.
    NonOwner,
}

impl WarpClass {
    /// OWF priority rank; lower is scheduled first.
    #[inline]
    pub fn rank(self) -> u8 {
        match self {
            WarpClass::Owner => 0,
            WarpClass::Unshared => 1,
            WarpClass::NonOwner => 2,
        }
    }
}

/// A scheduler's per-cycle view of one warp slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpView {
    /// Slot index within the SM (determines the scheduler partition).
    pub slot: usize,
    /// Monotonic launch-order id; smaller = older ("dynamic warp id").
    pub dynamic_id: u64,
    /// Sharing class for OWF.
    pub class: WarpClass,
    /// Can this warp issue an instruction this cycle?
    pub ready: bool,
}

/// Which scheduling policy to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Loose round robin (baseline).
    Lrr,
    /// Greedy-then-oldest.
    Gto,
    /// Two-level with the given fetch-group size (paper uses 8).
    TwoLevel {
        /// Warps per fetch group.
        group_size: u32,
    },
    /// Owner-warp-first (the paper's optimization).
    Owf,
}

impl SchedulerKind {
    /// Canonical name used in figures and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Lrr => "LRR",
            SchedulerKind::Gto => "GTO",
            SchedulerKind::TwoLevel { .. } => "2LV",
            SchedulerKind::Owf => "OWF",
        }
    }

    /// Instantiate per-unit state for an SM with `num_slots` warp slots and
    /// `units` scheduler units.
    pub fn build(self, num_slots: usize, units: usize) -> Scheduler {
        match self {
            SchedulerKind::Lrr => Scheduler::Lrr {
                next: vec![0; units],
            },
            SchedulerKind::Gto => Scheduler::Gto {
                last: vec![None; units],
            },
            SchedulerKind::TwoLevel { group_size } => Scheduler::TwoLevel {
                group_size: group_size.max(1) as usize,
                active_group: vec![0; units],
                next_in_group: vec![0; units],
                num_slots,
            },
            SchedulerKind::Owf => Scheduler::Owf {
                last: vec![None; units],
            },
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scheduler state (one instance per SM; internal vectors are per unit).
#[derive(Debug, Clone)]
pub enum Scheduler {
    /// Loose round robin: rotate a pointer over the unit's slots.
    Lrr {
        /// Next slot to consider, per unit.
        next: Vec<usize>,
    },
    /// Greedy-then-oldest.
    Gto {
        /// Last issued slot, per unit.
        last: Vec<Option<usize>>,
    },
    /// Two-level warp scheduling.
    TwoLevel {
        /// Fetch-group size in warps.
        group_size: usize,
        /// Active group per unit.
        active_group: Vec<usize>,
        /// RR pointer within the active group, per unit.
        next_in_group: Vec<usize>,
        /// Total SM warp slots.
        num_slots: usize,
    },
    /// Owner-warp-first: strict class priority, greedy within a class (so
    /// that with no sharing active it degenerates to GTO, as the paper
    /// observes on Set-3).
    Owf {
        /// Last issued slot, per unit.
        last: Vec<Option<usize>>,
    },
}

impl Scheduler {
    /// Per-cycle bookkeeping for a cycle in which the readiness scan found
    /// no issuable warp: exactly the state transitions [`Self::pick`] would
    /// make for every unit over an all-unready view, without the per-unit
    /// view walks. Greedy policies (GTO, OWF) lose their streak — the
    /// greedy warp stalled — while the rotation pointers of LRR and
    /// Two-Level stay put, as `pick` only advances them on a successful
    /// pick. Because a second ready-less cycle is a no-op for every policy,
    /// the fast-forward engine can skip such cycles without touching
    /// scheduler state at all.
    pub fn note_idle_cycle(&mut self) {
        match self {
            Scheduler::Lrr { .. } | Scheduler::TwoLevel { .. } => {}
            Scheduler::Gto { last } | Scheduler::Owf { last } => {
                for l in last.iter_mut() {
                    *l = None;
                }
            }
        }
    }

    /// Pick a warp for scheduler `unit` among `views` (the full SM view;
    /// the policy only considers slots with `slot % units == unit`). Returns
    /// the chosen slot. `views` must be sorted by `slot` (the simulator's
    /// natural order).
    pub fn pick(&mut self, unit: usize, units: usize, views: &[WarpView]) -> Option<usize> {
        debug_assert!(views.windows(2).all(|w| w[0].slot < w[1].slot));
        let mine = |v: &WarpView| v.slot % units == unit;
        match self {
            Scheduler::Lrr { next } => {
                let n = views.len();
                if n == 0 {
                    return None;
                }
                let start = next[unit] % n;
                for off in 0..n {
                    let v = &views[(start + off) % n];
                    if mine(v) && v.ready {
                        next[unit] = (start + off + 1) % n;
                        return Some(v.slot);
                    }
                }
                None
            }
            Scheduler::Gto { last } => {
                if let Some(slot) = last[unit] {
                    if let Some(v) = views.iter().find(|v| v.slot == slot) {
                        if v.ready && mine(v) {
                            return Some(slot);
                        }
                    }
                }
                let pick = views
                    .iter()
                    .filter(|v| mine(v) && v.ready)
                    .min_by_key(|v| v.dynamic_id)
                    .map(|v| v.slot);
                last[unit] = pick;
                pick
            }
            Scheduler::TwoLevel {
                group_size,
                active_group,
                next_in_group,
                num_slots,
            } => {
                if *num_slots == 0 {
                    return None;
                }
                let groups = num_slots.div_ceil(*group_size).max(1);
                // Try the active group first, then rotate through the rest.
                for g_off in 0..groups {
                    let g = (active_group[unit] + g_off) % groups;
                    let lo = g * *group_size;
                    let hi = (lo + *group_size).min(*num_slots);
                    let width = hi.saturating_sub(lo);
                    if width == 0 {
                        continue;
                    }
                    // A freshly-entered group starts its round robin at the
                    // beginning; the active group resumes from its pointer.
                    let start = if g == active_group[unit] {
                        next_in_group[unit] % width
                    } else {
                        0
                    };
                    for off in 0..width {
                        let slot = lo + (start + off) % width;
                        if let Some(v) = views.iter().find(|v| v.slot == slot) {
                            if mine(v) && v.ready {
                                active_group[unit] = g;
                                next_in_group[unit] = ((slot - lo) + 1) % width;
                                return Some(slot);
                            }
                        }
                    }
                }
                None
            }
            Scheduler::Owf { last } => {
                let best = views
                    .iter()
                    .filter(|v| mine(v) && v.ready)
                    .min_by_key(|v| (v.class.rank(), v.dynamic_id));
                let Some(best) = best else {
                    // The greedy warp lost its streak; forget it so the next
                    // pick falls to the oldest ready warp (matching GTO's
                    // behaviour when everything stalls).
                    last[unit] = None;
                    return None;
                };
                // Greedy within the best class: keep issuing the previously
                // chosen warp while it stays ready and no higher class shows
                // up.
                if let Some(slot) = last[unit] {
                    if let Some(v) = views.iter().find(|v| v.slot == slot) {
                        if v.ready && mine(v) && v.class.rank() <= best.class.rank() {
                            return Some(slot);
                        }
                    }
                }
                last[unit] = Some(best.slot);
                Some(best.slot)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(slot: usize, id: u64, class: WarpClass, ready: bool) -> WarpView {
        WarpView {
            slot,
            dynamic_id: id,
            class,
            ready,
        }
    }

    fn all_unshared(ready: &[bool]) -> Vec<WarpView> {
        ready
            .iter()
            .enumerate()
            .map(|(i, &r)| v(i, i as u64, WarpClass::Unshared, r))
            .collect()
    }

    #[test]
    fn lrr_rotates() {
        let mut s = SchedulerKind::Lrr.build(4, 1);
        let views = all_unshared(&[true, true, true, true]);
        assert_eq!(s.pick(0, 1, &views), Some(0));
        assert_eq!(s.pick(0, 1, &views), Some(1));
        assert_eq!(s.pick(0, 1, &views), Some(2));
        assert_eq!(s.pick(0, 1, &views), Some(3));
        assert_eq!(s.pick(0, 1, &views), Some(0));
    }

    #[test]
    fn lrr_skips_unready() {
        let mut s = SchedulerKind::Lrr.build(4, 1);
        let views = all_unshared(&[false, true, false, true]);
        assert_eq!(s.pick(0, 1, &views), Some(1));
        assert_eq!(s.pick(0, 1, &views), Some(3));
        assert_eq!(s.pick(0, 1, &views), Some(1));
    }

    #[test]
    fn lrr_partitions_by_unit() {
        let mut s = SchedulerKind::Lrr.build(4, 2);
        let views = all_unshared(&[true, true, true, true]);
        // Unit 0 owns even slots, unit 1 odd slots.
        assert_eq!(s.pick(0, 2, &views), Some(0));
        assert_eq!(s.pick(1, 2, &views), Some(1));
        assert_eq!(s.pick(0, 2, &views), Some(2));
        assert_eq!(s.pick(1, 2, &views), Some(3));
    }

    #[test]
    fn gto_is_greedy() {
        let mut s = SchedulerKind::Gto.build(3, 1);
        let mut views = all_unshared(&[true, true, true]);
        assert_eq!(s.pick(0, 1, &views), Some(0)); // oldest
        assert_eq!(s.pick(0, 1, &views), Some(0)); // greedy
        views[0].ready = false;
        assert_eq!(s.pick(0, 1, &views), Some(1)); // falls to next oldest
        views[0].ready = true;
        assert_eq!(s.pick(0, 1, &views), Some(1)); // stays greedy on 1
    }

    #[test]
    fn gto_picks_oldest_by_dynamic_id_not_slot() {
        let mut s = SchedulerKind::Gto.build(3, 1);
        let views = vec![
            v(0, 30, WarpClass::Unshared, true),
            v(1, 10, WarpClass::Unshared, true),
            v(2, 20, WarpClass::Unshared, true),
        ];
        assert_eq!(s.pick(0, 1, &views), Some(1));
    }

    #[test]
    fn owf_priority_order() {
        let mut s = SchedulerKind::Owf.build(3, 1);
        let views = vec![
            v(0, 0, WarpClass::NonOwner, true),
            v(1, 1, WarpClass::Unshared, true),
            v(2, 2, WarpClass::Owner, true),
        ];
        assert_eq!(s.pick(0, 1, &views), Some(2)); // owner first
        let views2 = vec![
            v(0, 0, WarpClass::NonOwner, true),
            v(1, 1, WarpClass::Unshared, true),
            v(2, 2, WarpClass::Owner, false),
        ];
        assert_eq!(s.pick(0, 1, &views2), Some(1)); // then unshared
        let views3 = vec![
            v(0, 0, WarpClass::NonOwner, true),
            v(1, 1, WarpClass::Unshared, false),
            v(2, 2, WarpClass::Owner, false),
        ];
        assert_eq!(s.pick(0, 1, &views3), Some(0)); // non-owner fills stalls
    }

    #[test]
    fn owf_ties_break_by_dynamic_id() {
        let mut s = SchedulerKind::Owf.build(2, 1);
        let views = vec![
            v(0, 9, WarpClass::Unshared, true),
            v(1, 3, WarpClass::Unshared, true),
        ];
        assert_eq!(s.pick(0, 1, &views), Some(1));
    }

    #[test]
    fn two_level_stays_in_group_then_switches() {
        let mut s = SchedulerKind::TwoLevel { group_size: 2 }.build(4, 1);
        let mut views = all_unshared(&[true, true, true, true]);
        // Group 0 = slots {0,1}: round robin inside.
        assert_eq!(s.pick(0, 1, &views), Some(0));
        assert_eq!(s.pick(0, 1, &views), Some(1));
        assert_eq!(s.pick(0, 1, &views), Some(0));
        // Group 0 all stalled → switch to group 1.
        views[0].ready = false;
        views[1].ready = false;
        assert_eq!(s.pick(0, 1, &views), Some(2));
        assert_eq!(s.pick(0, 1, &views), Some(3));
        // Group 0 wakes up but group 1 is active and still ready.
        views[0].ready = true;
        assert_eq!(s.pick(0, 1, &views), Some(2));
    }

    #[test]
    fn note_idle_cycle_matches_pick_on_unready_views() {
        // The fast-forward engine relies on two properties per policy:
        // (1) one ready-less cycle leaves the same state as `pick` on an
        //     all-unready view for every unit, and
        // (2) further ready-less cycles are no-ops (so they can be skipped).
        for kind in [
            SchedulerKind::Lrr,
            SchedulerKind::Gto,
            SchedulerKind::TwoLevel { group_size: 2 },
            SchedulerKind::Owf,
        ] {
            let mut via_pick = kind.build(4, 2);
            let mut via_note = kind.build(4, 2);
            // Build up some state with a ready phase.
            let ready = all_unshared(&[true, true, true, true]);
            for unit in 0..2 {
                assert_eq!(
                    via_pick.pick(unit, 2, &ready),
                    via_note.pick(unit, 2, &ready)
                );
            }
            // One all-unready cycle, both ways.
            let unready = all_unshared(&[false, false, false, false]);
            for unit in 0..2 {
                assert_eq!(via_pick.pick(unit, 2, &unready), None);
            }
            via_note.note_idle_cycle();
            // A second unready cycle must be a no-op.
            for unit in 0..2 {
                assert_eq!(via_pick.pick(unit, 2, &unready), None);
            }
            // Both must now behave identically on the next ready view.
            for unit in 0..2 {
                assert_eq!(
                    via_pick.pick(unit, 2, &ready),
                    via_note.pick(unit, 2, &ready),
                    "{kind:?} diverged after an idle cycle"
                );
            }
        }
    }

    #[test]
    fn empty_view_yields_none() {
        for kind in [
            SchedulerKind::Lrr,
            SchedulerKind::Gto,
            SchedulerKind::TwoLevel { group_size: 8 },
            SchedulerKind::Owf,
        ] {
            let mut s = kind.build(0, 2);
            assert_eq!(s.pick(0, 2, &[]), None);
            assert_eq!(s.pick(1, 2, &[]), None);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulerKind::Lrr.name(), "LRR");
        assert_eq!(SchedulerKind::Gto.name(), "GTO");
        assert_eq!(SchedulerKind::TwoLevel { group_size: 8 }.name(), "2LV");
        assert_eq!(SchedulerKind::Owf.name(), "OWF");
    }
}
