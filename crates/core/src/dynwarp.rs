//! Dynamic Warp Execution (paper Sec. IV-C).
//!
//! Extra non-owner warps can *increase* stalls on memory-bound kernels by
//! thrashing L1/L2. The paper throttles global-memory instructions issued by
//! non-owner warps with a per-SM probability, tuned online:
//!
//! * SM0 is the reference: it **never** issues non-owner memory instructions
//!   (probability pinned to 0).
//! * Every `period` cycles (1000 in the paper) each other SM compares the
//!   stall cycles it accumulated over the window with SM0's. More stalls
//!   than SM0 ⇒ probability decreases by `p`; fewer ⇒ increases by `p`
//!   (`p = 0.1`), saturating in `[0, 1]`.
//!
//! Initially every SM (except the reference) allows all memory instructions
//! (probability 1). Draws use a deterministic per-SM xorshift stream so a
//! simulation is reproducible.

use serde::{Deserialize, Serialize};

/// Per-GPU dynamic warp-execution throttle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynThrottle {
    probs: Vec<f64>,
    window_stalls: Vec<u64>,
    rng_state: Vec<u64>,
    /// Start of a pending idle span per SM: the cycle since which the SM has
    /// been asleep in the fast-forward engine, accumulating one stall per
    /// cycle that has not yet been added to `window_stalls`.
    idle_since: Vec<Option<u64>>,
    period: u64,
    step: f64,
    next_deadline: u64,
    enabled: bool,
}

impl DynThrottle {
    /// Paper parameters: 1000-cycle monitoring period, `p = 0.1`.
    pub const PAPER_PERIOD: u64 = 1000;
    /// Probability adjustment step.
    pub const PAPER_STEP: f64 = 0.1;

    /// Create a throttle for `num_sms` SMs with the paper's parameters.
    pub fn paper(num_sms: usize) -> Self {
        Self::new(num_sms, Self::PAPER_PERIOD, Self::PAPER_STEP, true)
    }

    /// Create a disabled throttle (every SM always allows non-owner memory
    /// instructions) — the "no Dyn" ablation configuration.
    pub fn disabled(num_sms: usize) -> Self {
        Self::new(num_sms, Self::PAPER_PERIOD, Self::PAPER_STEP, false)
    }

    /// Fully parameterized constructor.
    pub fn new(num_sms: usize, period: u64, step: f64, enabled: bool) -> Self {
        let mut probs = vec![1.0; num_sms];
        if enabled && !probs.is_empty() {
            probs[0] = 0.0; // SM0 is the suppressed reference
        }
        DynThrottle {
            probs,
            window_stalls: vec![0; num_sms],
            rng_state: (0..num_sms as u64)
                .map(|i| 0x9E37_79B9_7F4A_7C15 ^ (i + 1))
                .collect(),
            idle_since: vec![None; num_sms],
            period,
            step,
            next_deadline: period,
            enabled,
        }
    }

    /// Is the throttle active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current probability for `sm`.
    #[inline]
    pub fn probability(&self, sm: usize) -> f64 {
        self.probs[sm]
    }

    /// Record that `sm` observed a stall cycle (called by the simulator).
    #[inline]
    pub fn note_stall(&mut self, sm: usize) {
        self.window_stalls[sm] += 1;
    }

    /// Should `sm` be allowed to issue a non-owner global-memory instruction
    /// this cycle? Deterministic: consumes one draw from the SM's stream.
    pub fn allow(&mut self, sm: usize) -> bool {
        if !self.enabled {
            return true;
        }
        let p = self.probs[sm];
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // xorshift64* : cheap, deterministic, well-distributed.
        let s = &mut self.rng_state[sm];
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        let draw = (*s >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }

    /// Advance to `cycle`; at each window boundary, compare every SM's
    /// window stalls with SM0's and adjust probabilities (paper Sec. IV-C).
    pub fn on_cycle(&mut self, cycle: u64) {
        if !self.enabled || cycle < self.next_deadline {
            return;
        }
        self.next_deadline = cycle + self.period;
        self.close_window();
    }

    /// Compare every SM's window stalls with SM0's, adjust probabilities,
    /// and reset the window counters.
    fn close_window(&mut self) {
        let reference = self.window_stalls.first().copied().unwrap_or(0);
        for sm in 1..self.probs.len() {
            if self.window_stalls[sm] > reference {
                self.probs[sm] = (self.probs[sm] - self.step).max(0.0);
            } else if self.window_stalls[sm] < reference {
                self.probs[sm] = (self.probs[sm] + self.step).min(1.0);
            }
        }
        for w in &mut self.window_stalls {
            *w = 0;
        }
    }

    /// Next window deadline, `u64::MAX` when the throttle is disabled (no
    /// window ever closes). The sharded engine uses this as its free-run
    /// horizon: no SM may step past a deadline before the window closes.
    #[inline]
    pub fn next_deadline(&self) -> u64 {
        if self.enabled {
            self.next_deadline
        } else {
            u64::MAX
        }
    }

    /// Current per-SM probabilities (sharded engine: broadcast source after
    /// a window close on the coordinator's instance).
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Shard-clone side of a window close: credit a sleeping `sm`'s idle
    /// cycles through `deadline` (exactly as [`Self::advance_to`] would at
    /// that boundary), then take and reset its window stall count. The
    /// coordinator drains every SM from its owning clone and feeds the
    /// counts to [`Self::close_window_with`] on the master instance.
    pub fn drain_window_stalls(&mut self, sm: usize, deadline: u64) -> u64 {
        if let Some(s) = self.idle_since[sm] {
            if s <= deadline {
                self.window_stalls[sm] += deadline - s + 1;
                self.idle_since[sm] = Some(deadline + 1);
            }
        }
        std::mem::take(&mut self.window_stalls[sm])
    }

    /// Master side of a sharded window close: adjust probabilities from
    /// externally collected per-SM window stall counts (index 0 is the
    /// reference SM, as in [`Self::close_window`]) and advance the deadline.
    /// Requires an enabled throttle.
    pub fn close_window_with(&mut self, stalls: &[u64]) {
        debug_assert!(self.enabled);
        debug_assert_eq!(stalls.len(), self.probs.len());
        let reference = stalls.first().copied().unwrap_or(0);
        for (prob, &stall) in self.probs.iter_mut().zip(stalls).skip(1) {
            if stall > reference {
                *prob = (*prob - self.step).max(0.0);
            } else if stall < reference {
                *prob = (*prob + self.step).min(1.0);
            }
        }
        self.next_deadline += self.period;
    }

    /// Shard-clone side of a window close, after
    /// [`Self::drain_window_stalls`]: adopt the master's post-close
    /// probabilities and advance the deadline. Window counters were already
    /// reset by the drain.
    pub fn sync_after_window(&mut self, probs: &[f64]) {
        debug_assert!(self.enabled);
        self.probs.copy_from_slice(probs);
        self.next_deadline += self.period;
    }

    /// Fast-forward support: `sm` goes to sleep starting at cycle `from`,
    /// idle with live warps. While asleep it would call [`Self::note_stall`]
    /// once per cycle; instead the span is credited lazily — per window by
    /// [`Self::advance_to`], and on wake-up by [`Self::wake_sm`] — so window
    /// comparisons see exactly the per-cycle counts.
    pub fn sleep_sm(&mut self, sm: usize, from: u64) {
        debug_assert!(self.idle_since[sm].is_none(), "SM {sm} already asleep");
        self.idle_since[sm] = Some(from);
    }

    /// `sm` wakes at cycle `now` (it will be stepped normally this cycle):
    /// credit the stalls of its sleeping span `[since, now)`.
    pub fn wake_sm(&mut self, sm: usize, now: u64) {
        if let Some(since) = self.idle_since[sm].take() {
            debug_assert!(since <= now);
            self.window_stalls[sm] += now - since;
        }
    }

    /// Adopt `sm`'s live per-SM bookkeeping — window stall count, pending
    /// idle-span anchor and RNG stream position — from `src`. The sharded
    /// engine's span teardown uses this to fold each shard clone's state
    /// back into the master instance so a checkpoint taken at the span
    /// boundary carries the exact per-SM state the sequential loop would
    /// hold (probabilities and the deadline already live on the master via
    /// [`Self::close_window_with`]).
    pub fn adopt_sm(&mut self, sm: usize, src: &DynThrottle) {
        self.window_stalls[sm] = src.window_stalls[sm];
        self.idle_since[sm] = src.idle_since[sm];
        self.rng_state[sm] = src.rng_state[sm];
    }

    /// Fire every window boundary up to and including `now`, crediting
    /// sleeping SMs' idle stalls into each window first. Calling this once
    /// per simulated-or-skipped-to cycle is exactly equivalent to the
    /// per-cycle [`Self::note_stall`] + [`Self::on_cycle`] sequence of the
    /// reference loop.
    pub fn advance_to(&mut self, now: u64) {
        if !self.enabled {
            return;
        }
        while self.next_deadline <= now {
            let d = self.next_deadline;
            for (w, since) in self.window_stalls.iter_mut().zip(&mut self.idle_since) {
                if let Some(s) = since {
                    if *s <= d {
                        *w += d - *s + 1;
                        *since = Some(d + 1);
                    }
                }
            }
            self.next_deadline = d + self.period;
            self.close_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sm_is_always_suppressed() {
        let mut t = DynThrottle::paper(4);
        assert_eq!(t.probability(0), 0.0);
        for _ in 0..100 {
            assert!(!t.allow(0));
        }
    }

    #[test]
    fn other_sms_start_fully_allowed() {
        let mut t = DynThrottle::paper(4);
        for sm in 1..4 {
            assert_eq!(t.probability(sm), 1.0);
            assert!(t.allow(sm));
        }
    }

    #[test]
    fn disabled_throttle_always_allows() {
        let mut t = DynThrottle::disabled(2);
        assert!(t.allow(0));
        assert!(t.allow(1));
        t.note_stall(1);
        t.on_cycle(10_000);
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn stallier_sm_gets_throttled() {
        let mut t = DynThrottle::paper(2);
        for _ in 0..50 {
            t.note_stall(1); // SM1 stalls more than SM0
        }
        t.on_cycle(1000);
        assert!((t.probability(1) - 0.9).abs() < 1e-12);
        // Repeated pressure keeps lowering it...
        for round in 2..=12u64 {
            for _ in 0..50 {
                t.note_stall(1);
            }
            t.on_cycle(1000 * round);
        }
        // ...but saturates at 0.
        assert_eq!(t.probability(1), 0.0);
    }

    #[test]
    fn calmer_sm_recovers_probability() {
        let mut t = DynThrottle::paper(2);
        for _ in 0..10 {
            t.note_stall(1);
        }
        t.on_cycle(1000);
        assert!((t.probability(1) - 0.9).abs() < 1e-12);
        // Next window SM0 stalls more ⇒ SM1 recovers, saturating at 1.
        for round in 2..=5u64 {
            for _ in 0..10 {
                t.note_stall(0);
            }
            t.on_cycle(1000 * round);
        }
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn window_boundaries_respect_period() {
        let mut t = DynThrottle::paper(2);
        t.note_stall(1);
        t.on_cycle(999); // before the deadline: no adjustment
        assert_eq!(t.probability(1), 1.0);
        t.on_cycle(1000);
        assert!((t.probability(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn equal_stalls_leave_probability_unchanged() {
        let mut t = DynThrottle::paper(2);
        for _ in 0..7 {
            t.note_stall(0);
            t.note_stall(1);
        }
        t.on_cycle(1000);
        assert_eq!(t.probability(1), 1.0);
    }

    #[test]
    fn sleeping_spans_match_the_per_cycle_loop() {
        // An SM that sleeps across a span (crediting stalls lazily via
        // sleep_sm / advance_to / wake_sm) must leave the throttle in the
        // same state as one stepped every cycle with note_stall + on_cycle.
        // Spans straddle zero, one and several window boundaries.
        for enabled in [true, false] {
            for (from, to) in [
                (5u64, 9u64),
                (990, 1005),
                (1000, 3001),
                (2999, 3000),
                (10, 4010),
            ] {
                let mut fast = DynThrottle::new(3, 1000, 0.1, enabled);
                let mut slow = DynThrottle::new(3, 1000, 0.1, enabled);
                // Shared prefix processed cycle by cycle, with uneven stall
                // pressure so probabilities move.
                for c in 0..from {
                    for t in [&mut slow, &mut fast] {
                        t.note_stall(1);
                        t.on_cycle(c);
                    }
                }
                // Reference: SMs 0 and 2 stall every cycle of the span.
                for c in from..to {
                    slow.note_stall(0);
                    slow.note_stall(2);
                    slow.on_cycle(c);
                }
                // Fast path: both sleep at `from`; SM2 wakes mid-span and
                // stalls through the rest per-cycle, SM0 sleeps to the end.
                let mid = from + (to - from) / 2;
                fast.sleep_sm(0, from);
                fast.sleep_sm(2, from);
                fast.advance_to(mid.saturating_sub(1));
                fast.wake_sm(2, mid);
                for c in mid..to {
                    fast.note_stall(2);
                    fast.advance_to(c);
                }
                fast.wake_sm(0, to);
                fast.advance_to(to - 1);
                assert_eq!(fast.probs, slow.probs, "enabled={enabled} {from}..{to}");
                assert_eq!(
                    fast.window_stalls, slow.window_stalls,
                    "enabled={enabled} {from}..{to}"
                );
                assert_eq!(
                    fast.next_deadline, slow.next_deadline,
                    "enabled={enabled} {from}..{to}"
                );
                assert_eq!(fast.rng_state, slow.rng_state);
            }
        }
    }

    #[test]
    fn sharded_window_close_matches_the_sequential_close() {
        // The sharded engine splits a window close across per-shard clones
        // (drain_window_stalls) and a master (close_window_with +
        // sync_after_window broadcast). Driving that protocol must leave
        // every instance with the probabilities and deadline the sequential
        // advance_to path computes from the same per-cycle history.
        let mut seq = DynThrottle::new(4, 1000, 0.1, true);
        // Clone A owns SMs 0 and 2, clone B owns SMs 1 and 3.
        let mut master = DynThrottle::new(4, 1000, 0.1, true);
        let mut a = master.clone();
        let mut b = master.clone();
        for window in 0u64..3 {
            let base = window * 1000;
            // SM1 stalls 40/window, SM3 stalls 10/window, SM2 sleeps the
            // whole window, SM0 (reference) stalls 20/window.
            for _ in 0..20 {
                seq.note_stall(0);
                a.note_stall(0);
            }
            for _ in 0..40 {
                seq.note_stall(1);
                b.note_stall(1);
            }
            for _ in 0..10 {
                seq.note_stall(3);
                b.note_stall(3);
            }
            if window == 0 {
                seq.sleep_sm(2, 5);
                a.sleep_sm(2, 5);
            }
            seq.advance_to(base + 1000);
            let deadline = base + 1000;
            let stalls = [
                a.drain_window_stalls(0, deadline),
                b.drain_window_stalls(1, deadline),
                a.drain_window_stalls(2, deadline),
                b.drain_window_stalls(3, deadline),
            ];
            master.close_window_with(&stalls);
            let probs = master.probs().to_vec();
            a.sync_after_window(&probs);
            b.sync_after_window(&probs);
        }
        assert_eq!(master.probs(), seq.probs());
        assert_eq!(a.probs(), seq.probs());
        assert_eq!(b.probs(), seq.probs());
        assert_eq!(master.next_deadline(), seq.next_deadline());
        assert_eq!(a.next_deadline(), seq.next_deadline());
        // The sleeper's pending span was re-anchored identically.
        assert_eq!(a.idle_since[2], seq.idle_since[2]);
    }

    #[test]
    fn disabled_throttle_reports_no_deadline() {
        assert_eq!(DynThrottle::disabled(2).next_deadline(), u64::MAX);
        assert_eq!(DynThrottle::paper(2).next_deadline(), 1000);
    }

    #[test]
    fn draws_are_deterministic_across_instances() {
        let mut a = DynThrottle::new(2, 1000, 0.1, true);
        let mut b = DynThrottle::new(2, 1000, 0.1, true);
        // Force an intermediate probability so draws matter.
        for _ in 0..5 {
            a.note_stall(1);
            b.note_stall(1);
        }
        a.on_cycle(1000);
        b.on_cycle(1000);
        for _ in 0..64 {
            assert_eq!(a.allow(1), b.allow(1));
        }
    }
}
