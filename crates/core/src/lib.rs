//! # grs-core — the resource-sharing runtime
//!
//! This crate is the paper's primary contribution as a reusable library:
//! everything *Improving GPU Performance Through Resource Sharing* (Jatala,
//! Anantpur, Karkare; HPDC'16) adds on top of a baseline GPU, expressed as
//! pure, deterministic policy objects that a timing simulator (or, in
//! principle, RTL) drives:
//!
//! * [`config`] — the Table I machine description.
//! * [`occupancy`](mod@occupancy) — block-residency and resource-waste
//!   arithmetic (paper Sec. I-A, Fig. 1).
//! * [`sharing`] — the launch-plan equations of Sec. III-C (`U + S = ⌊R/Rtb⌋`,
//!   `U·Rtb + S·Rtb(1+t) ≤ R`, `M = U + 2S`), the pair-lock automata of
//!   Figs. 3–4 with the barrier-deadlock avoidance rule of Fig. 5, and
//!   block-pair ownership tracking/transfer (Sec. IV).
//! * [`sched`] — warp-scheduling policies: LRR, GTO, Two-Level and the
//!   paper's Owner-Warp-First (OWF).
//! * [`transform`] — the "Unrolling and Reordering of Register Declarations"
//!   compiler pass (Sec. IV-B, Fig. 7).
//! * [`dynwarp`] — the Dynamic Warp Execution throttle (Sec. IV-C).
//! * [`hw_cost`] — the hardware storage-overhead formulas of Sec. V.
//!
//! All of it is IO-free, allocation-light, and fully deterministic, so the
//! simulator built on top is reproducible bit-for-bit.
//!
//! The paper's motivating example (Sec. I-A) in four lines: hotspot's
//! 36 regs × 256 threads leave 3 resident blocks and 5120 wasted registers;
//! register sharing at the default threshold `t = 0.1` doubles residency.
//!
//! ```
//! use grs_core::{compute_launch_plan, occupancy, GpuConfig, KernelFootprint};
//! use grs_core::{ResourceKind, Threshold};
//!
//! let sm = GpuConfig::paper_baseline().sm;
//! let hotspot = KernelFootprint { threads_per_block: 256, regs_per_thread: 36, smem_per_block: 0 };
//!
//! let occ = occupancy(&sm, &hotspot);
//! assert_eq!((occ.blocks, occ.wasted_registers), (3, 5120));
//!
//! let plan = compute_launch_plan(&sm, &hotspot, Threshold::paper_default(), ResourceKind::Registers);
//! assert_eq!((plan.unshared, plan.shared_pairs, plan.max_blocks), (0, 3, 6));
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dynwarp;
pub mod hw_cost;
pub mod occupancy;
pub mod sched;
pub mod sharing;
pub mod transform;

pub use config::{GpuConfig, LatencyConfig, MemConfig, SmConfig};
pub use dynwarp::DynThrottle;
pub use occupancy::{occupancy, Occupancy};
pub use sched::{Scheduler, SchedulerKind, WarpClass, WarpView};
pub use sharing::{
    compute_launch_plan, KernelFootprint, LaunchPlan, PairMember, RegAccess, RegPairLocks,
    ResourceKind, SmemPairLock, Threshold,
};
pub use transform::reorder_declarations;
