//! # grs-core — the resource-sharing runtime
//!
//! This crate is the paper's primary contribution as a reusable library:
//! everything *Improving GPU Performance Through Resource Sharing* (Jatala,
//! Anantpur, Karkare; HPDC'16) adds on top of a baseline GPU, expressed as
//! pure, deterministic policy objects that a timing simulator (or, in
//! principle, RTL) drives:
//!
//! * [`config`] — the Table I machine description.
//! * [`occupancy`] — block-residency and resource-waste arithmetic
//!   (paper Sec. I-A, Fig. 1).
//! * [`sharing`] — the launch-plan equations of Sec. III-C (`U + S = ⌊R/Rtb⌋`,
//!   `U·Rtb + S·Rtb(1+t) ≤ R`, `M = U + 2S`), the pair-lock automata of
//!   Figs. 3–4 with the barrier-deadlock avoidance rule of Fig. 5, and
//!   block-pair ownership tracking/transfer (Sec. IV).
//! * [`sched`] — warp-scheduling policies: LRR, GTO, Two-Level and the
//!   paper's Owner-Warp-First (OWF).
//! * [`transform`] — the "Unrolling and Reordering of Register Declarations"
//!   compiler pass (Sec. IV-B, Fig. 7).
//! * [`dynwarp`] — the Dynamic Warp Execution throttle (Sec. IV-C).
//! * [`hw_cost`] — the hardware storage-overhead formulas of Sec. V.
//!
//! All of it is IO-free, allocation-light, and fully deterministic, so the
//! simulator built on top is reproducible bit-for-bit.

pub mod config;
pub mod dynwarp;
pub mod hw_cost;
pub mod occupancy;
pub mod sched;
pub mod sharing;
pub mod transform;

pub use config::{GpuConfig, LatencyConfig, MemConfig, SmConfig};
pub use dynwarp::DynThrottle;
pub use occupancy::{occupancy, Occupancy};
pub use sched::{Scheduler, SchedulerKind, WarpClass, WarpView};
pub use sharing::{
    compute_launch_plan, KernelFootprint, LaunchPlan, PairMember, RegAccess, RegPairLocks,
    ResourceKind, SmemPairLock, Threshold,
};
pub use transform::reorder_declarations;
