//! Machine configuration (paper Table I).

use serde::{Deserialize, Serialize};

/// Per-SM static limits (paper Table I, per-core rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Register file size in 32-bit registers (Table I: 32768).
    pub registers: u32,
    /// Scratchpad ("shared") memory in bytes (Table I: 16 KB).
    pub scratchpad_bytes: u32,
    /// Maximum resident threads (Table I: 1536).
    pub max_threads: u32,
    /// Maximum resident thread blocks (Table I: 8).
    pub max_blocks: u32,
    /// Warp schedulers per SM (Table I: 2).
    pub schedulers: u32,
}

/// Execution latencies in cycles for each functional class. These follow the
/// GPGPU-Sim GT200-era defaults the paper's Table I machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Integer ALU.
    pub ialu: u32,
    /// Integer multiply.
    pub imul: u32,
    /// FP add / mul / fma.
    pub fp: u32,
    /// Special-function unit.
    pub sfu: u32,
    /// Scratchpad access (conflict-free).
    pub scratchpad: u32,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            ialu: 4,
            imul: 8,
            fp: 6,
            sfu: 20,
            scratchpad: 10,
        }
    }
}

/// Memory-hierarchy configuration (paper Table I plus standard GPGPU-Sim
/// timing parameters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 data cache bytes per SM (Table I: 16 KB).
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 bytes (Table I: 768 KB).
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line / memory transaction size in bytes.
    pub line_bytes: u32,
    /// L1 hit latency (cycles, load-to-use).
    pub l1_hit_latency: u32,
    /// Additional latency for an L1 miss that hits in L2.
    pub l2_latency: u32,
    /// Additional latency for an L2 miss serviced by DRAM (tRCD+tCL+... of
    /// the Table I GDDR3 timing compressed into one constant).
    pub dram_latency: u32,
    /// DRAM service interval in *quarter-cycles* per 128 B transaction once
    /// the pipe saturates (bandwidth model; FR-FCFS row hits are approximated
    /// by this aggregate rate). 4 = one line per cycle ≈ the Table I GDDR3
    /// channels at shader clock.
    pub dram_service_q4: u32,
    /// L2 bank + interconnect service interval in quarter-cycles per
    /// transaction (1 = four lines per cycle across the banked L2).
    pub l2_service_q4: u32,
    /// Maximum in-flight global transactions per warp (MSHR-per-warp limit).
    pub max_pending_per_warp: u32,
    /// Memory partitions of the **event-driven** model (`MemoryModel::Event`
    /// in `grs-sim`): the L2 is sliced into this many banks, each with its
    /// own MSHR table and DRAM channel. 768 KB / 6 = 128 KB per slice, the
    /// Fermi-era arrangement behind the paper's Table I machine. Per-bank
    /// service intervals are scaled by this count so the *aggregate* L2 and
    /// DRAM bandwidth matches the functional model. Ignored by
    /// `MemoryModel::Functional`.
    pub mem_partitions: u32,
    /// MSHR entries per partition of the event-driven model; an L2 miss
    /// holds one from issue until its DRAM fill returns, and a full table
    /// back-pressures SM issue. `0` = unlimited (the functional model's
    /// idealization; also disables miss merging). The default is scaled to
    /// the synthetic coalescer's transaction volume (one line per warp
    /// access, shrunk grids) rather than raw Fermi entry counts, so that a
    /// latency-bound kernel exercises back-pressure the way a real one
    /// saturates a real table. Ignored by `Functional`.
    pub mshr_entries: u32,
    /// Bounded DRAM request-queue entries per partition of the event-driven
    /// model; a slot is held from admission until the channel finishes the
    /// transaction, and a full queue back-pressures SM issue. `0` =
    /// unbounded. Ignored by `Functional`.
    pub dram_queue_entries: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 768 * 1024,
            l2_ways: 8,
            line_bytes: 128,
            l1_hit_latency: 20,
            l2_latency: 180,
            dram_latency: 280,
            dram_service_q4: 2,
            l2_service_q4: 1,
            max_pending_per_warp: 6,
            mem_partitions: 6,
            mshr_entries: 8,
            dram_queue_entries: 16,
        }
    }
}

/// Whole-GPU configuration (paper Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of SMs (Table I: 14 clusters × 1 core).
    pub num_sms: u32,
    /// Per-SM limits.
    pub sm: SmConfig,
    /// Latency table.
    pub lat: LatencyConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
}

impl GpuConfig {
    /// The exact Table I machine: 14 SMs, 32768 registers and 16 KB
    /// scratchpad per SM, 1536 threads / 8 blocks max, 2 schedulers, 16 KB
    /// L1, 768 KB L2.
    pub fn paper_baseline() -> Self {
        GpuConfig {
            num_sms: 14,
            sm: SmConfig {
                registers: 32768,
                scratchpad_bytes: 16 * 1024,
                max_threads: 1536,
                max_blocks: 8,
                schedulers: 2,
            },
            lat: LatencyConfig::default(),
            mem: MemConfig::default(),
        }
    }

    /// Baseline with doubled register file (64 K registers) — the comparison
    /// machine of paper Fig. 11(a).
    pub fn doubled_registers() -> Self {
        let mut c = Self::paper_baseline();
        c.sm.registers *= 2;
        c
    }

    /// Baseline with doubled scratchpad (32 KB) — paper Fig. 11(b).
    pub fn doubled_scratchpad() -> Self {
        let mut c = Self::paper_baseline();
        c.sm.scratchpad_bytes *= 2;
        c
    }

    /// A small single-SM machine for fast unit tests.
    pub fn tiny() -> Self {
        let mut c = Self::paper_baseline();
        c.num_sms = 1;
        c
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let c = GpuConfig::paper_baseline();
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.sm.registers, 32768);
        assert_eq!(c.sm.scratchpad_bytes, 16384);
        assert_eq!(c.sm.max_threads, 1536);
        assert_eq!(c.sm.max_blocks, 8);
        assert_eq!(c.sm.schedulers, 2);
        assert_eq!(c.mem.l1_bytes, 16384);
        assert_eq!(c.mem.l2_bytes, 768 * 1024);
    }

    #[test]
    fn doubled_variants_double_exactly_one_resource() {
        let r = GpuConfig::doubled_registers();
        assert_eq!(r.sm.registers, 65536);
        assert_eq!(r.sm.scratchpad_bytes, 16384);
        let s = GpuConfig::doubled_scratchpad();
        assert_eq!(s.sm.registers, 32768);
        assert_eq!(s.sm.scratchpad_bytes, 32768);
    }
}
