//! Simulator-engine throughput: the event-driven fast-forward path against
//! the per-cycle reference loop on the memory-latency-bound Set-2 scenario
//! of `grs_bench::perf` (not a paper artifact; guards the engine's speedup
//! and, under `-- --test`, its liveness in CI). `repro perf` runs the same
//! scenario standalone and records the numbers in `BENCH_pr2.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grs_bench::perf;
use grs_sim::Simulator;

fn bench(c: &mut Criterion) {
    let kernel = perf::scenario_kernel();
    let cfg = perf::scenario_config();
    let cycles = Simulator::new(cfg.clone()).run(&kernel).cycles;

    let mut g = c.benchmark_group("perf_engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cycles));
    for (name, ff) in [("fast-forward", true), ("reference", false)] {
        let sim = Simulator::new(cfg.clone().with_fast_forward(ff));
        g.bench_function(format!("conv1-28-dram1600/{name}"), |b| {
            b.iter(|| sim.run(&kernel))
        });
    }
    // Same scenario under the event-driven memory model: back-pressure
    // phases exercise the gated-sleep path instead of pure idle skips.
    let event_cfg = perf::scenario_config_event();
    for (name, ff) in [("fast-forward", true), ("reference", false)] {
        let sim = Simulator::new(event_cfg.clone().with_fast_forward(ff));
        g.bench_function(format!("conv1-28-dram1600-event/{name}"), |b| {
            b.iter(|| sim.run(&kernel))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
