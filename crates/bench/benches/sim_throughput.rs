//! Raw simulator throughput: simulated cycles per wall-second on compute-
//! and memory-bound kernels (not a paper artifact; tracks the substrate's
//! own performance).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use grs_bench::runner::shrink_grid;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    let sim = Simulator::new(RunConfig::baseline_lrr());
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for (name, mut k) in [
        ("hotspot", grs_workloads::set1::hotspot()),
        ("mum", grs_workloads::set1::mum()),
        ("nw1", grs_workloads::set2::nw1()),
    ] {
        shrink_grid(&mut k, 12);
        let cycles = sim.run(&k).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(format!("{name}/cycles-per-sec"), |b| b.iter(|| sim.run(&k)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
