//! Regenerates paper Fig. 12 (Set-3 policy equivalences) in quick mode and
//! benchmarks a Set-3 kernel under the degenerate sharing plan.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig12(true);
    let mut k = grs_workloads::set3::bfs();
    shrink_grid(&mut k, 12);
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let base = Simulator::new(RunConfig::baseline_lrr());
    g.bench_function("bfs/unshared-lrr", |b| b.iter(|| base.run(&k)));
    let shared = Simulator::new(RunConfig::paper_register_sharing());
    g.bench_function("bfs/shared-degenerate", |b| b.iter(|| shared.run(&k)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
