//! Regenerates paper Fig. 10 (sharing vs GTO / Two-Level baselines) in quick
//! mode, and benchmarks the scheduler implementations via full simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig10(true);
    let mut k = grs_workloads::set1::sgemm();
    shrink_grid(&mut k, 12);
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (name, cfg) in [
        ("lrr", RunConfig::baseline_lrr()),
        ("gto", RunConfig::baseline_gto()),
        ("two-level", RunConfig::baseline_two_level()),
    ] {
        let sim = Simulator::new(cfg);
        g.bench_function(format!("sgemm/{name}"), |b| b.iter(|| sim.run(&k)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
