//! Regenerates paper Fig. 9 (optimization ablation + stall/idle decrease)
//! in quick mode, and benchmarks the ablation endpoints.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_core::SchedulerKind;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig9(true);
    let mut k = grs_workloads::set1::mum();
    shrink_grid(&mut k, 12);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let noopt = Simulator::new(
        RunConfig::paper_register_sharing()
            .with_scheduler(SchedulerKind::Lrr)
            .with_reorder_decls(false)
            .with_dyn_throttle(false),
    );
    g.bench_function("mum/shared-lrr-noopt", |b| b.iter(|| noopt.run(&k)));
    let full = Simulator::new(RunConfig::paper_register_sharing());
    g.bench_function("mum/shared-owf-unroll-dyn", |b| b.iter(|| full.run(&k)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
