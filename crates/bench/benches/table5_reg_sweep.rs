//! Regenerates paper Tables V/VI (IPC and resident blocks vs %register
//! sharing) in quick mode and benchmarks two sweep points.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_core::Threshold;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::table5(true);
    let mut k = grs_workloads::set1::hotspot();
    shrink_grid(&mut k, 12);
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    for pct in [50.0, 90.0] {
        let cfg = RunConfig::paper_register_sharing()
            .with_threshold(Threshold::from_sharing_pct(pct).unwrap());
        let sim = Simulator::new(cfg);
        g.bench_function(format!("hotspot/sharing-{pct}pct"), |b| {
            b.iter(|| sim.run(&k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
