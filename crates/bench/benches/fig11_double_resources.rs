//! Regenerates paper Fig. 11 (sharing at 1x resources vs unshared LRR at 2x
//! resources) in quick mode, and benchmarks the doubled-register machine.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_core::GpuConfig;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig11(true);
    let mut k = grs_workloads::set1::lib();
    shrink_grid(&mut k, 12);
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let doubled =
        Simulator::new(RunConfig::baseline_lrr().with_gpu(GpuConfig::doubled_registers()));
    g.bench_function("lib/unshared-lrr-64k-regs", |b| b.iter(|| doubled.run(&k)));
    let shared = Simulator::new(RunConfig::paper_register_sharing());
    g.bench_function("lib/shared-owf-32k-regs", |b| b.iter(|| shared.run(&k)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
