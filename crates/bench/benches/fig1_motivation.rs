//! Regenerates paper Fig. 1 (motivation: resident blocks + resource waste)
//! and benchmarks the occupancy calculator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use grs_core::{occupancy, GpuConfig, KernelFootprint};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig1();
    let sm = GpuConfig::paper_baseline().sm;
    let fps: Vec<KernelFootprint> = grs_workloads::all_benchmarks()
        .iter()
        .map(|(_, k)| KernelFootprint::of(k))
        .collect();
    c.bench_function("occupancy/all-19-benchmarks", |b| {
        b.iter(|| {
            fps.iter()
                .map(|fp| occupancy(&sm, std::hint::black_box(fp)).blocks)
                .sum::<u32>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
