//! Regenerates paper Fig. 8 (resident blocks + IPC improvement for register
//! and scratchpad sharing) in quick mode, and benchmarks a representative
//! end-to-end simulation (hotspot under the full register-sharing stack).

use criterion::{criterion_group, criterion_main, Criterion};
use grs_bench::runner::shrink_grid;
use grs_sim::{RunConfig, Simulator};

fn bench(c: &mut Criterion) {
    grs_bench::experiments::fig8(true);
    let mut k = grs_workloads::set1::hotspot();
    shrink_grid(&mut k, 12);
    let sim = Simulator::new(RunConfig::paper_register_sharing());
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("hotspot/shared-owf-unroll-dyn", |b| b.iter(|| sim.run(&k)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
