//! One function per paper table/figure.
//!
//! Every function prints the same rows the paper plots. See DESIGN.md's
//! experiment index for the mapping and EXPERIMENTS.md for recorded
//! paper-vs-measured outcomes.

use grs_core::hw_cost::hw_cost;
use grs_core::{
    compute_launch_plan, occupancy, GpuConfig, KernelFootprint, ResourceKind, SchedulerKind,
    Threshold,
};
use grs_isa::Kernel;
use grs_sim::{RunConfig, SharingMode, SimStats};
use grs_workloads::suite::{SET1_NAMES, SET2_NAMES, SET3_NAMES};
use grs_workloads::{set1_benchmarks, set2_benchmarks, set3_benchmarks};

use crate::runner::{run_all, shrink_grid, Job};

fn quick_prep(kernels: &mut [Kernel], quick: bool) {
    if quick {
        for k in kernels {
            shrink_grid(k, 4);
        }
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table I.
pub fn print_config() {
    header("Table I: GPGPU-Sim-equivalent architecture");
    let c = GpuConfig::paper_baseline();
    println!("SMs (clusters x cores)          : {}", c.num_sms);
    println!("Max thread blocks / SM          : {}", c.sm.max_blocks);
    println!("Max threads / SM                : {}", c.sm.max_threads);
    println!("Registers / SM                  : {}", c.sm.registers);
    println!(
        "Scratchpad / SM                 : {} KB",
        c.sm.scratchpad_bytes / 1024
    );
    println!("Warp schedulers / SM            : {}", c.sm.schedulers);
    println!(
        "L1 cache / SM                   : {} KB",
        c.mem.l1_bytes / 1024
    );
    println!(
        "L2 cache (shared)               : {} KB",
        c.mem.l2_bytes / 1024
    );
    println!(
        "Latencies (ialu/imul/fp/sfu/spm): {}/{}/{}/{}/{}",
        c.lat.ialu, c.lat.imul, c.lat.fp, c.lat.sfu, c.lat.scratchpad
    );
    println!(
        "Memory (L1 hit/L2/DRAM, svc L2/DRAM): {}/{}/{} cycles, 1-per-{}/{} quarter-cycles",
        c.mem.l1_hit_latency,
        c.mem.l2_latency,
        c.mem.dram_latency,
        c.mem.l2_service_q4,
        c.mem.dram_service_q4
    );
}

/// Tables II, III, IV.
pub fn print_suites() {
    header("Tables II-IV: benchmark footprints");
    println!(
        "{:<12} {:>8} {:>6} {:>10} {:>8}",
        "benchmark", "threads", "regs", "smem(B)", "grid"
    );
    for (names, ks) in [
        (&SET1_NAMES[..], set1_benchmarks()),
        (&SET2_NAMES[..], set2_benchmarks()),
        (&SET3_NAMES[..], set3_benchmarks()),
    ] {
        for (n, k) in names.iter().zip(ks) {
            println!(
                "{:<12} {:>8} {:>6} {:>10} {:>8}",
                n, k.threads_per_block, k.regs_per_thread, k.smem_per_block, k.grid_blocks
            );
        }
        println!("{}", "-".repeat(48));
    }
}

/// Sec. V hardware cost.
pub fn print_hwcost() {
    header("Section V: hardware storage overhead");
    let cost = hw_cost(&GpuConfig::paper_baseline());
    println!(
        "register sharing : {} bits total ({} bits/SM)",
        cost.register_sharing_bits,
        cost.register_sharing_bits / 14
    );
    println!(
        "scratchpad sharing: {} bits total ({} bits/SM)",
        cost.scratchpad_sharing_bits,
        cost.scratchpad_sharing_bits / 14
    );
    println!("comparators/SM   : {}", cost.comparators_per_sm);
}

/// Fig. 1: motivation — resident blocks and waste percentages.
pub fn fig1() {
    header("Fig 1(a,b): Set-1 resident blocks and register waste");
    let sm = GpuConfig::paper_baseline().sm;
    println!("{:<12} {:>7} {:>12}", "benchmark", "blocks", "reg waste %");
    for (n, k) in SET1_NAMES.iter().zip(set1_benchmarks()) {
        let occ = occupancy(&sm, &KernelFootprint::of(&k));
        println!(
            "{:<12} {:>7} {:>11.1}%",
            n,
            occ.blocks,
            occ.register_waste_pct(&sm)
        );
    }
    header("Fig 1(c,d): Set-2 resident blocks and scratchpad waste");
    println!("{:<12} {:>7} {:>12}", "benchmark", "blocks", "spm waste %");
    for (n, k) in SET2_NAMES.iter().zip(set2_benchmarks()) {
        let occ = occupancy(&sm, &KernelFootprint::of(&k));
        println!(
            "{:<12} {:>7} {:>11.1}%",
            n,
            occ.blocks,
            occ.scratchpad_waste_pct(&sm)
        );
    }
}

fn improvement_table(
    title: &str,
    names: &[&str],
    baselines: &[(String, SimStats)],
    shared: &[(String, SimStats)],
) {
    header(title);
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "benchmark", "IPC base", "IPC shr", "dIPC%", "blk base", "blk shr", "dStall%", "dIdle%"
    );
    for ((n, (_, b)), (_, s)) in names.iter().zip(baselines).zip(shared) {
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>7.2}% {:>9} {:>9} {:>9.1}% {:>9.1}%",
            n,
            b.ipc(),
            s.ipc(),
            s.ipc_improvement_pct(b),
            b.max_resident_blocks,
            s.max_resident_blocks,
            s.stall_decrease_pct(b),
            s.idle_decrease_pct(b),
        );
    }
}

/// Fig. 8: resident blocks + IPC improvement for both sharing mechanisms.
pub fn fig8(quick: bool) {
    let mut s1 = set1_benchmarks();
    let mut s2 = set2_benchmarks();
    quick_prep(&mut s1, quick);
    quick_prep(&mut s2, quick);

    let mut jobs = Vec::new();
    for k in &s1 {
        jobs.push(Job::new("base", RunConfig::baseline_lrr(), k.clone()));
        jobs.push(Job::new(
            "shared",
            RunConfig::paper_register_sharing(),
            k.clone(),
        ));
    }
    for k in &s2 {
        jobs.push(Job::new("base", RunConfig::baseline_lrr(), k.clone()));
        jobs.push(Job::new(
            "shared",
            RunConfig::paper_scratchpad_sharing(),
            k.clone(),
        ));
    }
    let out = run_all(jobs);
    let (reg, smem) = out.split_at(2 * s1.len());
    let (rb, rs): (Vec<_>, Vec<_>) = split_pairs(reg);
    let (sb, ss): (Vec<_>, Vec<_>) = split_pairs(smem);
    improvement_table(
        "Fig 8(a,c): register sharing (Shared-OWF-Unroll-Dyn vs Unshared-LRR)",
        &SET1_NAMES,
        &rb,
        &rs,
    );
    improvement_table(
        "Fig 8(b,d): scratchpad sharing (Shared-OWF vs Unshared-LRR)",
        &SET2_NAMES,
        &sb,
        &ss,
    );
}

type Labelled = (String, SimStats);

fn split_pairs(out: &[Labelled]) -> (Vec<Labelled>, Vec<Labelled>) {
    let mut base = Vec::new();
    let mut shared = Vec::new();
    for pair in out.chunks(2) {
        base.push(pair[0].clone());
        shared.push(pair[1].clone());
    }
    (base, shared)
}

/// Fig. 9: optimization ablation and stall/idle decrease.
pub fn fig9(quick: bool) {
    let mut s1 = set1_benchmarks();
    let mut s2 = set2_benchmarks();
    quick_prep(&mut s1, quick);
    quick_prep(&mut s2, quick);

    // Register-sharing ablation ladder (paper Fig. 9(a) legend).
    let reg_cfgs: Vec<(&str, RunConfig)> = vec![
        ("Unshared-LRR", RunConfig::baseline_lrr()),
        (
            "Shared-LRR-NoOpt",
            RunConfig::paper_register_sharing()
                .with_scheduler(SchedulerKind::Lrr)
                .with_reorder_decls(false)
                .with_dyn_throttle(false),
        ),
        (
            "Shared-LRR-Unroll",
            RunConfig::paper_register_sharing()
                .with_scheduler(SchedulerKind::Lrr)
                .with_dyn_throttle(false),
        ),
        (
            "Shared-LRR-Unroll-Dyn",
            RunConfig::paper_register_sharing().with_scheduler(SchedulerKind::Lrr),
        ),
        ("Shared-OWF-Unroll-Dyn", RunConfig::paper_register_sharing()),
    ];
    let mut jobs = Vec::new();
    for k in &s1 {
        for (label, cfg) in &reg_cfgs {
            jobs.push(Job::new(*label, cfg.clone(), k.clone()));
        }
    }
    let out = run_all(jobs);
    header("Fig 9(a): register-sharing optimization ablation (% IPC vs Unshared-LRR)");
    print!("{:<12}", "benchmark");
    for (label, _) in &reg_cfgs[1..] {
        print!(" {label:>22}");
    }
    println!();
    for (i, n) in SET1_NAMES.iter().enumerate() {
        let row = &out[i * reg_cfgs.len()..(i + 1) * reg_cfgs.len()];
        let base = &row[0].1;
        print!("{n:<12}");
        for (_, s) in &row[1..] {
            print!(" {:>21.2}%", s.ipc_improvement_pct(base));
        }
        println!();
    }
    header("Fig 9(c): register sharing, % decrease in stall/idle cycles (full config)");
    println!("{:<12} {:>10} {:>10}", "benchmark", "dStall%", "dIdle%");
    for (i, n) in SET1_NAMES.iter().enumerate() {
        let row = &out[i * reg_cfgs.len()..(i + 1) * reg_cfgs.len()];
        let base = &row[0].1;
        let full = &row[reg_cfgs.len() - 1].1;
        println!(
            "{:<12} {:>9.1}% {:>9.1}%",
            n,
            full.stall_decrease_pct(base),
            full.idle_decrease_pct(base)
        );
    }

    // Scratchpad ablation (paper Fig. 9(b)): NoOpt (LRR) vs OWF.
    let smem_cfgs: Vec<(&str, RunConfig)> = vec![
        ("Unshared-LRR", RunConfig::baseline_lrr()),
        (
            "Shared-LRR-NoOpt",
            RunConfig::paper_scratchpad_sharing().with_scheduler(SchedulerKind::Lrr),
        ),
        ("Shared-OWF", RunConfig::paper_scratchpad_sharing()),
    ];
    let mut jobs = Vec::new();
    for k in &s2 {
        for (label, cfg) in &smem_cfgs {
            jobs.push(Job::new(*label, cfg.clone(), k.clone()));
        }
    }
    let out = run_all(jobs);
    header("Fig 9(b): scratchpad-sharing ablation (% IPC vs Unshared-LRR)");
    println!(
        "{:<12} {:>18} {:>12}",
        "benchmark", "Shared-LRR-NoOpt", "Shared-OWF"
    );
    for (i, n) in SET2_NAMES.iter().enumerate() {
        let row = &out[i * smem_cfgs.len()..(i + 1) * smem_cfgs.len()];
        let base = &row[0].1;
        println!(
            "{:<12} {:>17.2}% {:>11.2}%",
            n,
            row[1].1.ipc_improvement_pct(base),
            row[2].1.ipc_improvement_pct(base)
        );
    }
    header("Fig 9(d): scratchpad sharing, % decrease in stall/idle cycles (Shared-OWF)");
    println!("{:<12} {:>10} {:>10}", "benchmark", "dStall%", "dIdle%");
    for (i, n) in SET2_NAMES.iter().enumerate() {
        let row = &out[i * smem_cfgs.len()..(i + 1) * smem_cfgs.len()];
        let base = &row[0].1;
        let full = &row[2].1;
        println!(
            "{:<12} {:>9.1}% {:>9.1}%",
            n,
            full.stall_decrease_pct(base),
            full.idle_decrease_pct(base)
        );
    }
}

/// Fig. 10: sharing vs GTO and Two-Level baselines.
pub fn fig10(quick: bool) {
    let mut s1 = set1_benchmarks();
    let mut s2 = set2_benchmarks();
    quick_prep(&mut s1, quick);
    quick_prep(&mut s2, quick);

    for (title, baseline) in [
        (
            "Fig 10(a,b): sharing vs GTO baseline",
            RunConfig::baseline_gto(),
        ),
        (
            "Fig 10(c,d): sharing vs Two-Level baseline",
            RunConfig::baseline_two_level(),
        ),
    ] {
        let mut jobs = Vec::new();
        for k in &s1 {
            jobs.push(Job::new("base", baseline.clone(), k.clone()));
            jobs.push(Job::new(
                "shared",
                RunConfig::paper_register_sharing(),
                k.clone(),
            ));
        }
        for k in &s2 {
            jobs.push(Job::new("base", baseline.clone(), k.clone()));
            jobs.push(Job::new(
                "shared",
                RunConfig::paper_scratchpad_sharing(),
                k.clone(),
            ));
        }
        let out = run_all(jobs);
        let (reg, smem) = out.split_at(2 * s1.len());
        let (rb, rs) = split_pairs(reg);
        let (sb, ss) = split_pairs(smem);
        header(title);
        println!(
            "{:<12} {:>10} {:>10} {:>8}",
            "benchmark", "IPC base", "IPC shr", "dIPC%"
        );
        for ((n, (_, b)), (_, s)) in SET1_NAMES.iter().zip(&rb).zip(&rs) {
            println!(
                "{:<12} {:>10.1} {:>10.1} {:>7.2}%",
                n,
                b.ipc(),
                s.ipc(),
                s.ipc_improvement_pct(b)
            );
        }
        println!("{}", "-".repeat(44));
        for ((n, (_, b)), (_, s)) in SET2_NAMES.iter().zip(&sb).zip(&ss) {
            println!(
                "{:<12} {:>10.1} {:>10.1} {:>7.2}%",
                n,
                b.ipc(),
                s.ipc(),
                s.ipc_improvement_pct(b)
            );
        }
    }
}

/// Fig. 11: sharing at 1× resources vs unshared LRR at 2× resources.
pub fn fig11(quick: bool) {
    let mut s1 = set1_benchmarks();
    let mut s2 = set2_benchmarks();
    quick_prep(&mut s1, quick);
    quick_prep(&mut s2, quick);

    let mut jobs = Vec::new();
    for k in &s1 {
        jobs.push(Job::new(
            "Unshared-LRR-Reg#65536",
            RunConfig::baseline_lrr().with_gpu(GpuConfig::doubled_registers()),
            k.clone(),
        ));
        jobs.push(Job::new(
            "Shared-OWF-Unroll-Dyn-Reg#32768",
            RunConfig::paper_register_sharing(),
            k.clone(),
        ));
    }
    for k in &s2 {
        jobs.push(Job::new(
            "Unshared-LRR-ShMem#32K",
            RunConfig::baseline_lrr().with_gpu(GpuConfig::doubled_scratchpad()),
            k.clone(),
        ));
        jobs.push(Job::new(
            "Shared-OWF-ShMem#16K",
            RunConfig::paper_scratchpad_sharing(),
            k.clone(),
        ));
    }
    let out = run_all(jobs);
    let (reg, smem) = out.split_at(2 * s1.len());
    header("Fig 11(a): register sharing @32K vs unshared LRR @64K registers (absolute IPC)");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "benchmark", "IPC 64K-LRR", "IPC 32K-shr", "winner"
    );
    for (n, pair) in SET1_NAMES.iter().zip(reg.chunks(2)) {
        let (b, s) = (&pair[0].1, &pair[1].1);
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8}",
            n,
            b.ipc(),
            s.ipc(),
            if s.ipc() >= b.ipc() {
                "sharing"
            } else {
                "2x-reg"
            }
        );
    }
    header("Fig 11(b): scratchpad sharing @16K vs unshared LRR @32K (absolute IPC)");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "benchmark", "IPC 32K-LRR", "IPC 16K-shr", "winner"
    );
    for (n, pair) in SET2_NAMES.iter().zip(smem.chunks(2)) {
        let (b, s) = (&pair[0].1, &pair[1].1);
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8}",
            n,
            b.ipc(),
            s.ipc(),
            if s.ipc() >= b.ipc() {
                "sharing"
            } else {
                "2x-spm"
            }
        );
    }
}

/// Fig. 12: Set-3 policy equivalences.
pub fn fig12(quick: bool) {
    let mut s3 = set3_benchmarks();
    quick_prep(&mut s3, quick);

    for (title, sharing) in [
        (
            "Fig 12(a): Set-3, register sharing (absolute IPC)",
            SharingMode::Registers,
        ),
        (
            "Fig 12(b): Set-3, scratchpad sharing (absolute IPC)",
            SharingMode::Scratchpad,
        ),
    ] {
        let share_base = match sharing {
            SharingMode::Registers => RunConfig::paper_register_sharing(),
            _ => RunConfig::paper_scratchpad_sharing(),
        };
        let cfgs: Vec<(&str, RunConfig)> = vec![
            ("Unshared-LRR", RunConfig::baseline_lrr()),
            (
                "Shared-LRR",
                share_base.clone().with_scheduler(SchedulerKind::Lrr),
            ),
            ("Unshared-GTO", RunConfig::baseline_gto()),
            (
                "Shared-GTO",
                share_base.clone().with_scheduler(SchedulerKind::Gto),
            ),
            ("Shared-OWF", share_base),
        ];
        let mut jobs = Vec::new();
        for k in &s3 {
            for (label, cfg) in &cfgs {
                jobs.push(Job::new(*label, cfg.clone(), k.clone()));
            }
        }
        let out = run_all(jobs);
        header(title);
        print!("{:<12}", "benchmark");
        for (label, _) in &cfgs {
            print!(" {label:>13}");
        }
        println!();
        for (i, n) in SET3_NAMES.iter().enumerate() {
            let row = &out[i * cfgs.len()..(i + 1) * cfgs.len()];
            print!("{n:<12}");
            for (_, s) in row {
                print!(" {:>13.1}", s.ipc());
            }
            println!();
        }
    }
}

/// Diagnostic: full counter dump for one benchmark under the main
/// configurations (not a paper artifact; used to calibrate workload models
/// and debug regressions).
pub fn inspect(name: &str, quick: bool) {
    let Some(mut k) = grs_workloads::benchmark(name) else {
        eprintln!("unknown benchmark {name}");
        return;
    };
    if quick {
        shrink_grid(&mut k, 4);
    }
    let sharing = if k.smem_per_block > 2048 {
        RunConfig::paper_scratchpad_sharing()
    } else {
        RunConfig::paper_register_sharing()
    };
    let cfgs: Vec<(&str, RunConfig)> = vec![
        ("Unshared-LRR", RunConfig::baseline_lrr()),
        ("Unshared-GTO", RunConfig::baseline_gto()),
        (
            "Shared-LRR-NoOpt",
            sharing
                .clone()
                .with_scheduler(SchedulerKind::Lrr)
                .with_reorder_decls(false)
                .with_dyn_throttle(false),
        ),
        (
            "Shared-OWF-NoOpt",
            sharing
                .clone()
                .with_reorder_decls(false)
                .with_dyn_throttle(false),
        ),
        (
            "Shared-LRR-Unroll",
            sharing
                .clone()
                .with_scheduler(SchedulerKind::Lrr)
                .with_dyn_throttle(false),
        ),
        (
            "Shared-GTO-Unroll",
            sharing
                .clone()
                .with_scheduler(SchedulerKind::Gto)
                .with_dyn_throttle(false),
        ),
        ("Shared-OWF-NoDyn", sharing.clone().with_dyn_throttle(false)),
        ("Shared-full", sharing),
    ];
    let jobs: Vec<Job> = cfgs
        .iter()
        .map(|(l, c)| Job::new(*l, c.clone(), k.clone()))
        .collect();
    let out = run_all(jobs);
    header(&format!("inspect: {name} (grid {})", k.grid_blocks));
    println!(
        "{:<18} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>10} {:>9} {:>9} {:>4}",
        "config",
        "IPC",
        "cycles",
        "stall",
        "idle",
        "empty",
        "L1m%",
        "L2m%",
        "txns",
        "winstr",
        "lockrtry",
        "throttled",
        "TO"
    );
    for (l, s) in &out {
        println!(
            "{:<18} {:>8.1} {:>9} {:>9} {:>9} {:>9} {:>6.1}% {:>6.1}% {:>9} {:>10} {:>9} {:>9} {:>4}",
            l,
            s.ipc(),
            s.cycles,
            s.stall_cycles,
            s.idle_cycles,
            s.empty_cycles,
            100.0 * s.mem.l1_miss_ratio(),
            100.0 * s.mem.l2_miss_ratio(),
            s.mem.transactions,
            s.warp_instrs,
            s.lock_retries,
            s.throttled_issues,
            if s.timed_out { "YES" } else { "no" }
        );
    }
}

/// Tables V & VI: IPC and resident blocks vs %register sharing.
pub fn table5(quick: bool) {
    sweep_tables(
        "Table V/VI: register sharing sweep",
        set1_benchmarks(),
        &SET1_NAMES,
        SharingMode::Registers,
        quick,
    );
}

/// Tables VII & VIII: IPC and resident blocks vs %scratchpad sharing.
pub fn table7(quick: bool) {
    sweep_tables(
        "Table VII/VIII: scratchpad sharing sweep",
        set2_benchmarks(),
        &SET2_NAMES,
        SharingMode::Scratchpad,
        quick,
    );
}

fn sweep_tables(
    title: &str,
    mut kernels: Vec<Kernel>,
    names: &[&str],
    sharing: SharingMode,
    quick: bool,
) {
    quick_prep(&mut kernels, quick);
    let pcts: [f64; 6] = [0.0, 10.0, 30.0, 50.0, 70.0, 90.0];
    let base = match sharing {
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        _ => RunConfig::paper_scratchpad_sharing(),
    };
    let mut jobs = Vec::new();
    for k in &kernels {
        for &pct in &pcts {
            // 0% sharing = the plain baseline with the same scheduler family:
            // the paper's row 0% is the t→1 degenerate plan (all unshared),
            // still scheduled by OWF (which then sorts by dynamic id).
            let cfg = base
                .clone()
                .with_threshold(Threshold::from_sharing_pct(pct.min(99.0)).unwrap());
            jobs.push(Job::new(format!("{pct}%"), cfg, k.clone()));
        }
    }
    let out = run_all(jobs);
    header(&format!("{title}: IPC"));
    print!("{:<12}", "benchmark");
    for &p in &pcts {
        print!(" {:>9}", format!("{p:.0}%"));
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        let row = &out[i * pcts.len()..(i + 1) * pcts.len()];
        print!("{n:<12}");
        for (_, s) in row {
            print!(" {:>9.1}", s.ipc());
        }
        println!();
    }
    header(&format!("{title}: resident blocks"));
    let res = match sharing {
        SharingMode::Registers => ResourceKind::Registers,
        _ => ResourceKind::Scratchpad,
    };
    let sm = GpuConfig::paper_baseline().sm;
    print!("{:<12}", "benchmark");
    for &p in &pcts {
        print!(" {:>5}", format!("{p:.0}%"));
    }
    println!();
    for (n, k) in names.iter().zip(&kernels) {
        print!("{n:<12}");
        for &p in &pcts {
            let t = Threshold::from_sharing_pct(p.min(99.0)).unwrap();
            let plan = compute_launch_plan(&sm, &KernelFootprint::of(k), t, res);
            print!(" {:>5}", plan.max_blocks);
        }
        println!();
    }
}
