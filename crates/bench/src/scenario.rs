//! `repro run <scenario>` — run one named scenario across the standard
//! configuration matrix and print a comparison table.
//!
//! A *scenario* is anything [`grs_workloads::benchmark`] resolves: the 19
//! fixed paper benchmarks (`conv1`, `hotspot`, ...) or a generated
//! stress-profile spec (`gen:<family>:<seed>[:<size>]`, see
//! `grs_workloads::gen`). The matrix is the set of configurations the paper
//! compares — the three baselines and the two sharing modes — plus the
//! event-memory-model point whose back-pressure counters the generated
//! `mshr-thrash` family targets. Rows run through the crash-hardened
//! [`crate::runner::run_all_report`] sweep, so one misbehaving
//! configuration reports its panic instead of sinking the table.
//!
//! With `--check`, the baseline row additionally re-runs on the per-cycle
//! reference loop and the 2-shard epoch engine and asserts bit-identical
//! statistics — the same differential oracle `tests/generated_differential.rs`
//! applies to the whole pinned corpus, available ad hoc for any scenario.

use grs_sim::{MemoryModel, RunConfig, SimStats, Simulator};

use crate::runner::{run_all_report, shrink_grid, Job};

/// The comparison rows `repro run` sweeps (and `repro sweep --matrix`
/// reuses): label plus configuration.
pub(crate) fn matrix() -> Vec<(&'static str, RunConfig)> {
    vec![
        ("lrr", RunConfig::baseline_lrr()),
        ("gto", RunConfig::baseline_gto()),
        ("two-level", RunConfig::baseline_two_level()),
        ("reg-sharing", RunConfig::paper_register_sharing()),
        ("smem-sharing", RunConfig::paper_scratchpad_sharing()),
        (
            "lrr/event",
            RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event),
        ),
    ]
}

fn row(label: &str, stats: &SimStats) -> String {
    format!(
        "{:<14} {:>10} {:>8.3} {:>7} {:>8} {:>10} {:>10} {:>10}",
        label,
        stats.cycles,
        stats.ipc(),
        stats.blocks_completed,
        stats.max_resident_blocks,
        stats.stall_cycles,
        stats.mshr_full_stalls,
        stats.dram_queue_full_stalls
    )
}

/// Run `scenario` across the configuration matrix and print the table.
/// `quick` divides the grid by 4 (floored like every other experiment);
/// `check` re-runs the baseline on the reference and sharded engines and
/// asserts bit-identity.
pub fn run_scenario(scenario: &str, quick: bool, check: bool) -> Result<(), String> {
    let mut kernel = grs_workloads::benchmark(scenario).ok_or_else(|| {
        format!(
            "unknown scenario `{scenario}` — expected a benchmark name (repro suites) \
             or a generator spec gen:<family>:<seed>[:<size>] with family one of \
             pointer-chase, bursty, barrier-heavy, divergent-tile, mshr-thrash, mixed"
        )
    })?;
    if quick {
        shrink_grid(&mut kernel, 4);
    }
    println!(
        "scenario {scenario}: {} threads/block, {} regs/thread, {} B smem, {} blocks, {} dyn instrs/warp",
        kernel.threads_per_block,
        kernel.regs_per_thread,
        kernel.smem_per_block,
        kernel.grid_blocks,
        kernel.dynamic_instrs_per_warp()
    );
    println!(
        "{:<14} {:>10} {:>8} {:>7} {:>8} {:>10} {:>10} {:>10}",
        "config", "cycles", "ipc", "blocks", "maxres", "stalls", "mshr-full", "dramq-full"
    );

    let jobs: Vec<Job> = matrix()
        .into_iter()
        .map(|(label, cfg)| Job::new(label, cfg, kernel.clone()))
        .collect();
    let mut failed = false;
    let mut baseline = None;
    for r in run_all_report(jobs) {
        match r.stats {
            Some(stats) => {
                println!("{}", row(&r.label, &stats));
                if r.label == "lrr" {
                    baseline = Some(stats);
                }
            }
            None => {
                failed = true;
                println!(
                    "{:<14} FAILED after {} attempts: {}",
                    r.label,
                    r.attempts,
                    r.error.as_deref().unwrap_or("no panic message")
                );
            }
        }
    }

    if check {
        let baseline = baseline.ok_or("baseline row failed; nothing to check against")?;
        for (label, cfg) in [
            (
                "reference",
                RunConfig::baseline_lrr().with_fast_forward(false),
            ),
            ("shards-2", RunConfig::baseline_lrr().with_shards(Some(2))),
        ] {
            let stats = Simulator::new(cfg).run(&kernel);
            if stats != baseline {
                return Err(format!(
                    "engine divergence: {label} disagrees with the fast-forward \
                     baseline on `{scenario}`"
                ));
            }
        }
        println!("check OK: reference and shards-2 engines are bit-identical to the baseline");
    }
    if failed {
        return Err("one or more matrix rows failed".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_scenarios_are_reported_not_panicked() {
        let err = run_scenario("gen:warp-yoga:1", false, false).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
        assert!(err.contains("mshr-thrash"), "lists the families: {err}");
    }

    #[test]
    fn a_generated_scenario_sweeps_the_matrix_and_checks() {
        // Small generated kernel: the full matrix plus the --check engines
        // complete quickly even in debug builds.
        run_scenario("gen:bursty:7:small", true, true).expect("sweep");
    }

    #[test]
    fn a_fixed_benchmark_resolves_too() {
        run_scenario("gaussian", true, false).expect("fixed benchmark sweep");
    }

    #[test]
    fn the_matrix_covers_baselines_sharing_and_the_event_model() {
        let labels: Vec<&str> = matrix().into_iter().map(|(l, _)| l).collect();
        for expected in [
            "lrr",
            "gto",
            "two-level",
            "reg-sharing",
            "smem-sharing",
            "lrr/event",
        ] {
            assert!(labels.contains(&expected), "{expected} missing");
        }
    }
}
