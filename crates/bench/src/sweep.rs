//! `repro sweep <spec>... [--matrix] [--warm-check]` — batch scenarios
//! through the sweep service and report its dedup/memo accounting.
//!
//! Each spec is anything [`grs_workloads::benchmark`] resolves (fixed
//! benchmark names, generator specs) plus the literal `corpus`, which
//! expands to the pinned generated corpus (6 families × 3 seeds). Specs are
//! canonicalized first ([`grs_workloads::canonical_scenario`]), so spelling
//! variants of the same kernel (`BTREE` vs `b+tree`, `gen:bursty:7` vs
//! `gen:bursty:7:small`) collapse to one job *before* hashing and show up
//! in the service counters as dedup rather than extra work.
//!
//! By default every spec runs on the LRR baseline; `--matrix` crosses the
//! specs with the full `repro run` configuration matrix (baselines, both
//! sharing modes, the event memory model). `--warm-check` resubmits the
//! entire batch after it completes and verifies the service answered the
//! second pass entirely from the memo store with bit-identical statistics —
//! the end-to-end proof that determinism makes memoization exact (CI runs
//! this as a smoke test).

use std::collections::BTreeSet;

use grs_sim::RunConfig;

use crate::runner::{shrink_grid, Job, JobResult};
use crate::service::{ServiceConfig, SweepService};

/// Expand and canonicalize CLI specs: `corpus` becomes the 18 pinned
/// generated scenarios; everything else must canonicalize through the
/// workloads registry. Duplicate canonical specs are kept — the service
/// deduplicating them is the point — but order is preserved.
fn expand_specs(specs: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for spec in specs {
        if spec == "corpus" {
            out.extend(
                grs_workloads::pinned_corpus()
                    .into_iter()
                    .map(|s| s.scenario_name()),
            );
            continue;
        }
        match grs_workloads::canonical_scenario(spec) {
            Some(canon) => out.push(canon),
            None => {
                return Err(format!(
                    "unknown scenario `{spec}` — expected a benchmark name, a generator \
                     spec gen:<family>:<seed>[:<size>], or the literal `corpus`"
                ))
            }
        }
    }
    Ok(out)
}

/// Build the job list: specs × configuration rows.
fn build_jobs(specs: &[String], matrix: bool, quick: bool) -> Result<Vec<Job>, String> {
    let rows: Vec<(String, RunConfig)> = if matrix {
        crate::scenario::matrix()
            .into_iter()
            .map(|(l, c)| (l.to_string(), c))
            .collect()
    } else {
        vec![("lrr".to_string(), RunConfig::baseline_lrr())]
    };
    let mut jobs = Vec::with_capacity(specs.len() * rows.len());
    for spec in specs {
        let mut kernel =
            grs_workloads::benchmark(spec).ok_or_else(|| format!("unknown scenario `{spec}`"))?;
        if quick {
            shrink_grid(&mut kernel, 4);
        }
        for (label, cfg) in &rows {
            jobs.push(Job::new(
                format!("{spec}/{label}"),
                cfg.clone(),
                kernel.clone(),
            ));
        }
    }
    Ok(jobs)
}

fn print_results(results: &[JobResult]) -> bool {
    println!(
        "{:<40} {:>10} {:>8} {:>7} {:>8}",
        "job", "cycles", "ipc", "blocks", "attempts"
    );
    let mut failed = false;
    for r in results {
        match &r.stats {
            Some(s) => println!(
                "{:<40} {:>10} {:>8.3} {:>7} {:>8}",
                r.label,
                s.cycles,
                s.ipc(),
                s.blocks_completed,
                r.attempts
            ),
            None => {
                failed = true;
                println!(
                    "{:<40} FAILED after {} attempts: {}",
                    r.label,
                    r.attempts,
                    r.error.as_deref().unwrap_or("no error message")
                );
            }
        }
    }
    failed
}

/// Run the sweep. A fresh private service instance is used (not the global
/// one) so the printed counters account for exactly this sweep — and so
/// `--warm-check`'s "zero executions on the warm pass" assertion cannot be
/// satisfied by residue from an earlier sweep in the same process.
pub fn run_sweep(
    specs: &[String],
    matrix: bool,
    warm_check: bool,
    quick: bool,
) -> Result<(), String> {
    if specs.is_empty() {
        return Err("usage: repro sweep <spec>... [--matrix] [--warm-check] [--quick]".to_string());
    }
    let specs = expand_specs(specs)?;
    let unique: BTreeSet<&String> = specs.iter().collect();
    let jobs = build_jobs(&specs, matrix, quick)?;
    let n_jobs = jobs.len();
    println!(
        "sweep: {} scenario spec(s) ({} unique) x {} config row(s) = {} jobs",
        specs.len(),
        unique.len(),
        if matrix {
            crate::scenario::matrix().len()
        } else {
            1
        },
        n_jobs
    );

    let service = SweepService::new(ServiceConfig::default());
    let cold = service.sweep(jobs.clone());
    let failed = print_results(&cold);
    let cold_stats = service.stats();
    println!("{cold_stats}");

    if warm_check {
        let warm = service.sweep(jobs);
        let warm_stats = service.stats();
        let executed_delta = warm_stats.executed - cold_stats.executed;
        let memo_delta = warm_stats.memo_hits - cold_stats.memo_hits;
        if executed_delta != 0 {
            return Err(format!(
                "warm-check: {executed_delta} job(s) re-simulated on the warm pass \
                 (expected 0 — every resubmission should be a memo hit)"
            ));
        }
        if memo_delta != n_jobs as u64 {
            return Err(format!(
                "warm-check: {memo_delta} memo hits on the warm pass, expected {n_jobs}"
            ));
        }
        for (c, w) in cold.iter().zip(&warm) {
            if c.stats != w.stats {
                return Err(format!(
                    "warm-check: job `{}` returned different statistics from the memo \
                     store — determinism violation",
                    c.label
                ));
            }
        }
        println!(
            "warm-check OK: {n_jobs}/{n_jobs} memo hits, 0 re-simulations, statistics \
             bit-identical ({:.0}% hit rate overall)",
            warm_stats.hit_rate() * 100.0
        );
    }

    if failed {
        return Err("one or more sweep jobs failed".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_expands_to_the_pinned_generated_scenarios() {
        let specs = expand_specs(&["corpus".to_string()]).unwrap();
        assert_eq!(specs.len(), 18, "6 families x 3 pinned seeds");
        assert!(specs.iter().all(|s| s.starts_with("gen:")));
        let unique: BTreeSet<&String> = specs.iter().collect();
        assert_eq!(unique.len(), 18);
    }

    #[test]
    fn spelling_variants_canonicalize_before_hashing() {
        let specs = expand_specs(&["BTREE".to_string(), "b+tree".to_string()]).unwrap();
        assert_eq!(specs, vec!["b+tree", "b+tree"]);
        let err = expand_specs(&["warp-yoga".to_string()]).unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn a_quick_warm_checked_sweep_passes_end_to_end() {
        // The CI smoke in miniature: duplicate spellings of one scenario,
        // warm pass must be 100% memo hits with identical stats.
        run_sweep(
            &["gen:bursty:7".to_string(), "GEN:Bursty:7:small".to_string()],
            false,
            true,
            true,
        )
        .expect("sweep");
    }
}
