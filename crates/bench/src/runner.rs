//! Parallel simulation runner.
//!
//! Individual simulations are strictly serial (cycle-accurate state), but
//! experiments sweep many independent (configuration, kernel) pairs; those
//! are split into contiguous chunks, one per worker thread on a
//! `std::thread::scope`. Each worker owns its jobs outright and returns its
//! chunk's results, which concatenate back in job order — no shared result
//! slots, no locks, no cloning of job data.

use std::thread;

use grs_isa::Kernel;
use grs_sim::{RunConfig, SimStats, Simulator};

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label carried through to the result (figure row/series name).
    pub label: String,
    /// Run configuration.
    pub cfg: RunConfig,
    /// Kernel to simulate.
    pub kernel: Kernel,
}

impl Job {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, cfg: RunConfig, kernel: Kernel) -> Self {
        Job {
            label: label.into(),
            cfg,
            kernel,
        }
    }
}

/// Scale a kernel's grid down for `--quick` smoke runs. The floor keeps at
/// least one block wave (28 blocks on the Table I machine's 14 SMs × 2
/// minimum residency) without ever *growing* a grid that was already
/// smaller than that.
pub fn shrink_grid(kernel: &mut Kernel, divisor: u32) {
    let floor = kernel.grid_blocks.min(28);
    kernel.grid_blocks = (kernel.grid_blocks / divisor.max(1)).max(floor);
}

/// Run every job, in parallel across available cores; results come back in
/// job order.
pub fn run_all(jobs: Vec<Job>) -> Vec<(String, SimStats)> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let chunk_size = n.div_ceil(workers);
    let mut chunks: Vec<Vec<Job>> = Vec::with_capacity(workers);
    let mut rest = jobs;
    while rest.len() > chunk_size {
        let tail = rest.split_off(chunk_size);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);

    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|job| (job.label, Simulator::new(job.cfg).run(&job.kernel)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("runner worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::KernelBuilder;

    #[test]
    fn runs_jobs_in_order() {
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 1;
        let k = |n: u32| {
            KernelBuilder::new(format!("k{n}"))
                .threads_per_block(32)
                .regs_per_thread(8)
                .grid_blocks(n)
                .ialu(3)
                .build()
        };
        let jobs = vec![
            Job::new("a", cfg.clone(), k(1)),
            Job::new("b", cfg.clone(), k(2)),
            Job::new("c", cfg, k(3)),
        ];
        let out = run_all(jobs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[2].0, "c");
        assert_eq!(out[0].1.blocks_completed, 1);
        assert_eq!(out[2].1.blocks_completed, 3);
    }

    #[test]
    fn parallel_runner_is_deterministic() {
        // Thread scheduling must not leak into results: two parallel sweeps
        // of the same jobs yield identical stats (each simulation is a pure
        // function of its config and kernel).
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 2;
        let jobs = || -> Vec<Job> {
            (1..=6u32)
                .map(|n| {
                    let k = KernelBuilder::new(format!("k{n}"))
                        .threads_per_block(64)
                        .regs_per_thread(12)
                        .grid_blocks(4 * n)
                        .ialu(n)
                        .build();
                    Job::new(format!("job{n}"), cfg.clone(), k)
                })
                .collect()
        };
        assert_eq!(run_all(jobs()), run_all(jobs()));
    }

    #[test]
    fn shrink_grid_floors_at_one_wave() {
        let mut k = KernelBuilder::new("k").grid_blocks(168).ialu(1).build();
        shrink_grid(&mut k, 4);
        assert_eq!(k.grid_blocks, 42);
        // A big grid shrunk below one wave stops at the 28-block floor.
        let mut big = KernelBuilder::new("b").grid_blocks(64).ialu(1).build();
        shrink_grid(&mut big, 4);
        assert_eq!(big.grid_blocks, 28);
    }

    #[test]
    fn shrink_grid_never_grows_small_grids() {
        let mut tiny = KernelBuilder::new("t").grid_blocks(8).ialu(1).build();
        shrink_grid(&mut tiny, 4);
        assert_eq!(tiny.grid_blocks, 8, "a quick run must not inflate work");
        let mut one = KernelBuilder::new("o").grid_blocks(1).ialu(1).build();
        shrink_grid(&mut one, 4);
        assert_eq!(one.grid_blocks, 1);
    }
}
