//! Parallel simulation runner — the batch client of the sweep service.
//!
//! Individual simulations are strictly serial (cycle-accurate state), but
//! experiments sweep many independent (configuration, kernel) pairs. Those
//! are submitted to the process-wide [`SweepService`] ([`SweepService::global`]),
//! which content-hashes each job, answers duplicates from its memo store or
//! by attaching to the identical in-flight run, and executes the rest on
//! its worker pool (the caller helps while waiting); results come back in
//! job order — no shared result slots beyond the service, no cloning of
//! job data.
//!
//! Sweeps are crash-hardened by the service's per-job ladder: every job
//! runs under the full supervision stack plus `catch_unwind`, a failing job
//! is retried once on the sequential engine (no worker threads, the most
//! conservative configuration), and a job that still fails is *recorded* in
//! the sweep report ([`run_all_report`]) rather than aborting the other few
//! hundred simulations of an overnight sweep.
//!
//! Because the service is process-wide, duplicate (configuration, kernel)
//! pairs are simulated **once per process**, not once per occurrence — a
//! suite listing the same benchmark twice, or two experiments sharing a
//! baseline row, hit the memo store on every repeat.

use grs_isa::Kernel;
use grs_sim::{RunConfig, SimStats};

use crate::service::SweepService;

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label carried through to the result (figure row/series name).
    pub label: String,
    /// Run configuration.
    pub cfg: RunConfig,
    /// Kernel to simulate.
    pub kernel: Kernel,
}

impl Job {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, cfg: RunConfig, kernel: Kernel) -> Self {
        Job {
            label: label.into(),
            cfg,
            kernel,
        }
    }
}

/// Scale a kernel's grid down for `--quick` smoke runs. The floor keeps at
/// least one block wave (28 blocks on the Table I machine's 14 SMs × 2
/// minimum residency) without ever *growing* a grid that was already
/// smaller than that.
pub fn shrink_grid(kernel: &mut Kernel, divisor: u32) {
    let floor = kernel.grid_blocks.min(28);
    kernel.grid_blocks = (kernel.grid_blocks / divisor.max(1)).max(floor);
}

/// Outcome of one job in a hardened sweep.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label, verbatim.
    pub label: String,
    /// Statistics, if any attempt succeeded.
    pub stats: Option<SimStats>,
    /// Simulation attempts made (1, or 2 after a retry).
    pub attempts: u32,
    /// The first attempt panicked but the sequential-engine retry
    /// succeeded; [`Self::error`] holds the original panic.
    pub recovered: bool,
    /// Panic message: the first attempt's if recovered, the retry's if the
    /// job failed outright, `None` on a clean run.
    pub error: Option<String>,
}

/// Run every job through the process-wide [`SweepService`] — in parallel
/// across its worker pool, deduplicated against in-flight and memoized
/// work, with per-job crash isolation (see the module docs); results come
/// back in job order, one [`JobResult`] per job.
pub fn run_all_report(jobs: Vec<Job>) -> Vec<JobResult> {
    if jobs.is_empty() {
        return Vec::new();
    }
    SweepService::global().sweep(jobs)
}

/// Run every job, in parallel across available cores; results come back in
/// job order. A job that fails even after the sequential-engine retry
/// contributes default (all-zero) statistics under its label, with a
/// warning on stderr — experiments index results positionally and must
/// receive exactly one entry per job.
pub fn run_all(jobs: Vec<Job>) -> Vec<(String, SimStats)> {
    run_all_report(jobs)
        .into_iter()
        .map(|r| {
            let stats = r.stats.unwrap_or_else(|| {
                eprintln!(
                    "warning: job `{}` failed after {} attempts ({}); reporting zeroed stats",
                    r.label,
                    r.attempts,
                    r.error.as_deref().unwrap_or("no panic message")
                );
                SimStats::default()
            });
            (r.label, stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_isa::KernelBuilder;

    #[test]
    fn runs_jobs_in_order() {
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 1;
        let k = |n: u32| {
            KernelBuilder::new(format!("k{n}"))
                .threads_per_block(32)
                .regs_per_thread(8)
                .grid_blocks(n)
                .ialu(3)
                .build()
        };
        let jobs = vec![
            Job::new("a", cfg.clone(), k(1)),
            Job::new("b", cfg.clone(), k(2)),
            Job::new("c", cfg, k(3)),
        ];
        let out = run_all(jobs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, "a");
        assert_eq!(out[2].0, "c");
        assert_eq!(out[0].1.blocks_completed, 1);
        assert_eq!(out[2].1.blocks_completed, 3);
    }

    #[test]
    fn parallel_runner_is_deterministic() {
        // Thread scheduling must not leak into results: two parallel sweeps
        // of the same jobs yield identical stats (each simulation is a pure
        // function of its config and kernel).
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 2;
        let jobs = || -> Vec<Job> {
            (1..=6u32)
                .map(|n| {
                    let k = KernelBuilder::new(format!("k{n}"))
                        .threads_per_block(64)
                        .regs_per_thread(12)
                        .grid_blocks(4 * n)
                        .ialu(n)
                        .build();
                    Job::new(format!("job{n}"), cfg.clone(), k)
                })
                .collect()
        };
        assert_eq!(run_all(jobs()), run_all(jobs()));
    }

    #[test]
    fn a_failing_job_is_recorded_without_sinking_the_sweep() {
        // grid_blocks = 0 fails validation, so `Simulator::run` panics on
        // both attempts; the sweep must still return every job in order.
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 1;
        let good = KernelBuilder::new("good")
            .threads_per_block(32)
            .regs_per_thread(8)
            .grid_blocks(2)
            .ialu(3)
            .build();
        let mut bad = good.clone();
        bad.grid_blocks = 0;
        let jobs = vec![
            Job::new("a", cfg.clone(), good.clone()),
            Job::new("boom", cfg.clone(), bad),
            Job::new("c", cfg.clone(), good.clone()),
        ];
        let report = run_all_report(jobs.clone());
        assert_eq!(report.len(), 3);
        assert_eq!(report[0].label, "a");
        assert!(report[0].stats.is_some() && report[0].error.is_none());
        assert_eq!(report[0].attempts, 1);
        let failed = &report[1];
        assert_eq!(failed.label, "boom");
        assert!(failed.stats.is_none());
        assert_eq!(failed.attempts, 2);
        assert!(!failed.recovered);
        assert!(failed.error.is_some());
        assert!(report[2].stats.is_some());

        // The positional interface substitutes zeroed stats, preserving the
        // one-entry-per-job shape experiments index into.
        let flat = run_all(jobs);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[1].0, "boom");
        assert_eq!(flat[1].1, SimStats::default());
        assert_eq!(flat[2].1.blocks_completed, 2);
    }

    #[test]
    fn shrink_grid_floors_at_one_wave() {
        let mut k = KernelBuilder::new("k").grid_blocks(168).ialu(1).build();
        shrink_grid(&mut k, 4);
        assert_eq!(k.grid_blocks, 42);
        // A big grid shrunk below one wave stops at the 28-block floor.
        let mut big = KernelBuilder::new("b").grid_blocks(64).ialu(1).build();
        shrink_grid(&mut big, 4);
        assert_eq!(big.grid_blocks, 28);
    }

    #[test]
    fn shrink_grid_never_grows_small_grids() {
        let mut tiny = KernelBuilder::new("t").grid_blocks(8).ialu(1).build();
        shrink_grid(&mut tiny, 4);
        assert_eq!(tiny.grid_blocks, 8, "a quick run must not inflate work");
        let mut one = KernelBuilder::new("o").grid_blocks(1).ialu(1).build();
        shrink_grid(&mut one, 4);
        assert_eq!(one.grid_blocks, 1);
    }
}
