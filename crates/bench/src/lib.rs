//! # grs-bench — experiment harness
//!
//! Library backing the `repro` binary and the Criterion benches: the sweep
//! service ([`service`]) — a process-wide job queue with content-hash
//! memoization, in-flight dedup, and supervised workers — its batch client
//! ([`runner`]), plus one function per paper table/figure
//! ([`experiments`]). Each experiment prints the same rows/series the paper
//! reports so that EXPERIMENTS.md can record paper-vs-measured side by side.

pub mod experiments;
pub mod perf;
pub mod runner;
pub mod scenario;
pub mod service;
pub mod sweep;
pub mod trace;

pub use runner::{run_all, run_all_report, Job, JobResult};
pub use service::{
    job_key, ConfigHash, JobHandle, JobOutcome, JobSource, ServiceConfig, SweepService,
};
