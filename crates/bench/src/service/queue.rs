//! The service's shared state: pending queue, in-flight table, memo store,
//! counters — everything behind the one mutex.
//!
//! A submission's life: [`job_key`](super::hash::job_key) → memo probe →
//! in-flight probe → pending queue. The three structures share one lock, so
//! the probe-then-insert sequence is atomic and two racing submissions of
//! the same key can never both enqueue: the loser of the race *attaches* to
//! the winner's [`JobCell`] and the simulation runs once.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use grs_isa::Kernel;
use grs_sim::{FaultPlan, RunConfig, ServiceStats};

use super::hash::ConfigHash;
use super::memo::MemoStore;
use super::JobOutcome;

/// One unit of work owned by the queue: everything a worker needs to run
/// the simulation, plus the precomputed identity key.
pub(super) struct Task {
    pub key: ConfigHash,
    pub cfg: RunConfig,
    pub kernel: Kernel,
    pub faults: Option<FaultPlan>,
}

/// The rendezvous point between a job's executor and its subscribers: a
/// write-once slot plus a condvar. Every [`JobHandle`](super::JobHandle)
/// for the same in-flight key shares one cell, which is what makes late
/// subscription (attach instead of re-enqueue) work.
pub(super) struct JobCell {
    slot: Mutex<Option<Arc<JobOutcome>>>,
    done: Condvar,
}

impl JobCell {
    pub fn new() -> Self {
        JobCell {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// A cell born resolved (memo hits hand these out).
    pub fn resolved(outcome: Arc<JobOutcome>) -> Self {
        JobCell {
            slot: Mutex::new(Some(outcome)),
            done: Condvar::new(),
        }
    }

    /// Publish the outcome and wake every subscriber. Write-once: a second
    /// resolve is a logic error upstream (the in-flight table guarantees
    /// one executor per cell).
    pub fn resolve(&self, outcome: Arc<JobOutcome>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "job cell resolved twice");
        *slot = Some(outcome);
        self.done.notify_all();
    }

    /// The outcome, if already published.
    pub fn try_get(&self) -> Option<Arc<JobOutcome>> {
        self.slot.lock().unwrap().clone()
    }

    /// Block until the outcome is published.
    pub fn wait(&self) -> Arc<JobOutcome> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return Arc::clone(outcome);
            }
            slot = self.done.wait(slot).unwrap();
        }
    }
}

/// Everything the service mutates, under one mutex (see module docs).
pub(super) struct State {
    /// Tasks not yet picked up by an executor, FIFO.
    pub pending: VecDeque<Task>,
    /// Key → cell for every submitted-but-unresolved job. A key is present
    /// here from submission until its outcome lands in the memo store.
    pub inflight: HashMap<ConfigHash, Arc<JobCell>>,
    /// Completed outcomes, bounded LRU.
    pub memo: MemoStore,
    /// Service counters surfaced through [`SweepService::stats`](super::SweepService::stats).
    pub stats: ServiceStats,
    /// Set once at drop; workers exit when pending drains.
    pub shutdown: bool,
}

/// The state plus the worker wake-up signal — the `Arc` shared by the
/// service façade, its worker threads, and every [`JobHandle`](super::JobHandle).
pub(super) struct Shared {
    pub state: Mutex<State>,
    /// Signalled on every enqueue and on shutdown.
    pub work: Condvar,
}

impl Shared {
    pub fn new(memo_capacity: usize) -> Self {
        Shared {
            state: Mutex::new(State {
                pending: VecDeque::new(),
                inflight: HashMap::new(),
                memo: MemoStore::new(memo_capacity),
                stats: ServiceStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }
}
