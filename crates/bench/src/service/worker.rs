//! Job execution: the worker loop, the inline helper, and the per-job
//! recovery ladder.
//!
//! Every job runs under the full PR-7 supervision stack —
//! [`Simulator::try_run_report`] brings checkpoint/resume, the livelock
//! watchdog, and the shard-degradation ladder — and this module adds the
//! outermost rung: `catch_unwind` around the whole supervised run, with one
//! retry on the sequential engine (`shards: None`, the smallest possible
//! surface) if the first attempt panics *or* returns a `RunError`. A job
//! that fails both attempts is recorded as a failed [`JobOutcome`] — and
//! memoized, because the simulator is deterministic and resubmitting a
//! doomed config should not re-run its doomed retry ladder.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use grs_sim::{RunConfig, RunReport, Simulator};

use super::queue::{Shared, Task};
use super::JobOutcome;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

fn attempt(cfg: &RunConfig, task: &Task) -> Result<RunReport, String> {
    let sim = Simulator::new(cfg.clone());
    catch_unwind(AssertUnwindSafe(|| match &task.faults {
        Some(plan) => sim.try_run_report_with_faults(&task.kernel, plan),
        None => sim.try_run_report(&task.kernel),
    }))
    .map_err(panic_message)
    .and_then(|r| r.map_err(|e| e.to_string()))
}

/// Run the simulation with the two-attempt ladder described in the module
/// docs. Pure with respect to the service (no locks taken).
fn execute(task: &Task) -> JobOutcome {
    match attempt(&task.cfg, task) {
        Ok(report) => JobOutcome {
            report: Ok(Arc::new(report)),
            attempts: 1,
            recovered_panic: false,
            first_error: None,
        },
        Err(first) => {
            let retry = task.cfg.clone().with_shards(None);
            match attempt(&retry, task) {
                Ok(report) => JobOutcome {
                    report: Ok(Arc::new(report)),
                    attempts: 2,
                    recovered_panic: true,
                    first_error: Some(first),
                },
                Err(second) => JobOutcome {
                    report: Err(second),
                    attempts: 2,
                    recovered_panic: false,
                    first_error: Some(first),
                },
            }
        }
    }
}

/// Execute one task to completion: simulate (unlocked), then under the
/// state lock bump counters, memoize the outcome, and retire the in-flight
/// entry; finally resolve the cell so subscribers wake. Shared by worker
/// threads, [`SweepService::drain`](super::SweepService::drain), and the
/// help-first path in [`JobHandle::wait`](super::JobHandle::wait).
pub(super) fn run_one(shared: &Shared, task: Task) {
    let outcome = Arc::new(execute(&task));
    let cell = {
        let mut state = shared.state.lock().unwrap();
        state.stats.executed += 1;
        match &outcome.report {
            Ok(report) => {
                if outcome.recovered_panic || !report.recoveries.is_empty() {
                    state.stats.recovered += 1;
                }
            }
            Err(_) => state.stats.failed += 1,
        }
        state.memo.insert(task.key, Arc::clone(&outcome));
        state.stats.evicted = state.memo.evicted();
        state.inflight.remove(&task.key)
    };
    if let Some(cell) = cell {
        cell.resolve(outcome);
    }
}

/// Body of one worker thread: pop-or-sleep until shutdown.
pub(super) fn worker_loop(shared: Arc<Shared>) {
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(task) = state.pending.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        run_one(&shared, task);
    }
}
