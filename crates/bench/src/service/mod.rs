//! # Sweep service: persistent job queue with content-hash memoization
//!
//! Every simulation request in the bench harness flows through one of
//! these: a submission is a `(RunConfig, Kernel)` pair (plus an optional
//! [`FaultPlan`]), keyed by the canonical [`ConfigHash`] over *every*
//! semantic field of both ([`hash`]). The pipeline is
//!
//! ```text
//!   submit ──▶ job_key ──▶ memo store ──hit──▶ resolved JobHandle
//!                 │            miss
//!                 ▼
//!           in-flight table ──hit──▶ attached JobHandle (shared cell)
//!                 │            miss
//!                 ▼
//!           pending queue ──▶ worker pool ──▶ supervision ladder
//!                                   │    (checkpoint/watchdog/degrade)
//!                                   ▼
//!                           memoize + resolve cell
//! ```
//!
//! The load-bearing invariant: **the simulator is deterministic, so
//! memoization is exact.** Equal keys mean equal inputs, equal inputs mean
//! bit-identical [`RunReport`]s (the determinism suites pin this across
//! engines, shard counts, and memory models), so answering a resubmission
//! from the memo store is indistinguishable from re-running it — modulo
//! the saved CPU-hours. The same argument covers in-flight dedup: a late
//! subscriber to a running job attaches to the first submission's
//! [`JobCell`](queue::JobCell) and receives the one shared outcome.
//!
//! The queue is *persistent* at process scope: [`SweepService::global`]
//! hands out one process-wide instance that [`crate::run_all`] /
//! [`crate::run_all_report`] (and through them every experiment, the perf
//! harness, and `repro sweep`) share, so duplicate configurations dedupe
//! across sweeps, not just within one. Tests wanting exact counter
//! assertions build private instances with [`SweepService::new`].

pub mod hash;
pub mod memo;
mod queue;
mod worker;

use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use grs_isa::Kernel;
use grs_sim::{FaultPlan, RunConfig, RunReport, ServiceStats};

pub use hash::{job_key, ConfigHash};

use queue::{JobCell, Shared, State, Task};

/// Terminal result of one executed (or failed) job, shared by every
/// subscriber and by the memo store.
#[derive(Debug)]
pub struct JobOutcome {
    /// The supervised run's report, or the last attempt's error rendering.
    pub report: Result<Arc<RunReport>, String>,
    /// Simulation attempts made (1, or 2 after the sequential retry).
    pub attempts: u32,
    /// The first attempt failed but the sequential-engine retry succeeded;
    /// [`Self::first_error`] holds the original failure.
    pub recovered_panic: bool,
    /// The first attempt's error when a retry happened (whether or not the
    /// retry succeeded), `None` on a clean first attempt.
    pub first_error: Option<String>,
}

/// How a submission was answered — the service's visible dedup decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// New work: the job was enqueued for execution.
    Queued,
    /// An identical job was already in flight; this handle subscribed to it.
    Attached,
    /// Answered from the memo store; the handle was born resolved.
    MemoHit,
}

/// Subscription to one job's outcome. Cheap to clone conceptually (all
/// handles to the same in-flight key share one cell); waiting is
/// *help-first*: a blocked waiter drains pending tasks inline rather than
/// idling, so a zero-worker service still makes progress and a full worker
/// pool gets an extra pair of hands.
pub struct JobHandle {
    key: ConfigHash,
    source: JobSource,
    cell: Arc<JobCell>,
    shared: Arc<Shared>,
}

impl JobHandle {
    /// The job's canonical content hash.
    pub fn key(&self) -> ConfigHash {
        self.key
    }

    /// How the service answered this submission.
    pub fn source(&self) -> JobSource {
        self.source
    }

    /// The outcome, if already available (memo hits always are).
    pub fn try_get(&self) -> Option<Arc<JobOutcome>> {
        self.cell.try_get()
    }

    /// Block until the outcome is available, helping execute pending work
    /// while waiting (see the type docs).
    pub fn wait(&self) -> Arc<JobOutcome> {
        loop {
            if let Some(outcome) = self.cell.try_get() {
                return outcome;
            }
            // Help-first: run any pending task inline. Executing *any* task
            // makes progress toward ours — either it is ours, or it frees
            // the executor that will take ours.
            let task = { self.shared.state.lock().unwrap().pending.pop_front() };
            match task {
                Some(task) => worker::run_one(&self.shared, task),
                // Nothing pending: ours is running on another thread.
                None => return self.cell.wait(),
            }
        }
    }
}

/// Construction knobs for a private service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads to spawn. `0` spawns none: tasks queue until a
    /// [`JobHandle::wait`], [`SweepService::drain`], or
    /// [`SweepService::sweep`] executes them on the calling thread — the
    /// mode tests use for exact in-flight-dedup counter assertions.
    pub workers: usize,
    /// Memo-store capacity in outcomes (`0` disables memoization).
    pub memo_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            memo_capacity: 512,
        }
    }
}

/// The sweep service. See the [module docs](self) for the architecture.
pub struct SweepService {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl SweepService {
    /// A private instance with its own queue, memo store, and counters.
    pub fn new(cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared::new(cfg.memo_capacity));
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker::worker_loop(shared))
            })
            .collect();
        SweepService {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// The process-wide instance behind [`crate::run_all`] and friends.
    /// Never dropped; its memo store is what makes duplicate configurations
    /// across separate sweeps in one process free.
    pub fn global() -> &'static SweepService {
        static GLOBAL: OnceLock<SweepService> = OnceLock::new();
        GLOBAL.get_or_init(|| SweepService::new(ServiceConfig::default()))
    }

    /// Submit a job. Returns immediately with a [`JobHandle`]; whether the
    /// job was queued, attached to an identical in-flight run, or answered
    /// from the memo store is on [`JobHandle::source`].
    pub fn submit(&self, cfg: RunConfig, kernel: Kernel) -> JobHandle {
        self.submit_inner(cfg, kernel, None)
    }

    /// [`Self::submit`] with a deterministic fault plan riding along. The
    /// plan's scheduled points are part of the job key, so a faulted job
    /// and its undisturbed twin memoize separately — each [`RunReport`]
    /// keeps its own recovery trail.
    pub fn submit_with_faults(
        &self,
        cfg: RunConfig,
        kernel: Kernel,
        faults: FaultPlan,
    ) -> JobHandle {
        self.submit_inner(cfg, kernel, Some(faults))
    }

    fn submit_inner(&self, cfg: RunConfig, kernel: Kernel, faults: Option<FaultPlan>) -> JobHandle {
        let key = job_key(&cfg, &kernel, faults.as_ref());
        let mut state = self.shared.state.lock().unwrap();
        state.stats.submitted += 1;
        if let Some(outcome) = state.memo.get(&key) {
            state.stats.memo_hits += 1;
            return JobHandle {
                key,
                source: JobSource::MemoHit,
                cell: Arc::new(JobCell::resolved(outcome)),
                shared: Arc::clone(&self.shared),
            };
        }
        if let Some(cell) = state.inflight.get(&key).map(Arc::clone) {
            state.stats.deduped += 1;
            return JobHandle {
                key,
                source: JobSource::Attached,
                cell,
                shared: Arc::clone(&self.shared),
            };
        }
        let cell = Arc::new(JobCell::new());
        state.inflight.insert(key, Arc::clone(&cell));
        state.pending.push_back(Task {
            key,
            cfg,
            kernel,
            faults,
        });
        drop(state);
        self.shared.work.notify_one();
        JobHandle {
            key,
            source: JobSource::Queued,
            cell,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submit a batch and wait for all of it; results come back in
    /// submission order as [`crate::JobResult`]s (the hardened-sweep shape
    /// [`crate::run_all_report`] has always returned).
    pub fn sweep(&self, jobs: Vec<crate::Job>) -> Vec<crate::JobResult> {
        let handles: Vec<(String, JobHandle)> = jobs
            .into_iter()
            .map(|j| (j.label, self.submit(j.cfg, j.kernel)))
            .collect();
        handles
            .into_iter()
            .map(|(label, h)| {
                let o = h.wait();
                match &o.report {
                    Ok(report) => crate::JobResult {
                        label,
                        stats: Some(report.stats.clone()),
                        attempts: o.attempts,
                        recovered: o.recovered_panic,
                        error: o.first_error.clone(),
                    },
                    Err(e) => crate::JobResult {
                        label,
                        stats: None,
                        attempts: o.attempts,
                        recovered: false,
                        error: Some(e.clone()),
                    },
                }
            })
            .collect()
    }

    /// Execute every pending task on the calling thread, in queue order.
    /// With `workers: 0` this is the whole execution engine; with workers
    /// it is an extra pair of hands. Returns when the pending queue is
    /// empty (tasks already claimed by workers may still be running —
    /// [`JobHandle::wait`] for those).
    pub fn drain(&self) {
        loop {
            let task = { self.shared.state.lock().unwrap().pending.pop_front() };
            match task {
                Some(task) => worker::run_one(&self.shared, task),
                None => break,
            }
        }
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.state.lock().unwrap().stats
    }

    /// Number of outcomes currently memoized.
    pub fn memo_len(&self) -> usize {
        self.shared.state.lock().unwrap().memo.len()
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        let orphans: Vec<(Option<Arc<JobCell>>, Arc<JobOutcome>)> = {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            // Unstarted tasks will never run; resolve their cells so no
            // subscriber blocks forever on a dead service.
            let pending: Vec<Task> = state.pending.drain(..).collect();
            pending
                .into_iter()
                .map(|task| {
                    let outcome = Arc::new(JobOutcome {
                        report: Err("sweep service shut down before the job ran".to_string()),
                        attempts: 0,
                        recovered_panic: false,
                        first_error: None,
                    });
                    (state.inflight.remove(&task.key), outcome)
                })
                .collect()
        };
        for (cell, outcome) in orphans {
            if let Some(cell) = cell {
                cell.resolve(outcome);
            }
        }
        self.shared.work.notify_all();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

// `State` is reachable only through `Shared`'s mutex; keep the compiler
// honest about the types crossing worker-thread boundaries.
#[allow(dead_code)]
fn assert_send() {
    fn check<T: Send>() {}
    check::<State>();
    check::<Task>();
    check::<Arc<Shared>>();
}
