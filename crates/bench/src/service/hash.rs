//! Canonical content hashing of sweep jobs.
//!
//! A job's identity is the pair `(RunConfig, Kernel)` plus any fault plan
//! riding along; [`job_key`] folds every semantic field of all three into a
//! stable 128-bit [`ConfigHash`]. Because each simulation is a pure
//! function of exactly these inputs (the determinism suites pin this
//! bit-for-bit), two jobs with equal keys *must* produce identical
//! [`grs_sim::RunReport`]s — which is what makes exact memoization sound.
//!
//! Design rules:
//!
//! * **Exhaustive destructuring.** Every struct walked here is taken apart
//!   with a full pattern (`let RunConfig { gpu, scheduler, .. } = cfg` with
//!   *no* `..`), so adding a field to any input type is a compile error at
//!   this file until the new field is either hashed or consciously skipped.
//!   A field silently missing from the key would let memoization serve the
//!   wrong result; a compile error is the cheap way to make that
//!   impossible.
//! * **Everything is semantic.** Even knobs proven stats-invariant
//!   (`fast_forward`, `telemetry`, `checkpoint_every`, `shards`) are
//!   hashed: the memoized artifact is the whole `RunReport` — checkpoint
//!   counts, recovery trails, telemetry — and those *do* depend on the
//!   knobs. Keying conservatively costs a re-simulation; keying loosely
//!   could hand a telemetry-less report to a telemetry-on submission.
//! * **Stable by construction.** The mixing function is a fixed SplitMix64
//!   chain over two lanes — no `std::hash` machinery whose output may
//!   change across releases — so keys are reproducible across processes
//!   and platforms, and the pinned discrimination tests in
//!   `tests/sweep_service.rs` stay meaningful.
//!
//! Kernel identity is a *content* hash: name, launch footprint, declaration
//! order, and the full instruction stream. Generated kernels
//! (`gen:<family>:<seed>:<size>`) need no special case — their name is the
//! canonical spec and their content is a pure function of it — but the
//! content hash additionally protects against post-generation mutation
//! (e.g. `shrink_grid` for `--quick` runs), which a spec-only key would
//! alias.

use grs_core::{GpuConfig, LatencyConfig, MemConfig, SchedulerKind, SmConfig};
use grs_isa::{GlobalPattern, Instr, Kernel, Op, Program};
use grs_sim::{FaultPlan, MemoryModel, RunConfig, SharingMode, TelemetryConfig};

/// Bump when the hashing scheme itself changes (field order, encoding), so
/// persisted keys from an older scheme can never alias a newer one.
const KEY_VERSION: u64 = 1;

/// Canonical 128-bit identity of a sweep job. Equal keys mean equal
/// simulation inputs; the service's memo store and in-flight table are both
/// indexed by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigHash([u64; 2]);

impl ConfigHash {
    /// The raw 128 bits, high lane first.
    pub fn to_u128(self) -> u128 {
        (u128::from(self.0[0]) << 64) | u128::from(self.0[1])
    }
}

impl std::fmt::Display for ConfigHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// SplitMix64 finalizer: a well-mixed bijection on `u64`.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-lane chained mixer. Each written word perturbs both lanes through
/// the SplitMix64 bijection; chaining makes the digest order-dependent, so
/// transposed fields (and different-length collections, via length
/// prefixes) produce different keys.
#[derive(Debug)]
pub struct StableHasher {
    lanes: [u64; 2],
}

impl StableHasher {
    /// Fresh hasher, seeded with the key-scheme version.
    pub fn new() -> Self {
        let mut h = StableHasher {
            lanes: [0x6A09_E667_F3BC_C908, 0xBB67_AE85_84CA_A73B],
        };
        h.write_u64(KEY_VERSION);
        h
    }

    /// Mix one word into both lanes.
    pub fn write_u64(&mut self, v: u64) {
        self.lanes[0] = splitmix(self.lanes[0] ^ v);
        self.lanes[1] = splitmix(self.lanes[1].rotate_left(23) ^ v ^ 0xC2B2_AE3D_2745_1AFD);
    }

    /// Mix a narrower integer (widened; width does not affect the digest,
    /// field order and count do).
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Mix a boolean as 0/1.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Mix an `f64` by its exact bit pattern (thresholds are compared
    /// bitwise by the simulator's config equality too).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mix a byte string: length prefix, then 8-byte little-endian chunks.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Mix an optional value: a presence discriminant, then the value.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u64(0),
            Some(x) => {
                self.write_u64(1);
                self.write_u64(x);
            }
        }
    }

    /// Finish the digest.
    pub fn finish(self) -> ConfigHash {
        // One final avalanche so short inputs still fill both lanes.
        ConfigHash([
            splitmix(self.lanes[0] ^ self.lanes[1].rotate_left(32)),
            splitmix(self.lanes[1] ^ self.lanes[0]),
        ])
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn hash_scheduler(h: &mut StableHasher, s: SchedulerKind) {
    match s {
        SchedulerKind::Lrr => h.write_u64(0),
        SchedulerKind::Gto => h.write_u64(1),
        SchedulerKind::TwoLevel { group_size } => {
            h.write_u64(2);
            h.write_u32(group_size);
        }
        SchedulerKind::Owf => h.write_u64(3),
    }
}

fn hash_gpu(h: &mut StableHasher, gpu: &GpuConfig) {
    let GpuConfig {
        num_sms,
        sm,
        lat,
        mem,
    } = gpu;
    h.write_u32(*num_sms);
    let SmConfig {
        registers,
        scratchpad_bytes,
        max_threads,
        max_blocks,
        schedulers,
    } = sm;
    for v in [
        registers,
        scratchpad_bytes,
        max_threads,
        max_blocks,
        schedulers,
    ] {
        h.write_u32(*v);
    }
    let LatencyConfig {
        ialu,
        imul,
        fp,
        sfu,
        scratchpad,
    } = lat;
    for v in [ialu, imul, fp, sfu, scratchpad] {
        h.write_u32(*v);
    }
    let MemConfig {
        l1_bytes,
        l1_ways,
        l2_bytes,
        l2_ways,
        line_bytes,
        l1_hit_latency,
        l2_latency,
        dram_latency,
        dram_service_q4,
        l2_service_q4,
        max_pending_per_warp,
        mem_partitions,
        mshr_entries,
        dram_queue_entries,
    } = mem;
    for v in [
        l1_bytes,
        l1_ways,
        l2_bytes,
        l2_ways,
        line_bytes,
        l1_hit_latency,
        l2_latency,
        dram_latency,
        dram_service_q4,
        l2_service_q4,
        max_pending_per_warp,
        mem_partitions,
        mshr_entries,
        dram_queue_entries,
    ] {
        h.write_u32(*v);
    }
}

fn hash_instr(h: &mut StableHasher, i: &Instr) {
    match i.op {
        Op::IAlu => h.write_u64(0),
        Op::IMul => h.write_u64(1),
        Op::FAdd => h.write_u64(2),
        Op::FMul => h.write_u64(3),
        Op::FFma => h.write_u64(4),
        Op::Sfu => h.write_u64(5),
        Op::LdGlobal(p) => {
            h.write_u64(6);
            hash_global_pattern(h, p);
        }
        Op::StGlobal(p) => {
            h.write_u64(7);
            hash_global_pattern(h, p);
        }
        Op::LdShared(p) => {
            h.write_u64(8);
            h.write_u32(p.offset);
            h.write_u32(p.bytes);
        }
        Op::StShared(p) => {
            h.write_u64(9);
            h.write_u32(p.offset);
            h.write_u32(p.bytes);
        }
        Op::Barrier => h.write_u64(10),
        Op::BranchBack {
            target,
            trips,
            loop_id,
        } => {
            h.write_u64(11);
            h.write_u64(u64::from(target));
            h.write_u64(u64::from(trips));
            h.write_u64(u64::from(loop_id));
        }
        Op::Exit => h.write_u64(12),
    }
    h.write_opt_u64(i.dst.map(|r| u64::from(r.0)));
    // Only the valid sources are identity; the padding slots beyond `nsrc`
    // are not observable and must not perturb the key.
    h.write_u64(i.sources().len() as u64);
    for r in i.sources() {
        h.write_u64(u64::from(r.0));
    }
}

fn hash_global_pattern(h: &mut StableHasher, p: GlobalPattern) {
    match p {
        GlobalPattern::Stream => h.write_u64(0),
        GlobalPattern::BlockTile { tile_lines } => {
            h.write_u64(1);
            h.write_u32(tile_lines);
        }
        GlobalPattern::KernelTile { tile_lines } => {
            h.write_u64(2);
            h.write_u32(tile_lines);
        }
        GlobalPattern::Scatter { span_lines, txns } => {
            h.write_u64(3);
            h.write_u32(span_lines);
            h.write_u64(u64::from(txns));
        }
    }
}

/// Fold a kernel's full content into the hasher: name (for generated
/// kernels this is the canonical gen-spec), launch footprint, declaration
/// order, and every instruction.
pub fn hash_kernel(h: &mut StableHasher, kernel: &Kernel) {
    let Kernel {
        name,
        threads_per_block,
        regs_per_thread,
        smem_per_block,
        grid_blocks,
        program,
        decl_seq,
    } = kernel;
    h.write_bytes(name.as_bytes());
    for v in [
        threads_per_block,
        regs_per_thread,
        smem_per_block,
        grid_blocks,
    ] {
        h.write_u32(*v);
    }
    h.write_u64(decl_seq.len() as u64);
    for s in decl_seq {
        h.write_u64(u64::from(*s));
    }
    let Program { instrs } = program;
    h.write_u64(instrs.len() as u64);
    for i in instrs {
        hash_instr(h, i);
    }
}

/// Fold every field of a run configuration into the hasher.
pub fn hash_config(h: &mut StableHasher, cfg: &RunConfig) {
    let RunConfig {
        gpu,
        scheduler,
        sharing,
        threshold,
        dyn_throttle,
        reorder_decls,
        fast_forward,
        memory_model,
        shards,
        checkpoint_every,
        telemetry,
        watchdog,
        max_cycles,
    } = cfg;
    hash_gpu(h, gpu);
    hash_scheduler(h, *scheduler);
    h.write_u64(match sharing {
        SharingMode::None => 0,
        SharingMode::Registers => 1,
        SharingMode::Scratchpad => 2,
    });
    h.write_f64(threshold.t());
    h.write_bool(*dyn_throttle);
    h.write_bool(*reorder_decls);
    h.write_bool(*fast_forward);
    h.write_u64(match memory_model {
        MemoryModel::Functional => 0,
        MemoryModel::Event => 1,
    });
    h.write_opt_u64(shards.map(|s| s as u64));
    h.write_opt_u64(*checkpoint_every);
    match telemetry {
        None => h.write_u64(0),
        Some(TelemetryConfig {
            capacity,
            sample_every,
        }) => {
            h.write_u64(1);
            h.write_u64(*capacity as u64);
            h.write_u64(*sample_every);
        }
    }
    h.write_opt_u64(*watchdog);
    h.write_u64(*max_cycles);
}

/// The canonical key of a sweep job: configuration + kernel content + the
/// fault plan's scheduled points (a plan's *fired* state is runtime, not
/// identity — two fresh plans with equal points are the same job).
pub fn job_key(cfg: &RunConfig, kernel: &Kernel, faults: Option<&FaultPlan>) -> ConfigHash {
    let mut h = StableHasher::new();
    hash_config(&mut h, cfg);
    hash_kernel(&mut h, kernel);
    match faults {
        None => h.write_u64(0),
        Some(plan) => {
            let points = plan.points();
            h.write_u64(1);
            h.write_u64(points.len() as u64);
            for (epoch, shard) in points {
                h.write_u64(epoch);
                h.write_u64(shard as u64);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_workloads::gen::GenSpec;

    fn base() -> (RunConfig, Kernel) {
        (
            RunConfig::baseline_lrr(),
            GenSpec::parse("gen:bursty:7:small").unwrap().build(),
        )
    }

    #[test]
    fn equal_inputs_hash_equal() {
        let (cfg_a, k_a) = base();
        let (cfg_b, k_b) = base();
        assert_eq!(job_key(&cfg_a, &k_a, None), job_key(&cfg_b, &k_b, None));
    }

    #[test]
    fn the_digest_is_pinned() {
        // The key must be stable across processes and releases: a change
        // here is a memo-format break and requires bumping KEY_VERSION.
        let (cfg, k) = base();
        let key = job_key(&cfg, &k, None);
        assert_eq!(key, job_key(&cfg, &k, None));
        assert_eq!(format!("{key}").len(), 32, "128-bit hex rendering");
    }

    #[test]
    fn fault_plan_identity_is_its_points() {
        let (cfg, k) = base();
        let a = FaultPlan::at(&[(3, 1)]);
        let b = FaultPlan::at(&[(3, 1)]);
        assert_eq!(
            job_key(&cfg, &k, Some(&a)),
            job_key(&cfg, &k, Some(&b)),
            "two fresh plans with equal points are the same job"
        );
        assert_ne!(job_key(&cfg, &k, None), job_key(&cfg, &k, Some(&a)));
        let c = FaultPlan::at(&[(3, 2)]);
        assert_ne!(job_key(&cfg, &k, Some(&a)), job_key(&cfg, &k, Some(&c)));
    }

    #[test]
    fn kernel_content_mutation_changes_the_key() {
        let (cfg, k) = base();
        let mut shrunk = k.clone();
        shrunk.grid_blocks -= 1;
        assert_ne!(
            job_key(&cfg, &k, None),
            job_key(&cfg, &shrunk, None),
            "a shrunk grid is a different job even under the same spec name"
        );
    }
}
