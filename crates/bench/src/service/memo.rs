//! Bounded LRU memo store of completed job outcomes.
//!
//! Maps a [`ConfigHash`] to the `Arc<JobOutcome>` the worker produced, so a
//! resubmission of the same job is answered without touching the simulator.
//! Failures are memoized too: the simulator is deterministic, so a config
//! that yields `RunError::KernelDoesNotFit` yields it every time — caching
//! the error saves the doomed retry ladder on resubmission.
//!
//! Recency is tracked with a lazy-stamp queue: every hit pushes a fresh
//! `(key, stamp)` pair instead of splicing the old one out, and eviction
//! pops entries whose stamp is stale. This keeps both hit and insert O(1)
//! amortized without an intrusive list, at the cost of the queue holding up
//! to one stale entry per hit (bounded by compaction below).

use std::collections::{HashMap, VecDeque};

use super::hash::ConfigHash;
use super::JobOutcome;
use std::sync::Arc;

struct Entry {
    outcome: Arc<super::JobOutcome>,
    /// Stamp of this key's newest recency-queue entry; older queue entries
    /// for the key are stale and skipped at eviction time.
    stamp: u64,
}

/// Bounded LRU map from job key to completed outcome.
pub struct MemoStore {
    entries: HashMap<ConfigHash, Entry>,
    /// Recency queue, oldest first; an entry is live iff its stamp matches
    /// the map's.
    recency: VecDeque<(ConfigHash, u64)>,
    next_stamp: u64,
    capacity: usize,
    evicted: u64,
}

impl MemoStore {
    /// A store holding at most `capacity` outcomes (0 disables memoization).
    pub fn new(capacity: usize) -> Self {
        MemoStore {
            entries: HashMap::new(),
            recency: VecDeque::new(),
            next_stamp: 0,
            capacity,
            evicted: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Look up a completed outcome, refreshing its recency on hit.
    pub fn get(&mut self, key: &ConfigHash) -> Option<Arc<JobOutcome>> {
        let stamp = self.stamp();
        let entry = self.entries.get_mut(key)?;
        entry.stamp = stamp;
        let outcome = Arc::clone(&entry.outcome);
        self.recency.push_back((*key, stamp));
        self.compact();
        Some(outcome)
    }

    /// Insert (or refresh) an outcome, evicting the least recently used
    /// entries if over capacity.
    pub fn insert(&mut self, key: ConfigHash, outcome: Arc<JobOutcome>) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.stamp();
        self.entries.insert(key, Entry { outcome, stamp });
        self.recency.push_back((key, stamp));
        while self.entries.len() > self.capacity {
            self.evict_one();
        }
        self.compact();
    }

    fn evict_one(&mut self) {
        while let Some((key, stamp)) = self.recency.pop_front() {
            match self.entries.get(&key) {
                Some(e) if e.stamp == stamp => {
                    self.entries.remove(&key);
                    self.evicted += 1;
                    return;
                }
                _ => {} // stale queue entry — the key was refreshed or evicted
            }
        }
    }

    /// Drop stale recency entries from the front so the queue's length
    /// stays proportional to the live entry count.
    fn compact(&mut self) {
        if self.recency.len() <= 2 * self.entries.len() + 8 {
            return;
        }
        let entries = &self.entries;
        self.recency
            .retain(|(key, stamp)| matches!(entries.get(key), Some(e) if e.stamp == *stamp));
    }

    /// Number of memoized outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total evictions since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::super::JobOutcome;
    use super::*;

    fn key(n: u64) -> ConfigHash {
        use super::super::hash::StableHasher;
        let mut h = StableHasher::new();
        h.write_u64(n);
        h.finish()
    }

    fn outcome(tag: &str) -> Arc<JobOutcome> {
        Arc::new(JobOutcome {
            report: Err(tag.to_string()),
            attempts: 1,
            recovered_panic: false,
            first_error: None,
        })
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut m = MemoStore::new(2);
        m.insert(key(1), outcome("a"));
        m.insert(key(2), outcome("b"));
        assert!(m.get(&key(1)).is_some(), "refresh 1 so 2 is coldest");
        m.insert(key(3), outcome("c"));
        assert_eq!(m.len(), 2);
        assert!(m.get(&key(2)).is_none(), "2 was least recently used");
        assert!(m.get(&key(1)).is_some());
        assert!(m.get(&key(3)).is_some());
        assert_eq!(m.evicted(), 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let mut m = MemoStore::new(0);
        m.insert(key(1), outcome("a"));
        assert!(m.is_empty());
        assert!(m.get(&key(1)).is_none());
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let mut m = MemoStore::new(4);
        for n in 0..4 {
            m.insert(key(n), outcome("x"));
        }
        for _ in 0..10_000 {
            assert!(m.get(&key(2)).is_some());
        }
        assert!(
            m.recency.len() <= 2 * m.entries.len() + 8,
            "lazy stamps must be compacted, queue is {} long",
            m.recency.len()
        );
    }
}
