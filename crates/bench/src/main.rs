//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   config   Table I machine description
//!   suites   Tables II/III/IV benchmark footprints
//!   hwcost   Sec. V hardware storage overhead
//!   fig1     Fig. 1  motivation: resident blocks + resource waste
//!   fig8     Fig. 8  resident blocks and IPC improvement (reg + scratchpad)
//!   fig9     Fig. 9  optimization ablation + stall/idle decrease
//!   fig10    Fig. 10 sharing vs GTO and Two-Level baselines
//!   fig11    Fig. 11 sharing vs doubled-resource LRR baselines
//!   fig12    Fig. 12 Set-3 policy equivalences
//!   table5   Table V/VI  IPC and blocks vs %register sharing
//!   table7   Table VII/VIII IPC and blocks vs %scratchpad sharing
//!   perf     simulator-engine throughput (fast-forward vs reference, the
//!            sharded epoch engine at several shard counts, the supervision
//!            layer's overhead, and the telemetry subsystem's overhead);
//!            writes BENCH_pr2.json, BENCH_pr6.json, BENCH_pr7.json and
//!            BENCH_pr8.json (not paper artifacts)
//!   trace    run one scenario with cycle-level telemetry and export a
//!            Perfetto-loadable Chrome trace (and optionally a metrics
//!            CSV): repro trace [conv1-28|hotspot-28] [--out=trace.json]
//!            [--metrics=metrics.csv]
//!   run      run one scenario — a fixed benchmark name or a generated
//!            stress-profile spec — across the baseline/sharing config
//!            matrix and print the comparison table:
//!            repro run <name|gen:<family>:<seed>[:<size>]> [--check]
//!            (--check re-runs the baseline on the per-cycle reference and
//!            2-shard engines and asserts bit-identical statistics)
//!   sweep    batch scenarios through the sweep service and print its
//!            dedup/memoization accounting:
//!            repro sweep <spec>... [--matrix] [--warm-check]
//!            (specs are benchmark names, gen:... specs, or the literal
//!            `corpus` for the pinned generated corpus; --matrix crosses
//!            every spec with the `repro run` config matrix; --warm-check
//!            resubmits the whole batch and asserts the warm pass is 100%
//!            memo hits with bit-identical statistics)
//!   perf-gate  scheduled perf-regression gate: measure the primary
//!            fast-forward speedup and exit nonzero below the floor
//!            (default 5x, override with --min-speedup=<x>)
//!   all      every paper artifact above (perf runs only when asked)
//! ```
//!
//! `--quick` divides grid sizes by 4 for fast smoke runs.

use grs_bench::{experiments, perf, scenario, sweep, trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let run = |name: &str| match name {
        "config" => experiments::print_config(),
        "suites" => experiments::print_suites(),
        "hwcost" => experiments::print_hwcost(),
        "fig1" => experiments::fig1(),
        "fig8" => experiments::fig8(quick),
        "fig9" => experiments::fig9(quick),
        "fig10" => experiments::fig10(quick),
        "fig11" => experiments::fig11(quick),
        "fig12" => experiments::fig12(quick),
        "table5" => experiments::table5(quick),
        "table7" => experiments::table7(quick),
        "perf" => {
            let reps = if quick { 3 } else { 20 };
            perf::write_report(reps).expect("writing BENCH_pr2.json failed");
            perf::write_shard_report(reps).expect("writing BENCH_pr6.json failed");
            perf::write_supervision_report(reps).expect("writing BENCH_pr7.json failed");
            perf::write_telemetry_report(reps).expect("writing BENCH_pr8.json failed");
        }
        "trace" => {
            let args: Vec<String> = std::env::args().skip(1).collect();
            let scenario = args
                .iter()
                .filter(|a| !a.starts_with("--") && *a != "trace")
                .map(String::as_str)
                .next()
                .unwrap_or("conv1-28");
            let out = args
                .iter()
                .find_map(|a| a.strip_prefix("--out="))
                .unwrap_or("trace.json");
            let metrics = args.iter().find_map(|a| a.strip_prefix("--metrics="));
            if let Err(msg) = trace::run_trace(scenario, out, metrics, quick) {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        "run" => {
            let args: Vec<String> = std::env::args().skip(1).collect();
            let check = args.iter().any(|a| a == "--check");
            let Some(spec) = args
                .iter()
                .filter(|a| !a.starts_with("--") && *a != "run")
                .map(String::as_str)
                .next()
            else {
                eprintln!("usage: repro run <name|gen:<family>:<seed>[:<size>]> [--check]");
                std::process::exit(2);
            };
            if let Err(msg) = scenario::run_scenario(spec, quick, check) {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
        "sweep" => {
            let args: Vec<String> = std::env::args().skip(1).collect();
            let matrix = args.iter().any(|a| a == "--matrix");
            let warm_check = args.iter().any(|a| a == "--warm-check");
            let specs: Vec<String> = args
                .iter()
                .filter(|a| !a.starts_with("--") && *a != "sweep")
                .cloned()
                .collect();
            if let Err(msg) = sweep::run_sweep(&specs, matrix, warm_check, quick) {
                eprintln!("{msg}");
                std::process::exit(if specs.is_empty() { 2 } else { 1 });
            }
        }
        "perf-gate" => {
            let floor = std::env::args()
                .find_map(|a| a.strip_prefix("--min-speedup=")?.parse::<f64>().ok())
                .unwrap_or(5.0);
            let reps = if quick { 3 } else { 10 };
            match perf::check_speedup_gate(floor, reps) {
                Ok(m) => println!(
                    "perf gate ok: {:.2}x >= {floor:.2}x floor ({} cycles, fast {:.4}s, ref {:.4}s)",
                    m.speedup(),
                    m.cycles,
                    m.fast_s,
                    m.reference_s
                ),
                Err(msg) => {
                    eprintln!("{msg}");
                    std::process::exit(1);
                }
            }
        }
        other => {
            if let Some(bench) = other.strip_prefix("inspect=") {
                experiments::inspect(bench, quick);
            } else {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    };

    if what == "all" {
        for name in [
            "config", "suites", "hwcost", "fig1", "fig8", "fig9", "fig10", "fig11", "fig12",
            "table5", "table7",
        ] {
            run(name);
        }
    } else {
        run(what);
    }
}
