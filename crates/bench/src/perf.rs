//! Simulator-engine performance scenario: fast-forward vs reference.
//!
//! The scenario is a **memory-latency-bound** Set-2 kernel: `CONV1`
//! (convolutionSeparable rows pass, Table III) at one resident wave
//! (28 blocks = 2 per SM on the Table I machine) with the DRAM round-trip
//! raised to 1600 shader cycles. The stock model's 280-cycle constant is an
//! *unloaded* latency; under the contention the paper's Set-2 sweeps create,
//! Fermi-class simulators report loaded round-trips well past a thousand
//! cycles, and our bandwidth-server queueing model only captures part of
//! that. Raising the constant stands in for a loaded memory system and puts
//! the simulator in the regime the fast-forward engine targets: >95% of
//! SM-cycles are dead waits between writeback drains.
//!
//! [`measure`] times both engine modes over several repetitions and
//! [`write_report`] emits `BENCH_pr2.json` (used by `repro perf`); the
//! criterion bench `perf_engine` wraps the same scenario.
//!
//! [`write_shard_report`] emits the companion `BENCH_pr6.json`: the same
//! scenarios under the sharded epoch engine (`RunConfig::shards`) at
//! several shard counts, timed against the per-cycle reference loop, with
//! the statistics of every timed run asserted bit-identical to the
//! sequential result (a benchmark that drifted would be measuring a
//! different simulation).
//!
//! [`write_supervision_report`] emits `BENCH_pr7.json`: the wall-clock
//! overhead of the supervision layer (checkpointing, and a full
//! rollback-and-degrade recovery from an injected worker panic), again with
//! every supervised run asserted bit-identical to its plain twin.
//! [`check_speedup_gate`] is the scheduled perf-regression gate over the
//! primary fast-forward speedup ratio.

use std::time::Instant;

use grs_isa::Kernel;
use grs_sim::{FaultPlan, MemoryModel, RunConfig, SimStats, Simulator, TelemetryConfig};

use crate::service::SweepService;

/// Canonical statistics for `(cfg, kernel)`, fetched through the global
/// sweep service. Memoized: the perf reports and the scheduled gate share
/// one reference simulation per configuration instead of each paying for
/// their own. The *timed* loops below still drive the simulator directly —
/// a memo hit has no wall-clock worth measuring — and cross-check their
/// cycle counts against this canonical run.
pub fn reference_stats(cfg: &RunConfig, kernel: &Kernel) -> SimStats {
    let outcome = SweepService::global()
        .submit(cfg.clone(), kernel.clone())
        .wait();
    outcome
        .report
        .as_ref()
        .expect("reference simulation failed")
        .stats
        .clone()
}

/// One timed engine comparison.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Scenario label.
    pub name: String,
    /// Simulated cycles per run (identical in both modes by construction).
    pub cycles: u64,
    /// Best-of-reps wall seconds, fast-forward on.
    pub fast_s: f64,
    /// Best-of-reps wall seconds, fast-forward off (per-cycle reference).
    pub reference_s: f64,
}

impl Measurement {
    /// Simulated cycles per wall-second, fast-forward on.
    pub fn fast_cps(&self) -> f64 {
        self.cycles as f64 / self.fast_s
    }

    /// Simulated cycles per wall-second, reference loop.
    pub fn reference_cps(&self) -> f64 {
        self.cycles as f64 / self.reference_s
    }

    /// Wall-clock speedup of fast-forward over the reference.
    pub fn speedup(&self) -> f64 {
        self.reference_s / self.fast_s
    }
}

/// The primary bench kernel: Set-2 CONV1 at one resident wave.
pub fn scenario_kernel() -> Kernel {
    let mut k = grs_workloads::set2::conv1();
    k.grid_blocks = 28;
    k
}

/// The primary bench machine: Table I with a loaded-memory DRAM round-trip.
pub fn scenario_config() -> RunConfig {
    let mut cfg = RunConfig::baseline_lrr();
    cfg.gpu.mem.dram_latency = 1600;
    cfg
}

/// Time `kernel` under `cfg` with the engine on and off; wall time is the
/// best of `reps` runs per mode (minimum, the standard noise rejector for
/// deterministic workloads).
pub fn measure(name: &str, kernel: &Kernel, cfg: &RunConfig, reps: u32) -> Measurement {
    let mut walls = [f64::MAX; 2];
    let mut cycles = [0u64; 2];
    for (i, ff) in [true, false].into_iter().enumerate() {
        let sim = Simulator::new(cfg.clone().with_fast_forward(ff));
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let stats = sim.run(kernel);
            walls[i] = walls[i].min(t.elapsed().as_secs_f64());
            cycles[i] = stats.cycles;
        }
    }
    assert_eq!(
        cycles[0], cycles[1],
        "fast-forward changed the simulated cycle count"
    );
    assert_eq!(
        cycles[0],
        reference_stats(cfg, kernel).cycles,
        "timed engines disagree with the service's canonical run"
    );
    Measurement {
        name: name.to_string(),
        cycles: cycles[0],
        fast_s: walls[0],
        reference_s: walls[1],
    }
}

/// The primary bench machine under the event-driven memory model: finite
/// MSHR tables and DRAM queues turn the dead-wait scenario into one with
/// genuine back-pressure phases, which exercises the engine's gated-sleep
/// path (stall spans credited in closed form) rather than pure idle skips.
pub fn scenario_config_event() -> RunConfig {
    scenario_config().with_memory_model(MemoryModel::Event)
}

/// Run the `repro perf` suite: the primary scenario plus secondary points
/// (the same scenario under the event memory model, stock latency, and the
/// full default grid) for context, and one *generated* stress profile —
/// the pinned `mshr-thrash` spec under the loaded event model, a
/// back-pressure-heavy point no hand-built Set kernel reaches. Returns the
/// measurements in report order.
pub fn run_suite(reps: u32) -> Vec<Measurement> {
    let kernel = scenario_kernel();
    let primary = scenario_config();
    let event = scenario_config_event();
    let stock = RunConfig::baseline_lrr();
    let mut full_grid = grs_workloads::set2::conv1();
    full_grid.grid_blocks = 168;
    let thrash = grs_workloads::benchmark("gen:mshr-thrash:42:medium")
        .expect("pinned generator spec resolves");
    vec![
        measure("conv1-28/dram1600", &kernel, &primary, reps),
        measure("conv1-28/dram1600/event", &kernel, &event, reps),
        measure("conv1-28/stock", &kernel, &stock, reps),
        measure("conv1-168/dram1600", &full_grid, &primary, reps),
        measure("gen:mshr-thrash:42:medium/event", &thrash, &event, reps),
    ]
}

/// Serialize measurements as the `BENCH_pr2.json` document. Hand-rolled
/// JSON: the offline serde shim has no serializer.
pub fn render_report(ms: &[Measurement]) -> String {
    let mut s = String::from("{\n  \"bench\": \"perf_engine\",\n  \"primary\": \"conv1-28/dram1600\",\n  \"scenarios\": [\n");
    for (i, m) in ms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"fast_forward_s\": {:.6}, \"reference_s\": {:.6}, \"fast_forward_cycles_per_s\": {:.0}, \"reference_cycles_per_s\": {:.0}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.cycles,
            m.fast_s,
            m.reference_s,
            m.fast_cps(),
            m.reference_cps(),
            m.speedup(),
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Execute the suite, print a table, and write `BENCH_pr2.json` into the
/// current directory.
pub fn write_report(reps: u32) -> std::io::Result<()> {
    let ms = run_suite(reps);
    println!(
        "{:<22} {:>9} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "scenario", "cycles", "ff wall", "ref wall", "ff cyc/s", "ref cyc/s", "speedup"
    );
    for m in &ms {
        println!(
            "{:<22} {:>9} {:>9.4}s {:>9.4}s {:>12.0} {:>12.0} {:>7.2}x",
            m.name,
            m.cycles,
            m.fast_s,
            m.reference_s,
            m.fast_cps(),
            m.reference_cps(),
            m.speedup()
        );
    }
    std::fs::write("BENCH_pr2.json", render_report(&ms))?;
    println!("wrote BENCH_pr2.json");
    Ok(())
}

/// One timed sharded-engine comparison. `speedup` follows the
/// `BENCH_pr2.json` convention: wall-clock of the per-cycle reference loop
/// over the engine under test.
#[derive(Debug, Clone)]
pub struct ShardMeasurement {
    /// Scenario label.
    pub name: String,
    /// Shard count the epoch engine ran with.
    pub shards: usize,
    /// Simulated cycles per run (identical across engines by construction).
    pub cycles: u64,
    /// Best-of-reps wall seconds, sharded epoch engine.
    pub sharded_s: f64,
    /// Best-of-reps wall seconds, single-thread fast-forward engine — the
    /// honest in-family comparison (sharding implies fast-forward stepping,
    /// so any win over this number is genuine overlap, not dead-cycle
    /// skipping).
    pub fast_s: f64,
    /// Best-of-reps wall seconds, per-cycle reference loop.
    pub reference_s: f64,
}

impl ShardMeasurement {
    /// Wall-clock speedup of the sharded engine over the reference loop.
    pub fn speedup(&self) -> f64 {
        self.reference_s / self.sharded_s
    }

    /// Wall-clock speedup of the sharded engine over single-thread
    /// fast-forward (>1 only when free-run phases genuinely overlap).
    pub fn speedup_vs_fast(&self) -> f64 {
        self.fast_s / self.sharded_s
    }
}

/// Time `kernel` under `cfg` on the sharded epoch engine at `shards`
/// shards, against the per-cycle reference loop and the single-thread
/// fast-forward engine. Panics if any engine's `SimStats` diverge — the
/// bit-identity contract, re-checked on every benchmark run.
pub fn measure_sharded(
    name: &str,
    kernel: &Kernel,
    cfg: &RunConfig,
    shards: usize,
    reps: u32,
) -> ShardMeasurement {
    let mut walls = [f64::MAX; 3];
    let mut stats = Vec::new();
    let modes = [
        cfg.clone().with_shards(Some(shards)),
        cfg.clone().with_fast_forward(true),
        cfg.clone().with_fast_forward(false),
    ];
    for (i, mode) in modes.into_iter().enumerate() {
        let sim = Simulator::new(mode);
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let s = sim.run(kernel);
            walls[i] = walls[i].min(t.elapsed().as_secs_f64());
            stats.push(s);
        }
    }
    assert!(
        stats.windows(2).all(|w| w[0] == w[1]),
        "sharded/fast-forward/reference statistics diverged"
    );
    ShardMeasurement {
        name: name.to_string(),
        shards,
        cycles: stats[0].cycles,
        sharded_s: walls[0],
        fast_s: walls[1],
        reference_s: walls[2],
    }
}

/// Shard counts for the suite: 2 and 4 (the equivalence-pinned points),
/// plus the machine's available hardware threads when that differs.
pub fn shard_counts() -> Vec<usize> {
    let mut counts = vec![2usize, 4];
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if !counts.contains(&cores) {
        counts.push(cores);
    }
    counts
}

/// Run the sharded-engine suite: the primary dead-wait scenario and its
/// event-memory-model variant (the acceptance scenario), each at every
/// [`shard_counts`] point.
pub fn run_shard_suite(reps: u32) -> Vec<ShardMeasurement> {
    let kernel = scenario_kernel();
    let primary = scenario_config();
    let event = scenario_config_event();
    let mut ms = Vec::new();
    for shards in shard_counts() {
        ms.push(measure_sharded(
            "conv1-28/dram1600",
            &kernel,
            &primary,
            shards,
            reps,
        ));
        ms.push(measure_sharded(
            "conv1-28/dram1600/event",
            &kernel,
            &event,
            shards,
            reps,
        ));
    }
    ms
}

/// Serialize sharded measurements as the `BENCH_pr6.json` document
/// (hand-rolled JSON; the offline serde shim has no serializer). `speedup`
/// is vs the per-cycle reference loop, like `BENCH_pr2.json`.
pub fn render_shard_report(ms: &[ShardMeasurement]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut s = format!(
        "{{\n  \"bench\": \"perf_shards\",\n  \"primary\": \"conv1-28/dram1600/event\",\n  \"available_parallelism\": {cores},\n  \"scenarios\": [\n"
    );
    for (i, m) in ms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, \"cycles\": {}, \"sharded_s\": {:.6}, \"fast_forward_s\": {:.6}, \"reference_s\": {:.6}, \"speedup\": {:.2}, \"speedup_vs_fast_forward\": {:.2}}}{}\n",
            m.name,
            m.shards,
            m.cycles,
            m.sharded_s,
            m.fast_s,
            m.reference_s,
            m.speedup(),
            m.speedup_vs_fast(),
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Execute the sharded suite, print a table, and write `BENCH_pr6.json`
/// into the current directory.
pub fn write_shard_report(reps: u32) -> std::io::Result<()> {
    let ms = run_shard_suite(reps);
    println!(
        "{:<24} {:>6} {:>9} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "scenario", "shards", "cycles", "shard wall", "ff wall", "ref wall", "vs ref", "vs ff"
    );
    for m in &ms {
        println!(
            "{:<24} {:>6} {:>9} {:>9.4}s {:>9.4}s {:>9.4}s {:>7.2}x {:>7.2}x",
            m.name,
            m.shards,
            m.cycles,
            m.sharded_s,
            m.fast_s,
            m.reference_s,
            m.speedup(),
            m.speedup_vs_fast()
        );
    }
    std::fs::write("BENCH_pr6.json", render_shard_report(&ms))?;
    println!("wrote BENCH_pr6.json");
    Ok(())
}

/// One timed supervision-overhead comparison: the same run plain and under
/// a supervision feature (checkpointing, or panic recovery from an injected
/// fault), with the statistics asserted bit-identical — the robustness
/// layer's whole contract is that it is invisible in the results.
#[derive(Debug, Clone)]
pub struct SupervisionMeasurement {
    /// Scenario label.
    pub name: String,
    /// Simulated cycles per run (identical in both modes by construction).
    pub cycles: u64,
    /// Best-of-reps wall seconds, supervision feature off.
    pub plain_s: f64,
    /// Best-of-reps wall seconds, supervision feature on.
    pub supervised_s: f64,
    /// Checkpoints written per supervised run.
    pub checkpoints: u64,
    /// Recovery-ladder hops per supervised run.
    pub recoveries: usize,
}

impl SupervisionMeasurement {
    /// Wall-clock cost of the feature: supervised over plain (≥ ~1.0).
    pub fn overhead(&self) -> f64 {
        self.supervised_s / self.plain_s
    }
}

/// Time `plain` against `supervised` (same kernel), asserting bit-identical
/// statistics. `fault` injects a fresh copy of the given fault points into
/// every supervised rep.
fn measure_supervised(
    name: &str,
    kernel: &Kernel,
    plain: &RunConfig,
    supervised: &RunConfig,
    fault: Option<&[(u64, usize)]>,
    reps: u32,
) -> SupervisionMeasurement {
    let mut plain_s = f64::MAX;
    let mut supervised_s = f64::MAX;
    let base_sim = Simulator::new(plain.clone());
    let sup_sim = Simulator::new(supervised.clone());
    let mut baseline = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let stats = base_sim.run(kernel);
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        baseline = Some(stats);
    }
    let baseline = baseline.expect("reps >= 1");
    let mut checkpoints = 0;
    let mut recoveries = 0;
    for _ in 0..reps.max(1) {
        // A fresh plan per rep: each fault fires once per supervised run.
        let plan = fault.map(FaultPlan::at);
        let t = Instant::now();
        let report = match &plan {
            Some(p) => sup_sim
                .try_run_report_with_faults(kernel, p)
                .expect("valid kernel"),
            None => sup_sim.run_report(kernel),
        };
        supervised_s = supervised_s.min(t.elapsed().as_secs_f64());
        assert_eq!(
            report.stats, baseline,
            "supervision changed the statistics in scenario {name}"
        );
        if let Some(p) = &plan {
            assert_eq!(p.fired(), p.len(), "an injected fault never fired");
        }
        checkpoints = report.checkpoints;
        recoveries = report.recoveries.len();
    }
    SupervisionMeasurement {
        name: name.to_string(),
        cycles: baseline.cycles,
        plain_s,
        supervised_s,
        checkpoints,
        recoveries,
    }
}

/// Run the supervision-overhead suite: checkpointing on the primary
/// event-model scenario (sequential and sharded) and a full
/// rollback-and-degrade recovery from an injected worker panic.
pub fn run_supervision_suite(reps: u32) -> Vec<SupervisionMeasurement> {
    let kernel = scenario_kernel();
    let event = scenario_config_event();
    let sharded = event.clone().with_shards(Some(2));
    vec![
        measure_supervised(
            "checkpoint-5k",
            &kernel,
            &event,
            &event.clone().with_checkpoint_every(Some(5_000)),
            None,
            reps,
        ),
        measure_supervised(
            "checkpoint-5k/shards2",
            &kernel,
            &sharded,
            &sharded.clone().with_checkpoint_every(Some(5_000)),
            None,
            reps,
        ),
        measure_supervised(
            "fault-recovery/shards2",
            &kernel,
            &sharded,
            &sharded.clone().with_checkpoint_every(Some(5_000)),
            Some(&[(10, 1)]),
            reps,
        ),
    ]
}

/// Serialize supervision measurements as the `BENCH_pr7.json` document
/// (hand-rolled JSON; the offline serde shim has no serializer).
/// `stats_identical` is asserted, not sampled — a report only exists if
/// every supervised run matched its plain twin bit for bit.
pub fn render_supervision_report(ms: &[SupervisionMeasurement]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut s = format!(
        "{{\n  \"bench\": \"perf_supervise\",\n  \"primary\": \"checkpoint-5k\",\n  \"available_parallelism\": {cores},\n  \"stats_identical\": true,\n  \"scenarios\": [\n"
    );
    for (i, m) in ms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"plain_s\": {:.6}, \"supervised_s\": {:.6}, \"overhead\": {:.3}, \"checkpoints\": {}, \"recoveries\": {}}}{}\n",
            m.name,
            m.cycles,
            m.plain_s,
            m.supervised_s,
            m.overhead(),
            m.checkpoints,
            m.recoveries,
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Execute the supervision suite, print a table, and write `BENCH_pr7.json`
/// into the current directory.
pub fn write_supervision_report(reps: u32) -> std::io::Result<()> {
    let ms = run_supervision_suite(reps);
    println!(
        "{:<24} {:>9} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "scenario", "cycles", "plain", "supervised", "overhead", "checkpoints", "recoveries"
    );
    for m in &ms {
        println!(
            "{:<24} {:>9} {:>9.4}s {:>9.4}s {:>8.3}x {:>12} {:>10}",
            m.name,
            m.cycles,
            m.plain_s,
            m.supervised_s,
            m.overhead(),
            m.checkpoints,
            m.recoveries
        );
    }
    std::fs::write("BENCH_pr7.json", render_supervision_report(&ms))?;
    println!("wrote BENCH_pr7.json");
    Ok(())
}

/// One timed telemetry-overhead comparison: the same run with tracing off
/// and on, statistics asserted bit-identical (telemetry's whole contract
/// is that it only observes).
#[derive(Debug, Clone)]
pub struct TelemetryMeasurement {
    /// Scenario label.
    pub name: String,
    /// Simulated cycles per run (identical in both modes by construction).
    pub cycles: u64,
    /// Best-of-reps wall seconds, telemetry off.
    pub plain_s: f64,
    /// Best-of-reps wall seconds, telemetry on.
    pub traced_s: f64,
    /// Events appended across all tracks per traced run.
    pub events_appended: u64,
    /// Events retained (appended minus ring-overflow drops).
    pub events_kept: u64,
    /// Sampled timeline rows (SM + memory) per traced run.
    pub sample_rows: u64,
}

impl TelemetryMeasurement {
    /// Wall-clock cost of tracing: traced over plain (≥ ~1.0).
    pub fn overhead(&self) -> f64 {
        self.traced_s / self.plain_s
    }
}

/// Telemetry-overhead ceiling `repro perf` asserts: tracing with periodic
/// sampling must cost at most 25% wall clock on the primary scenario.
pub const TELEMETRY_OVERHEAD_CEILING: f64 = 1.25;

/// Time `kernel` under `cfg` with telemetry off and on (64Ki-event rings,
/// sampling every 1000 cycles). Panics if tracing perturbs the statistics.
pub fn measure_telemetry(
    name: &str,
    kernel: &Kernel,
    cfg: &RunConfig,
    reps: u32,
) -> TelemetryMeasurement {
    let plain_sim = Simulator::new(cfg.clone());
    let traced_sim = Simulator::new(
        cfg.clone()
            .with_telemetry(Some(TelemetryConfig::default().with_sample_every(1000))),
    );
    // Time `run_report` on both sides so the ratio isolates *telemetry*:
    // the report path itself (supervision bookkeeping, report assembly)
    // costs a few percent over `run`, and that cost exists with tracing
    // off too, so it must not be charged to the telemetry subsystem.
    let mut plain_s = f64::MAX;
    let mut baseline = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        baseline = Some(plain_sim.run_report(kernel).stats);
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
    }
    let baseline = baseline.expect("reps >= 1");
    let mut traced_s = f64::MAX;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let report = traced_sim.run_report(kernel);
        traced_s = traced_s.min(t.elapsed().as_secs_f64());
        assert_eq!(
            report.stats, baseline,
            "telemetry changed the statistics in scenario {name}"
        );
        last = report.telemetry;
    }
    let telemetry = last.expect("telemetry was configured");
    TelemetryMeasurement {
        name: name.to_string(),
        cycles: baseline.cycles,
        plain_s,
        traced_s,
        events_appended: telemetry.appended(),
        events_kept: telemetry.events.len() as u64,
        sample_rows: (telemetry.sm_samples.len() + telemetry.mem_samples.len()) as u64,
    }
}

/// Run the telemetry-overhead suite: the primary dead-wait scenario under
/// both memory models (the event model adds the MEM track and its events).
pub fn run_telemetry_suite(reps: u32) -> Vec<TelemetryMeasurement> {
    // Each rep is a handful of milliseconds, so a min-of filter needs more
    // draws than the wall-clock-bound engine suites to converge: floor the
    // rep count even in --quick mode (the extra runs cost well under a
    // second), and run a 4× grid so per-run fixed costs and timer noise
    // amortize — the overhead *ratio* is grid-invariant (events accrue per
    // cycle), but the variance of a 2 ms measurement is not acceptable for
    // a CI-asserted ceiling.
    let reps = reps.max(10);
    let mut kernel = scenario_kernel();
    kernel.grid_blocks *= 4;
    vec![
        measure_telemetry("conv1-112/dram1600", &kernel, &scenario_config(), reps),
        measure_telemetry(
            "conv1-112/dram1600/event",
            &kernel,
            &scenario_config_event(),
            reps,
        ),
    ]
}

/// Serialize telemetry measurements as the `BENCH_pr8.json` document
/// (hand-rolled JSON; the offline serde shim has no serializer).
/// `stats_identical` is asserted, not sampled — the report only exists if
/// every traced run matched its plain twin bit for bit.
pub fn render_telemetry_report(ms: &[TelemetryMeasurement]) -> String {
    let mut s = format!(
        "{{\n  \"bench\": \"perf_telemetry\",\n  \"primary\": \"conv1-112/dram1600/event\",\n  \"stats_identical\": true,\n  \"overhead_ceiling\": {TELEMETRY_OVERHEAD_CEILING},\n  \"scenarios\": [\n"
    );
    for (i, m) in ms.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"cycles\": {}, \"plain_s\": {:.6}, \"traced_s\": {:.6}, \"overhead\": {:.3}, \"events_appended\": {}, \"events_kept\": {}, \"sample_rows\": {}}}{}\n",
            m.name,
            m.cycles,
            m.plain_s,
            m.traced_s,
            m.overhead(),
            m.events_appended,
            m.events_kept,
            m.sample_rows,
            if i + 1 == ms.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Execute the telemetry suite, print a table, assert the overhead
/// ceiling, and write `BENCH_pr8.json` into the current directory.
pub fn write_telemetry_report(reps: u32) -> std::io::Result<()> {
    let ms = run_telemetry_suite(reps);
    println!(
        "{:<24} {:>9} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "scenario", "cycles", "plain", "traced", "overhead", "appended", "kept", "rows"
    );
    for m in &ms {
        println!(
            "{:<24} {:>9} {:>9.4}s {:>9.4}s {:>8.3}x {:>10} {:>10} {:>8}",
            m.name,
            m.cycles,
            m.plain_s,
            m.traced_s,
            m.overhead(),
            m.events_appended,
            m.events_kept,
            m.sample_rows
        );
        assert!(
            m.overhead() <= TELEMETRY_OVERHEAD_CEILING,
            "telemetry overhead {:.3}x exceeds the {TELEMETRY_OVERHEAD_CEILING}x ceiling in {}",
            m.overhead(),
            m.name
        );
    }
    std::fs::write("BENCH_pr8.json", render_telemetry_report(&ms))?;
    println!("wrote BENCH_pr8.json");
    Ok(())
}

/// The scheduled perf-regression gate: the fast-forward engine must beat
/// the per-cycle reference loop by at least `min_speedup` on the primary
/// dead-wait scenario. Returns the offending measurement's summary on
/// failure. Run from a *scheduled* CI job, not per-PR — wall-clock ratios
/// on shared runners are too noisy to block merges, but a sustained drop
/// below the floor (the engine's raison d'être is ~10×+) is a regression
/// someone should look at.
pub fn check_speedup_gate(min_speedup: f64, reps: u32) -> Result<Measurement, String> {
    let m = measure(
        "conv1-28/dram1600",
        &scenario_kernel(),
        &scenario_config(),
        reps,
    );
    if m.speedup() >= min_speedup {
        Ok(m)
    } else {
        Err(format!(
            "fast-forward speedup gate failed: {:.2}x < {min_speedup:.2}x floor \
             (fast {:.4}s, reference {:.4}s over {} cycles)",
            m.speedup(),
            m.fast_s,
            m.reference_s,
            m.cycles
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_memory_latency_bound() {
        // The engine's target regime: the overwhelming majority of SM-cycles
        // are idle latency waits, and none of them are stalls (stall cycles
        // are never skippable, so a stall-heavy scenario would be a poor
        // showcase and a dishonest benchmark).
        let stats = Simulator::new(scenario_config()).run(&scenario_kernel());
        let sm_cycles = stats.cycles * 14;
        assert!(
            stats.idle_cycles * 10 > sm_cycles * 9,
            "idle {} of {sm_cycles}",
            stats.idle_cycles
        );
        assert_eq!(stats.stall_cycles, 0);
    }

    #[test]
    fn shard_measurement_math_and_json_shape() {
        let m = ShardMeasurement {
            name: "x".into(),
            shards: 4,
            cycles: 1000,
            sharded_s: 0.25,
            fast_s: 0.5,
            reference_s: 2.0,
        };
        assert_eq!(m.speedup(), 8.0);
        assert_eq!(m.speedup_vs_fast(), 2.0);
        let json = render_shard_report(std::slice::from_ref(&m));
        assert!(json.contains("\"bench\": \"perf_shards\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"speedup\": 8.00"));
        assert!(json.contains("\"speedup_vs_fast_forward\": 2.00"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn shard_counts_cover_the_pinned_points() {
        let counts = shard_counts();
        assert!(counts.contains(&2) && counts.contains(&4));
    }

    #[test]
    fn supervision_measurement_math_and_json_shape() {
        let m = SupervisionMeasurement {
            name: "x".into(),
            cycles: 1000,
            plain_s: 0.5,
            supervised_s: 0.6,
            checkpoints: 7,
            recoveries: 1,
        };
        assert!((m.overhead() - 1.2).abs() < 1e-9);
        let json = render_supervision_report(std::slice::from_ref(&m));
        assert!(json.contains("\"bench\": \"perf_supervise\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert!(json.contains("\"checkpoints\": 7"));
        assert!(json.contains("\"recoveries\": 1"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn the_speedup_gate_passes_a_trivial_floor_and_fails_an_absurd_one() {
        // One real measurement serves both directions: any working build
        // beats 1.0x on the dead-wait scenario, and no build reaches
        // 1e6x — so both gate branches are exercised without flakiness.
        let m = check_speedup_gate(1.0, 1).expect("the engine must beat the reference loop");
        assert!(m.speedup() >= 1.0);
        let err = check_speedup_gate(1e6, 1).unwrap_err();
        assert!(err.contains("speedup gate failed"), "{err}");
    }

    #[test]
    fn measurement_math_and_json_shape() {
        let m = Measurement {
            name: "x".into(),
            cycles: 1000,
            fast_s: 0.5,
            reference_s: 2.0,
        };
        assert_eq!(m.fast_cps(), 2000.0);
        assert_eq!(m.reference_cps(), 500.0);
        assert_eq!(m.speedup(), 4.0);
        let json = render_report(std::slice::from_ref(&m));
        assert!(json.contains("\"bench\": \"perf_engine\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.trim_end().ends_with('}'));
    }
}
