//! Chrome-trace (Perfetto) and CSV export of a collected
//! [`TelemetryReport`], plus the shape validator the CI smoke job runs.
//!
//! The JSON is hand-rolled (the offline serde shim has no serializer) in
//! the Chrome trace-event format: a single `{"traceEvents": [...]}` object
//! whose array carries one `"M"` thread-name metadata record per track,
//! `"X"` duration events for sleep spans, `"i"` instants for everything
//! else, and `"C"` counter events for the sampled timelines. Cycles map
//! 1:1 to microsecond timestamps (`ts`), so Perfetto's time axis reads as
//! simulated cycles. Records are written sorted by `(ts, tid)`, giving
//! every track a monotone timestamp sequence — the property
//! [`validate_chrome_trace`] pins.

use grs_sim::{StallReason, TelemetryEvent, TelemetryReport, Track};

/// Stable Chrome-trace thread id for a track: SMs by id, then the memory
/// system, then the engine.
fn tid(track: Track) -> u64 {
    match track {
        Track::Sm(id) => id as u64,
        Track::Mem => 1_000_000,
        Track::Engine => 1_000_001,
    }
}

/// Escape a string for a JSON value (track labels and event names are
/// ASCII identifiers, but stay safe).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn reason_label(r: StallReason) -> &'static str {
    match r {
        StallReason::Scoreboard => "scoreboard",
        StallReason::Barrier => "barrier",
        StallReason::MemGate => "mem_gate",
    }
}

/// `(name, args)` rendering of one event payload; `None` args render as
/// an empty object.
fn event_parts(e: &TelemetryEvent) -> (&'static str, String) {
    match *e {
        TelemetryEvent::BlockLaunch { grid_id, slot } => (
            "block_launch",
            format!("{{\"grid_id\":{grid_id},\"slot\":{slot}}}"),
        ),
        TelemetryEvent::BlockRetire { grid_id, slot } => (
            "block_retire",
            format!("{{\"grid_id\":{grid_id},\"slot\":{slot}}}"),
        ),
        TelemetryEvent::WarpStall { slot, reason } => (
            "warp_stall",
            format!(
                "{{\"slot\":{slot},\"reason\":\"{}\"}}",
                reason_label(reason)
            ),
        ),
        TelemetryEvent::SleepSpan { until, gated } => (
            if gated { "gated_sleep" } else { "sleep" },
            format!("{{\"until\":{until},\"gated\":{gated}}}"),
        ),
        TelemetryEvent::EpochCommit => ("epoch_commit", "{}".to_string()),
        TelemetryEvent::MshrFill { part } => ("mshr_fill", format!("{{\"part\":{part}}}")),
        TelemetryEvent::MshrMerge { part } => ("mshr_merge", format!("{{\"part\":{part}}}")),
        TelemetryEvent::DramAdmit { part } => ("dram_admit", format!("{{\"part\":{part}}}")),
        TelemetryEvent::DramService { part } => ("dram_service", format!("{{\"part\":{part}}}")),
        TelemetryEvent::CheckpointCut => ("checkpoint", "{}".to_string()),
        TelemetryEvent::WatermarkUpdate { watermark } => {
            ("watermark", format!("{{\"watermark\":{watermark}}}"))
        }
        TelemetryEvent::Recovery {
            from_shards,
            to_shards,
        } => (
            "recovery",
            format!("{{\"from_shards\":{from_shards},\"to_shards\":{to_shards}}}"),
        ),
    }
}

/// Render a [`TelemetryReport`] as a Chrome trace-event JSON document,
/// loadable in Perfetto / `chrome://tracing`.
pub fn render_chrome_trace(report: &TelemetryReport) -> String {
    // (ts, tid, rendered record): sorted so every track's timestamps are
    // monotone in file order, which the CI shape check relies on.
    let mut records: Vec<(u64, u64, String)> = Vec::new();
    for r in &report.events {
        let t = tid(r.track);
        let (name, args) = event_parts(&r.event);
        let rec = match r.event {
            TelemetryEvent::SleepSpan { until, .. } => format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{t},\"ts\":{},\"dur\":{},\"args\":{args}}}",
                r.cycle,
                until.saturating_sub(r.cycle)
            ),
            _ => format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{t},\"ts\":{},\"args\":{args}}}",
                r.cycle
            ),
        };
        records.push((r.cycle, t, rec));
    }
    for s in &report.sm_samples {
        let t = tid(Track::Sm(s.sm));
        records.push((
            s.cycle,
            t,
            format!(
                "{{\"name\":\"occupancy\",\"ph\":\"C\",\"pid\":1,\"tid\":{t},\"ts\":{},\"args\":{{\"live_blocks\":{},\"live_warps\":{}}}}}",
                s.cycle, s.live_blocks, s.live_warps
            ),
        ));
        records.push((
            s.cycle,
            t,
            format!(
                "{{\"name\":\"issue+stall\",\"ph\":\"C\",\"pid\":1,\"tid\":{t},\"ts\":{},\"args\":{{\"warp_instrs\":{},\"scoreboard\":{},\"barrier\":{},\"mem_gate\":{},\"no_ready\":{}}}}}",
                s.cycle, s.warp_instrs, s.scoreboard, s.barrier, s.mem_gate, s.no_ready
            ),
        ));
    }
    for s in &report.mem_samples {
        let t = tid(Track::Mem);
        records.push((
            s.cycle,
            t,
            format!(
                "{{\"name\":\"mem depth\",\"ph\":\"C\",\"pid\":1,\"tid\":{t},\"ts\":{},\"args\":{{\"mshr_in_flight\":{},\"dram_in_queue\":{}}}}}",
                s.cycle, s.mshr_in_flight, s.dram_in_queue
            ),
        ));
    }
    records.sort_by_key(|a| (a.0, a.1));

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for ts in &report.tracks {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid(ts.track),
            esc(&ts.track.label())
        ));
    }
    for (_, _, rec) in &records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Render the sampled timelines as one CSV document: per-SM rows
/// (`kind=sm`) and memory-depth rows (`kind=mem`), with non-applicable
/// cells left empty.
pub fn render_metrics_csv(report: &TelemetryReport) -> String {
    let mut out = String::from(
        "kind,cycle,sm,live_blocks,live_warps,warp_instrs,scoreboard,barrier,mem_gate,no_ready,mshr_in_flight,dram_in_queue\n",
    );
    for s in &report.sm_samples {
        out.push_str(&format!(
            "sm,{},{},{},{},{},{},{},{},{},,\n",
            s.cycle,
            s.sm,
            s.live_blocks,
            s.live_warps,
            s.warp_instrs,
            s.scoreboard,
            s.barrier,
            s.mem_gate,
            s.no_ready
        ));
    }
    for s in &report.mem_samples {
        out.push_str(&format!(
            "mem,{},,,,,,,,,{},{}\n",
            s.cycle, s.mshr_in_flight, s.dram_in_queue
        ));
    }
    out
}

/// Split the top-level `traceEvents` array of `doc` into its element
/// substrings by brace matching (string-aware).
fn trace_elements(doc: &str) -> Result<Vec<&str>, String> {
    let start = doc
        .find("\"traceEvents\"")
        .ok_or("missing \"traceEvents\" key")?;
    let open = doc[start..]
        .find('[')
        .map(|i| start + i)
        .ok_or("missing traceEvents array")?;
    let bytes = doc.as_bytes();
    let mut elems = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut elem_start = None;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    elem_start = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or("unbalanced braces in traceEvents")?;
                if depth == 0 {
                    let s = elem_start.take().ok_or("brace close without open")?;
                    elems.push(&doc[s..=i]);
                }
            }
            b']' if depth == 0 => return Ok(elems),
            _ => {}
        }
    }
    Err("traceEvents array never closes".to_string())
}

/// Extract `"key":<integer>` from a record substring.
fn int_field(rec: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = rec.find(&pat)? + pat.len();
    let digits: String = rec[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extract `"key":"<value>"` from a record substring.
fn str_field<'a>(rec: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = rec.find(&pat)? + pat.len();
    let end = rec[at..].find('"')?;
    Some(&rec[at..at + end])
}

/// Validate the shape of a Chrome trace-event document: the required keys
/// on every record (`name`, `ph`, `pid`, `tid`, and `ts` on non-metadata
/// records), and monotone (nondecreasing) timestamps per `(pid, tid)`
/// track in file order. This is the CI smoke check for `repro trace`.
pub fn validate_chrome_trace(doc: &str) -> Result<(), String> {
    let elems = trace_elements(doc)?;
    if elems.is_empty() {
        return Err("empty traceEvents array".to_string());
    }
    let mut last_ts: Vec<((u64, u64), u64)> = Vec::new();
    let mut counted = 0usize;
    for (i, rec) in elems.iter().enumerate() {
        let ph = str_field(rec, "ph").ok_or_else(|| format!("record {i}: missing \"ph\""))?;
        str_field(rec, "name").ok_or_else(|| format!("record {i}: missing \"name\""))?;
        let pid = int_field(rec, "pid").ok_or_else(|| format!("record {i}: missing \"pid\""))?;
        let tid = int_field(rec, "tid").ok_or_else(|| format!("record {i}: missing \"tid\""))?;
        if ph == "M" {
            continue;
        }
        let ts = int_field(rec, "ts").ok_or_else(|| format!("record {i}: missing \"ts\""))?;
        counted += 1;
        match last_ts.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(format!(
                        "record {i}: ts {ts} goes backwards on track ({pid},{tid}) after {last}"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push(((pid, tid), ts)),
        }
    }
    if counted == 0 {
        return Err("no timestamped records".to_string());
    }
    Ok(())
}

/// Run one `repro trace` scenario end to end: simulate with telemetry on,
/// export the Chrome trace (self-validated with [`validate_chrome_trace`])
/// and optionally the metrics CSV, and print where everything went.
///
/// Scenarios: `conv1-28` (the perf suite's memory-latency-bound CONV1
/// point under the event memory model) and `hotspot-28` (the Set-1
/// register-sharing showcase). `quick` divides the grid by 4.
pub fn run_trace(
    scenario: &str,
    out: &str,
    metrics: Option<&str>,
    quick: bool,
) -> Result<(), String> {
    use grs_sim::{MemoryModel, RunConfig, TelemetryConfig};
    let (mut kernel, cfg) = match scenario {
        "conv1-28" => (
            crate::perf::scenario_kernel(),
            crate::perf::scenario_config_event(),
        ),
        "hotspot-28" => {
            let mut k = grs_workloads::set1::hotspot();
            k.grid_blocks = 28;
            (
                k,
                RunConfig::paper_register_sharing().with_memory_model(MemoryModel::Event),
            )
        }
        other => {
            return Err(format!(
                "unknown trace scenario: {other} (try conv1-28 or hotspot-28)"
            ))
        }
    };
    if quick {
        kernel.grid_blocks = (kernel.grid_blocks / 4).max(1);
    }
    let cfg = cfg.with_telemetry(Some(TelemetryConfig::default().with_sample_every(500)));
    // Through the global sweep service: a re-traced scenario (same config,
    // same kernel) is answered from the memo store — telemetry and all —
    // and the printed summary carries the service's accounting.
    let outcome = crate::service::SweepService::global()
        .submit(cfg, kernel.clone())
        .wait();
    let report = outcome
        .report
        .as_ref()
        .map_err(|e| format!("simulation failed: {e}"))?;
    let telemetry = report.telemetry.as_ref().expect("telemetry was configured");
    let doc = render_chrome_trace(telemetry);
    validate_chrome_trace(&doc)?;
    std::fs::write(out, &doc).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} bytes, Perfetto-loadable)", doc.len());
    if let Some(path) = metrics {
        let csv = render_metrics_csv(telemetry);
        std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
        println!(
            "wrote {path} ({} sample rows)",
            telemetry.sm_samples.len() + telemetry.mem_samples.len()
        );
    }
    print!(
        "{}",
        report.summary_with(Some(&crate::service::SweepService::global().stats()))
    );
    println!("trace OK: {scenario}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grs_sim::{SampleRow, TraceRecord, TrackStats};

    fn tiny_report() -> TelemetryReport {
        TelemetryReport {
            events: vec![
                TraceRecord {
                    cycle: 0,
                    track: Track::Sm(0),
                    seq: 0,
                    event: TelemetryEvent::BlockLaunch {
                        grid_id: 0,
                        slot: 0,
                    },
                },
                TraceRecord {
                    cycle: 5,
                    track: Track::Sm(0),
                    seq: 1,
                    event: TelemetryEvent::SleepSpan {
                        until: 9,
                        gated: false,
                    },
                },
                TraceRecord {
                    cycle: 7,
                    track: Track::Mem,
                    seq: 0,
                    event: TelemetryEvent::MshrFill { part: 3 },
                },
            ],
            sm_samples: vec![SampleRow {
                cycle: 8,
                sm: 0,
                live_blocks: 1,
                live_warps: 2,
                warp_instrs: 10,
                scoreboard: 1,
                barrier: 0,
                mem_gate: 2,
                no_ready: 3,
            }],
            mem_samples: Vec::new(),
            tracks: vec![
                TrackStats {
                    track: Track::Sm(0),
                    appended: 2,
                    dropped: 0,
                },
                TrackStats {
                    track: Track::Mem,
                    appended: 1,
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn rendered_trace_validates_and_carries_the_tracks() {
        let doc = render_chrome_trace(&tiny_report());
        validate_chrome_trace(&doc).expect("shape check");
        assert!(doc.contains("\"name\":\"SM 0\""));
        assert!(doc.contains("\"name\":\"MEM\""));
        assert!(doc.contains("\"ph\":\"X\"") && doc.contains("\"dur\":4"));
        assert!(doc.contains("\"mshr_fill\""));
        assert!(doc.contains("\"ph\":\"C\""));
    }

    #[test]
    fn the_validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // Missing ts on a non-metadata record.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"pid\":1,\"tid\":0}]}"
        )
        .is_err());
        // Backwards ts on one track.
        let doc = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":5},\
            {\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":4}]}";
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
        // The same ts sequence on *different* tracks is fine.
        let doc = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":5},\
            {\"name\":\"b\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":4}]}";
        validate_chrome_trace(doc).expect("independent tracks");
    }

    #[test]
    fn csv_has_one_row_per_sample() {
        let csv = render_metrics_csv(&tiny_report());
        assert_eq!(csv.lines().count(), 2, "header + one sm row");
        assert!(csv.lines().nth(1).unwrap().starts_with("sm,8,0,1,2,10,"));
    }
}
