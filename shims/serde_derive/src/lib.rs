//! No-op derive macros standing in for `serde_derive` (offline build; see
//! `shims/README.md`). `#[derive(Serialize, Deserialize)]` attributes across
//! the workspace expand to nothing: no impls are generated, and nothing in
//! the workspace consumes the serde traits yet.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` site.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` site.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
