//! Offline minimal stand-in for the `criterion` benchmark harness (see
//! `shims/README.md`).
//!
//! Provides the API surface the workspace's nine benches use — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — with two execution modes:
//!
//! * **`--test`** (what `cargo bench -- --test` passes, and what CI runs):
//!   every benchmark closure executes exactly once, unmeasured, proving the
//!   bench compiles and runs.
//! * default: each benchmark runs `sample_size` measured iterations after
//!   one warm-up iteration and prints mean wall time per iteration (plus
//!   element throughput when configured). No statistics, no HTML reports.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Measurement throughput annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, timing the batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    /// Reads the process arguments the way real criterion does: `--test`
    /// selects single-iteration smoke mode. Cargo's own `--bench` flag and
    /// filter arguments are accepted and ignored.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Register and immediately execute one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&id, self.test_mode, self.sample_size, None, f);
        self
    }

    /// Open a named group sharing sample-size/throughput settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// Group of related benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set measured iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Register and immediately execute one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&id, self.criterion.test_mode, samples, self.throughput, f);
        self
    }

    /// Close the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    test_mode: bool,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {id}: Success");
        return;
    }
    // One warm-up iteration, then the measured batch.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let mut b = Bencher {
        iters: samples as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / samples as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            println!(
                "{id}: {:.3} ms/iter ({:.3} Melem/s, {samples} iters)",
                per_iter * 1e3,
                n as f64 / per_iter / 1e6
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            println!(
                "{id}: {:.3} ms/iter ({:.3} MiB/s, {samples} iters)",
                per_iter * 1e3,
                n as f64 / per_iter / (1024.0 * 1024.0)
            );
        }
        _ => println!("{id}: {:.3} ms/iter ({samples} iters)", per_iter * 1e3),
    }
}

/// Mirrors `criterion_group!`: defines a function running each target
/// against one `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = super::Bencher {
            iters: 7,
            elapsed: std::time::Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }
}
