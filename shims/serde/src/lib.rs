//! Offline stand-in for the `serde` facade (see `shims/README.md`).
//!
//! Mirrors the real crate's import surface — `use serde::{Deserialize,
//! Serialize}` resolves to the derive macros in the macro namespace and to
//! the (empty) traits below in the type namespace — so workspace sources are
//! byte-identical to what they would be against real serde. The derives
//! generate no impls; nothing in the workspace serializes yet.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The no-op derive does not
/// implement it; it exists so `T: Serialize` bounds are writable.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
