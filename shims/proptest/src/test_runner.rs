//! Deterministic test runner and RNG.

use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// xorshift64* PRNG — deterministic, seedable, no OS entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream; zero is remapped (xorshift's fixed point).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration. Only the knobs the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable with the `PROPTEST_CASES` environment variable
    /// (the same knob real proptest reads).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Executes a property over deterministic random cases, replaying pinned
/// regression seeds first.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Build a runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run property `test` over values of `strategy`.
    ///
    /// Seeds replay in this order:
    /// 1. every seed pinned for `name` in
    ///    `$CARGO_MANIFEST_DIR/proptest-regressions/<file-stem>.txt`
    ///    (lines of the form `<test name> <u64 seed>`, `#` comments);
    /// 2. `config.cases` seeds derived from FNV-1a(`name`) and the case
    ///    index — identical on every machine and every run.
    ///
    /// On failure the offending seed and input are printed along with the
    /// regression line to pin, then the panic propagates (no shrinking).
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        source_file: &str,
        strategy: &S,
        mut test: impl FnMut(S::Value),
    ) {
        let regressions = regression_path(source_file);
        for seed in load_seeds(regressions.as_deref(), name) {
            self.run_one(name, &regressions, "pinned", seed, strategy, &mut test);
        }
        let base = fnv1a(name);
        for case in 0..self.config.cases {
            let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.run_one(name, &regressions, "generated", seed, strategy, &mut test);
        }
    }

    fn run_one<S: Strategy>(
        &self,
        name: &str,
        regressions: &Option<PathBuf>,
        kind: &str,
        seed: u64,
        strategy: &S,
        test: &mut impl FnMut(S::Value),
    ) {
        let mut rng = TestRng::new(seed);
        let value = strategy.sample(&mut rng);
        let shown = format!("{value:?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        if let Err(panic) = outcome {
            eprintln!("proptest shim: property `{name}` FAILED ({kind} seed {seed:#018x})");
            eprintln!("  input: {shown}");
            if let Some(path) = regressions {
                eprintln!("  to pin this case, append to {}:", path.display());
                eprintln!("  {name} {seed}");
            }
            resume_unwind(panic);
        }
    }
}

/// FNV-1a, the deterministic per-test base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `proptest-regressions/<file-stem>.txt` next to the crate manifest,
/// mirroring real proptest's layout.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let stem = Path::new(source_file).file_stem()?;
    let manifest_dir = std::env::var_os("CARGO_MANIFEST_DIR")?;
    let mut path = PathBuf::from(manifest_dir);
    path.push("proptest-regressions");
    path.push(stem);
    path.set_extension("txt");
    Some(path)
}

fn load_seeds(path: Option<&Path>, name: &str) -> Vec<u64> {
    let Some(path) = path else { return Vec::new() };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() == Some(name) {
            if let Some(seed) = parts.next().and_then(|s| s.parse().ok()) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fnv_differs_between_names() {
        assert_ne!(fnv1a("alpha"), fnv1a("beta"));
    }

    #[test]
    fn regression_seed_lines_parse_and_filter_by_test_name() {
        let dir = std::env::temp_dir().join("grs-proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("seeds.txt");
        std::fs::write(
            &file,
            "# comment\n\nmy_test 7\nother_test 9\nmy_test 0xnotanumber\nmy_test 11\n",
        )
        .unwrap();
        assert_eq!(load_seeds(Some(&file), "my_test"), vec![7, 11]);
        assert_eq!(load_seeds(Some(&file), "other_test"), vec![9]);
        assert_eq!(load_seeds(Some(&file), "absent"), Vec::<u64>::new());
        assert_eq!(
            load_seeds(Some(Path::new("/no/such/file")), "my_test"),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn runner_executes_requested_case_count() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        let mut count = 0;
        runner.run_named("count_cases_unpinned", "no/such/file.rs", &(0u32..5), |v| {
            assert!(v < 5);
            count += 1;
        });
        assert_eq!(count, 10);
    }
}
