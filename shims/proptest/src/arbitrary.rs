//! `any::<T>()` — canonical strategies for plain types.

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (proptest's `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = crate::bool::BoolAny;

    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}
