//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_size_range() {
        let s = vec(0u32..10, 2..6);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
