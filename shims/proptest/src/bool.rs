//! Boolean strategies (`proptest::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Fair-coin strategy over `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical boolean strategy.
pub const ANY: BoolAny = BoolAny;
