//! Strategies: composable random-value generators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type [`Strategy::Value`]. The shim keeps only
/// the sampling half of proptest's `Strategy` (no value trees / shrinking).
pub trait Strategy {
    /// Type of values produced. `Debug` so failing inputs can be reported.
    type Value: Debug;

    /// Draw one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map produced values through `f` (proptest's `prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (for heterogeneous `prop_oneof!`
    /// arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    // Whole-domain u64 ranges would overflow the span; the
                    // shim supports spans up to u64::MAX - 1, ample here.
                    let span = (end - start) as u64 + 1;
                    start + rng.next_below(span) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($( ( $($S:ident => $idx:tt),+ ) ),+ $(,)?) => {
        $(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A => 0),
    (A => 0, B => 1),
    (A => 0, B => 1, C => 2),
    (A => 0, B => 1, C => 2, D => 3),
    (A => 0, B => 1, C => 2, D => 3, E => 4),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8),
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7, I => 8, J => 9),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u16..=5).sample(&mut rng);
            assert_eq!(w, 5);
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::new(7);
        let s = crate::prop_oneof![(0u32..4).prop_map(|x| x * 10), Just(99u32),];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 99 || v % 10 == 0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = (0u64..1000, 0.0f64..=1.0, 0u8..=255);
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..50).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..50).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
