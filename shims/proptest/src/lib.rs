//! Offline deterministic stand-in for the `proptest` crate (see
//! `shims/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: range/tuple/`Just`/`prop_oneof!`/`collection::vec` strategies, the
//! `proptest!` test macro with `#![proptest_config(..)]` support, and the
//! `prop_assert*!` macros. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case prints its seed and input; pin the
//!   seed in `proptest-regressions/<file>.txt` to make it a permanent
//!   regression test.
//! * **Fully deterministic.** The RNG seed for every case derives from the
//!   test function's name and the case index, so runs are bit-for-bit
//!   reproducible across machines — no OS entropy is ever consumed.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner.run_named(stringify!($name), file!(), &strategy, |($($arg,)+)| $body);
            }
        )*
    };
}

/// Panicking equivalent of proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Panicking equivalent of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Panicking equivalent of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies that produce the same value type.
/// (Real proptest supports weighted arms; the workspace only uses the
/// unweighted form.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
