//! # gpu-resource-sharing
//!
//! Umbrella crate for the reproduction of *Improving GPU Performance Through
//! Resource Sharing* (Jatala, Anantpur, Karkare; HPDC'16). It re-exports the
//! workspace crates under stable module names and hosts the runnable
//! examples and cross-crate integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use gpu_resource_sharing::prelude::*;
//!
//! // The paper's Table I machine.
//! let cfg = GpuConfig::paper_baseline();
//!
//! // A register-hungry kernel: 36 regs/thread × 256 threads = 9216 regs per
//! // block, so only 3 blocks fit in a 32768-register SM (paper's hotspot).
//! let kernel = grs_workloads::set1::hotspot();
//! let occ = occupancy(&cfg.sm, &KernelFootprint::of(&kernel));
//! assert_eq!(occ.blocks, 3);
//!
//! // Register sharing at t = 0.1 (90% sharing) lifts residency to 6 blocks.
//! let plan = compute_launch_plan(
//!     &cfg.sm,
//!     &KernelFootprint::of(&kernel),
//!     Threshold::new(0.1).unwrap(),
//!     ResourceKind::Registers,
//! );
//! assert_eq!(plan.max_blocks, 6);
//! ```

pub use grs_core as core;
pub use grs_isa as isa;
pub use grs_sim as sim;
pub use grs_workloads as workloads;

/// Commonly-used items from every layer of the stack.
pub mod prelude {
    pub use grs_core::{
        compute_launch_plan, occupancy, reorder_declarations, GpuConfig, KernelFootprint,
        LaunchPlan, Occupancy, ResourceKind, SchedulerKind, Threshold,
    };
    pub use grs_isa::{GlobalPattern, Kernel, KernelBuilder, Program};
    pub use grs_sim::{MemoryModel, RunConfig, SharingMode, SimStats, Simulator, TelemetryConfig};
    pub use grs_workloads as workloads;
}
