//! Build a custom kernel with the fluent builder, run the paper's
//! declaration-reordering pass on it, and measure the effect of register
//! sharing — the workflow a user extends the suite with.
//!
//! Run with: `cargo run --release --example custom_kernel`

use gpu_resource_sharing::core::transform::instrs_before_shared_access;
use gpu_resource_sharing::prelude::*;

fn main() {
    // A register-hungry reduction: 40 regs x 320 threads = 12800 regs/block
    // -> 2 blocks/SM baseline, 3 with 90% register sharing.
    let mut b = KernelBuilder::new("custom/reduction")
        .threads_per_block(320)
        .regs_per_thread(40)
        .grid_blocks(168)
        .reg_window(0, 2);
    let top = b.here();
    b = b
        .ld_global(GlobalPattern::Stream)
        .ffma(6)
        .loop_back(top, 16);
    b = b.reg_window(2, u16::MAX);
    let tail = b.here();
    b = b.ffma(8).sfu(1).loop_back(tail, 4);
    b = b.st_global(GlobalPattern::Stream);
    let mut kernel = b.build();

    gpu_resource_sharing::isa::validate(&kernel).expect("kernel is well-formed");
    println!("{}", kernel.program.disasm());

    // The unroll/reorder pass (paper Sec. IV-B) and its effect on how far a
    // non-owner warp gets before first touching a shared register (t = 0.1
    // -> 4 private registers for a 40-register kernel).
    let before = instrs_before_shared_access(&kernel, 4);
    let report = reorder_declarations(&mut kernel);
    let after = instrs_before_shared_access(&kernel, 4);
    println!(
        "reorder pass: changed={} (prefix {before} -> {after} instructions)",
        report.changed
    );

    let base = Simulator::new(RunConfig::baseline_lrr()).run(&kernel);
    let shared = Simulator::new(RunConfig::paper_register_sharing()).run(&kernel);
    println!(
        "blocks {} -> {} | IPC {:.1} -> {:.1} ({:+.2}%)",
        base.max_resident_blocks,
        shared.max_resident_blocks,
        base.ipc(),
        shared.ipc(),
        shared.ipc_improvement_pct(&base)
    );
}
