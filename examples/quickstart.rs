//! Quickstart: occupancy, launch plans, and a baseline-vs-sharing simulation
//! of the paper's motivating kernel (hotspot).
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_resource_sharing::prelude::*;

fn main() {
    let cfg = GpuConfig::paper_baseline();

    // hotspot (Rodinia): 36 registers/thread x 256 threads = 9216 registers
    // per block -> only 3 blocks fit in a 32768-register SM and 5120
    // registers are wasted (paper Sec. I-A).
    let mut kernel = workloads::set1::hotspot();
    kernel.grid_blocks = 168; // keep the demo quick

    let fp = KernelFootprint::of(&kernel);
    let occ = occupancy(&cfg.sm, &fp);
    println!(
        "baseline occupancy : {} blocks (limited by {})",
        occ.blocks, occ.limiting
    );
    println!(
        "wasted registers   : {} ({:.1}%)",
        occ.wasted_registers,
        occ.register_waste_pct(&cfg.sm)
    );

    // Register sharing at the paper's default threshold t = 0.1 (90%).
    let plan = compute_launch_plan(
        &cfg.sm,
        &fp,
        Threshold::paper_default(),
        ResourceKind::Registers,
    );
    println!(
        "sharing launch plan: {} unshared + {} pairs = {} resident blocks",
        plan.unshared, plan.shared_pairs, plan.max_blocks
    );

    // Simulate both configurations and compare IPC.
    let base = Simulator::new(RunConfig::baseline_lrr()).run(&kernel);
    let shared = Simulator::new(RunConfig::paper_register_sharing()).run(&kernel);
    println!("Unshared-LRR          : IPC {:.1}", base.ipc());
    println!("Shared-OWF-Unroll-Dyn : IPC {:.1}", shared.ipc());
    println!(
        "improvement           : {:+.2}%",
        shared.ipc_improvement_pct(&base)
    );
}
