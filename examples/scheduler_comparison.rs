//! Compare the four warp schedulers (LRR, GTO, Two-Level, OWF) on one
//! memory-bound and one compute-bound kernel, without sharing.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::prelude::*;

fn main() {
    let kernels = [
        ("hotspot (compute-bound)", {
            let mut k = workloads::set1::hotspot();
            k.grid_blocks = 168;
            k
        }),
        ("MUM (memory-bound)", {
            let mut k = workloads::set1::mum();
            k.grid_blocks = 168;
            k
        }),
    ];
    let scheds = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ];
    for (name, kernel) in &kernels {
        println!("\n{name}");
        for s in scheds {
            let stats = Simulator::new(RunConfig::baseline_lrr().with_scheduler(s)).run(kernel);
            println!(
                "  {:<4} IPC {:>7.1}  cycles {:>8}  stall {:>8}  idle {:>9}",
                s.name(),
                stats.ipc(),
                stats.cycles,
                stats.stall_cycles,
                stats.idle_cycles
            );
        }
    }
}
