//! Sweep the sharing threshold for one kernel — a miniature of paper
//! Tables V-VIII: IPC and resident blocks at 0..90% sharing.
//!
//! Run with: `cargo run --release --example sharing_sweep [benchmark]`

use gpu_resource_sharing::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lavamd".to_string());
    let Some(mut kernel) = workloads::benchmark(&name) else {
        eprintln!("unknown benchmark {name}; try hotspot, lavamd, sgemm, conv1 ...");
        std::process::exit(2);
    };
    kernel.grid_blocks = kernel.grid_blocks.min(168);
    let base_cfg = if kernel.smem_per_block > 2048 {
        RunConfig::paper_scratchpad_sharing()
    } else {
        RunConfig::paper_register_sharing()
    };
    let resource = match base_cfg.sharing {
        SharingMode::Scratchpad => ResourceKind::Scratchpad,
        _ => ResourceKind::Registers,
    };
    println!("{name}: sharing sweep ({resource})");
    println!("{:>8} {:>8} {:>8} {:>8}", "sharing%", "t", "blocks", "IPC");
    for pct in [0.0, 10.0, 30.0, 50.0, 70.0, 90.0] {
        let t = Threshold::from_sharing_pct(pct).unwrap();
        let cfg = base_cfg.clone().with_threshold(t);
        let plan = Simulator::new(cfg.clone()).plan_for(&kernel);
        let stats = Simulator::new(cfg).run(&kernel);
        println!(
            "{:>7.0}% {:>8.2} {:>8} {:>8.1}",
            pct,
            t.t(),
            plan.max_blocks,
            stats.ipc()
        );
    }
}
