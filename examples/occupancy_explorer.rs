//! Explore how footprints drive occupancy, waste, and sharing plans — a
//! CUDA-occupancy-calculator-style table extended with the paper's launch
//! plan (Sec. III-C).
//!
//! Run with: `cargo run --release --example occupancy_explorer`

use gpu_resource_sharing::prelude::*;

fn main() {
    let sm = GpuConfig::paper_baseline().sm;
    let t = Threshold::paper_default();
    println!(
        "{:>8} {:>6} {:>8} | {:>6} {:>8} | {:>9} {:>7}",
        "threads", "regs", "smem", "blocks", "waste%", "shared(M)", "pairs"
    );
    for threads in [64u32, 128, 256, 512] {
        for regs in [16u32, 24, 36, 48] {
            let fp = KernelFootprint {
                threads_per_block: threads,
                regs_per_thread: regs,
                smem_per_block: 0,
            };
            let occ = occupancy(&sm, &fp);
            let plan = compute_launch_plan(&sm, &fp, t, ResourceKind::Registers);
            println!(
                "{:>8} {:>6} {:>8} | {:>6} {:>7.1}% | {:>9} {:>7}",
                threads,
                regs,
                0,
                occ.blocks,
                occ.register_waste_pct(&sm),
                plan.max_blocks,
                plan.shared_pairs
            );
        }
    }
    println!("\nScratchpad-limited kernels (128 threads, 16 regs):");
    for smem in [2560u32, 4096, 5184, 6144, 7200] {
        let fp = KernelFootprint {
            threads_per_block: 128,
            regs_per_thread: 16,
            smem_per_block: smem,
        };
        let occ = occupancy(&sm, &fp);
        let plan = compute_launch_plan(&sm, &fp, t, ResourceKind::Scratchpad);
        println!(
            "  smem {:>5} B: {} blocks ({:.1}% waste) -> {} with sharing",
            smem,
            occ.blocks,
            occ.scratchpad_waste_pct(&sm),
            plan.max_blocks
        );
    }
}
