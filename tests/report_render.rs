//! Rendering contracts of the supervision layer's human-readable output:
//! [`StallDiagnosis`]'s `Display` and `RunReport::summary()`. Downstream
//! tooling (the `repro` CLI prints both; operators grep them out of CI
//! logs) keys on these line shapes, so they are pinned here — against real
//! reports produced by real runs, not hand-built structs, so the fields
//! rendered are the fields the simulator actually populates.

use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{RunOutcome, StallDiagnosis};

/// Progress first (a non-trivial watermark), then a global load every warp
/// blocks on forever once the per-warp MSHR quota is zeroed.
fn livelock_kernel() -> Kernel {
    KernelBuilder::new("livelock")
        .threads_per_block(64)
        .regs_per_thread(16)
        .grid_blocks(8)
        .ialu(2)
        .ld_global(GP::Stream)
        .st_global(GP::Stream)
        .build()
}

fn stall_diagnosis() -> (StallDiagnosis, gpu_resource_sharing::sim::RunReport) {
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 2;
    cfg.gpu.mem.max_pending_per_warp = 0;
    cfg.max_cycles = 1_000_000;
    let report = Simulator::new(cfg.with_watchdog(Some(500))).run_report(&livelock_kernel());
    match &report.outcome {
        RunOutcome::Stalled(diag) => ((**diag).clone(), report.clone()),
        other => panic!("expected a watchdog trip, got {other:?}"),
    }
}

#[test]
fn stall_diagnosis_display_names_the_trip_and_every_actor() {
    let (diag, _) = stall_diagnosis();
    let text = diag.to_string();

    // Headline: the proof of livelock, with all three cycle numbers.
    let head = text.lines().next().expect("non-empty rendering");
    assert!(
        head.starts_with(&format!("livelock proven at cycle {}", diag.at_cycle)),
        "{head}"
    );
    assert!(
        head.contains(&format!("no progress since cycle {}", diag.last_progress)),
        "{head}"
    );
    assert!(head.contains("watchdog window 500"), "{head}");
    assert!(
        head.contains(&format!(
            "{} grid blocks never dispatched",
            diag.blocks_undispatched
        )),
        "{head}"
    );

    // One line per SM, naming residency, wake state and gate counts.
    for sm in &diag.sms {
        let line = text
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("SM {}:", sm.id)))
            .unwrap_or_else(|| panic!("no line for SM {}:\n{text}", sm.id));
        assert!(
            line.contains(&format!("{} blocks", sm.live_blocks)),
            "{line}"
        );
        assert!(
            line.contains(&format!("live warps: {}", sm.live_warps)),
            "{line}"
        );
        assert!(
            line.contains("next wake at") || line.contains("no pending wake"),
            "{line}"
        );
        assert!(line.contains("gate-blocked warps:"), "{line}");
    }

    // Exactly one memory-system line.
    let mem_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("MEM:"))
        .collect();
    assert_eq!(mem_lines.len(), 1, "{text}");
    assert!(
        mem_lines[0].contains("MSHR") && mem_lines[0].contains("DRAM-queue"),
        "{}",
        mem_lines[0]
    );
}

#[test]
fn summary_of_a_completed_run_carries_every_section() {
    let kernel = workloads::benchmark("gen:mixed:1:small").expect("pinned spec");
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 2;
    let report = Simulator::new(
        cfg.with_checkpoint_every(Some(137))
            .with_telemetry(Some(TelemetryConfig::default().with_sample_every(500))),
    )
    .run_report(&kernel);
    assert!(report.completed());
    let s = report.summary();

    let first = s.lines().next().expect("non-empty summary");
    assert_eq!(
        first,
        format!("outcome: completed in {} cycles", report.stats.cycles)
    );
    assert!(
        s.contains(&format!(
            "blocks: {} completed",
            report.stats.blocks_completed
        )),
        "{s}"
    );
    assert!(s.contains(&format!("IPC {:.3}", report.stats.ipc())), "{s}");
    assert!(s.contains("idle breakdown:"), "{s}");
    assert!(s.contains("pipeline-stall cycles (mem gate)"), "{s}");
    assert!(
        s.contains(&format!(
            "supervision: {} checkpoints, 0 recoveries",
            report.checkpoints
        )),
        "{s}"
    );
    assert!(s.contains("telemetry:"), "{s}");
    // A clean run reports no rollbacks.
    assert!(!s.contains("rollback to cycle"), "{s}");
    // Every line belongs to a known section — the summary never grows
    // unlabelled output.
    for line in s.lines() {
        assert!(
            line.starts_with("outcome:")
                || line.starts_with("blocks:")
                || line.starts_with("idle breakdown:")
                || line.starts_with("supervision:")
                || line.starts_with("telemetry:")
                || line.starts_with("  "),
            "unexpected summary line: {line}"
        );
    }
}

#[test]
fn summary_distinguishes_the_three_outcomes() {
    // Completed (above), timed out, and stalled: the first line is the
    // discriminator downstream log-greps key on.
    let kernel = livelock_kernel();
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 2;
    cfg.gpu.mem.max_pending_per_warp = 0;
    cfg.max_cycles = 2_000;

    // Without a watchdog the livelock burns to the cycle bound: timed out.
    let timed_out = Simulator::new(cfg.clone()).run_report(&kernel);
    assert!(matches!(timed_out.outcome, RunOutcome::TimedOut));
    assert!(
        timed_out.summary().starts_with(&format!(
            "outcome: timed out after {} cycles",
            cfg.max_cycles
        )),
        "{}",
        timed_out.summary()
    );

    // With one, the watchdog proves the stall and embeds the diagnosis.
    cfg.max_cycles = 1_000_000;
    let stalled = Simulator::new(cfg.with_watchdog(Some(500))).run_report(&kernel);
    let s = stalled.summary();
    assert!(s.starts_with("outcome: stalled (watchdog)"), "{s}");
    assert!(s.contains("livelock proven at cycle"), "{s}");
}
