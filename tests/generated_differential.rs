//! Cross-engine differential harness over the generated-kernel corpus.
//!
//! The simulator's determinism contract is the oracle: a generated kernel
//! needs no reference output, because every engine (per-cycle reference,
//! event-driven fast-forward, sharded epoch), every observation layer
//! (telemetry, checkpoint/resume) and the idealized event memory model must
//! produce **bit-identical** `SimStats`. Any divergence is a bug in one of
//! them — found without ever deciding what the "right" number is.
//!
//! Coverage:
//! * the pinned corpus (`workloads::gen::pinned_corpus()`: every family ×
//!   pinned seed, small size) across all of the above, under the functional
//!   and the finite event memory model;
//! * a seeded fresh-band property test over arbitrary `(family, seed)`
//!   draws — `GRS_GEN_SEEDS` raises the case count for nightly fuzz runs
//!   (pinned regressions in `proptest-regressions/generated_differential.txt`);
//! * a non-vacuity check: the `mshr-thrash` family must actually saturate
//!   the finite MSHR tables (`mshr_full_stalls > 0`) — back-pressure the
//!   hand-built Set kernels never reach, so the differential matrix is
//!   exercised in that regime too.

use gpu_resource_sharing::prelude::*;
use proptest::prelude::*;
use workloads::gen::{pinned_corpus, Family, GenSpec, PINNED_SEEDS};

/// Small machine so the per-cycle reference loop stays fast in debug
/// builds; 2 SMs still exercise cross-SM dispatch and sharding.
fn base(model: MemoryModel) -> RunConfig {
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(model);
    cfg.gpu.num_sms = 2;
    cfg.max_cycles = 20_000_000;
    cfg
}

/// The idealization under which Event must equal Functional exactly.
fn idealized(mut cfg: RunConfig) -> RunConfig {
    cfg.gpu.mem.mem_partitions = 1;
    cfg.gpu.mem.mshr_entries = 0; // unlimited
    cfg.gpu.mem.dram_queue_entries = 0; // unbounded
    cfg.with_memory_model(MemoryModel::Event)
}

/// Per-cycle reference stats for `spec` under `cfg` — the value every
/// variant is compared against.
fn reference(spec: &GenSpec, cfg: &RunConfig) -> SimStats {
    let stats = Simulator::new(cfg.clone().with_fast_forward(false)).run(&spec.build());
    assert!(!stats.timed_out, "{} timed out", spec.scenario_name());
    stats
}

#[test]
fn engines_are_bit_identical_on_the_pinned_corpus_functional() {
    for spec in pinned_corpus() {
        let kernel = spec.build();
        let cfg = base(MemoryModel::Functional);
        let reference = reference(&spec, &cfg);
        for (label, variant) in [
            ("fast-forward", cfg.clone().with_fast_forward(true)),
            ("shards-2", cfg.clone().with_shards(Some(2))),
            ("shards-4", cfg.clone().with_shards(Some(4))),
        ] {
            let stats = Simulator::new(variant).run(&kernel);
            assert_eq!(
                stats,
                reference,
                "{label} diverges from the per-cycle reference on {}",
                spec.scenario_name()
            );
        }
        assert_eq!(reference.blocks_completed, u64::from(kernel.grid_blocks));
    }
}

#[test]
fn engines_are_bit_identical_on_the_pinned_corpus_finite_event() {
    for spec in pinned_corpus() {
        let kernel = spec.build();
        let cfg = base(MemoryModel::Event);
        let reference = reference(&spec, &cfg);
        for (label, variant) in [
            ("fast-forward", cfg.clone().with_fast_forward(true)),
            ("shards-2", cfg.clone().with_shards(Some(2))),
        ] {
            let stats = Simulator::new(variant).run(&kernel);
            assert_eq!(
                stats,
                reference,
                "{label} diverges under the finite event model on {}",
                spec.scenario_name()
            );
        }
    }
}

#[test]
fn idealized_event_model_equals_functional_on_the_pinned_corpus() {
    for spec in pinned_corpus() {
        let kernel = spec.build();
        let functional = reference(&spec, &base(MemoryModel::Functional));
        let event = Simulator::new(idealized(base(MemoryModel::Functional))).run(&kernel);
        assert_eq!(
            event,
            functional,
            "idealized event model diverges from functional on {}",
            spec.scenario_name()
        );
    }
}

#[test]
fn telemetry_and_checkpoints_are_invisible_on_the_pinned_corpus() {
    for spec in pinned_corpus() {
        let kernel = spec.build();
        let cfg = base(MemoryModel::Event);
        let plain = Simulator::new(cfg.clone()).run(&kernel);

        let traced = Simulator::new(
            cfg.clone()
                .with_telemetry(Some(TelemetryConfig::default().with_sample_every(500))),
        )
        .run_report(&kernel);
        assert!(traced.completed(), "{}", spec.scenario_name());
        assert_eq!(
            traced.stats,
            plain,
            "telemetry perturbed {}",
            spec.scenario_name()
        );
        assert!(
            traced.telemetry.is_some(),
            "telemetry was configured on {}",
            spec.scenario_name()
        );

        // A deliberately odd interval so snapshot cuts land at arbitrary
        // cycles, never aligned with epochs or loop trips.
        let checkpointed = Simulator::new(cfg.with_checkpoint_every(Some(137))).run_report(&kernel);
        assert!(checkpointed.completed(), "{}", spec.scenario_name());
        assert!(checkpointed.checkpoints > 0, "{}", spec.scenario_name());
        assert_eq!(
            checkpointed.stats,
            plain,
            "checkpoint/resume perturbed {}",
            spec.scenario_name()
        );
    }
}

#[test]
fn mshr_thrash_actually_saturates_the_finite_mshrs() {
    // Non-vacuity: the differential matrix above must be exercising real
    // back-pressure, not an idle memory system, for at least this family.
    for seed in PINNED_SEEDS {
        let spec = GenSpec::new(Family::MshrThrash, seed);
        let stats = Simulator::new(base(MemoryModel::Event)).run(&spec.build());
        assert!(
            stats.mshr_full_stalls > 0,
            "{} never filled an MSHR table",
            spec.scenario_name()
        );
    }
    // ...and the functional model, which has no MSHRs, must count none,
    // for any family (the counter belongs to the event model alone).
    for family in Family::ALL {
        let spec = GenSpec::new(family, PINNED_SEEDS[0]);
        let stats = Simulator::new(base(MemoryModel::Functional)).run(&spec.build());
        assert_eq!(stats.mshr_full_stalls, 0, "{}", spec.scenario_name());
    }
}

#[test]
fn sharing_modes_complete_the_pinned_corpus() {
    // The generator's families run under both paper sharing modes without
    // deadlock or timeout — the end-to-end suite's property, pinned here
    // for the corpus CI replays forever.
    for spec in pinned_corpus() {
        let kernel = spec.build();
        for base_cfg in [
            RunConfig::paper_register_sharing(),
            RunConfig::paper_scratchpad_sharing(),
        ] {
            let mut cfg = base_cfg.with_memory_model(MemoryModel::Event);
            cfg.gpu.num_sms = 2;
            cfg.max_cycles = 20_000_000;
            match Simulator::new(cfg).try_run(&kernel) {
                Ok(stats) => {
                    assert!(!stats.timed_out, "{}", spec.scenario_name());
                    assert_eq!(stats.blocks_completed, u64::from(kernel.grid_blocks));
                }
                Err(e) => panic!("{}: {e}", spec.scenario_name()),
            }
        }
    }
}

/// Fresh-band draws: any `(family, seed)` point, not just the pinned ones.
fn fresh_spec() -> impl Strategy<Value = GenSpec> {
    (0usize..Family::ALL.len(), 0u64..u64::MAX).prop_map(|(fam, seed)| GenSpec {
        family: Family::ALL[fam],
        seed,
        size: workloads::gen::SizeClass::Small,
    })
}

fn fuzz_cases() -> u32 {
    std::env::var("GRS_GEN_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn fresh_seeds_are_bit_identical_across_engines(spec in fresh_spec()) {
        let kernel = spec.build();
        for model in [MemoryModel::Functional, MemoryModel::Event] {
            let cfg = base(model);
            let reference = reference(&spec, &cfg);
            for variant in [
                cfg.clone().with_fast_forward(true),
                cfg.clone().with_shards(Some(2)),
            ] {
                let stats = Simulator::new(variant).run(&kernel);
                prop_assert_eq!(
                    &stats,
                    &reference,
                    "divergence under {:?} on {}",
                    model,
                    spec.scenario_name()
                );
            }
        }
    }

    #[test]
    fn fresh_seeds_survive_telemetry_and_checkpoints(spec in fresh_spec()) {
        let kernel = spec.build();
        let cfg = base(MemoryModel::Event);
        let plain = Simulator::new(cfg.clone()).run(&kernel);
        let traced = Simulator::new(
            cfg.clone()
                .with_telemetry(Some(TelemetryConfig::default().with_sample_every(500)))
                .with_checkpoint_every(Some(137)),
        )
        .run_report(&kernel);
        prop_assert!(traced.completed(), "{}", spec.scenario_name());
        prop_assert_eq!(
            &traced.stats,
            &plain,
            "observation layers perturbed {}",
            spec.scenario_name()
        );
    }
}
