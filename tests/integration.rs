//! Cross-crate integration tests: end-to-end properties the paper's
//! evaluation relies on.

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::prelude::*;

fn small(mut k: gpu_resource_sharing::isa::Kernel) -> gpu_resource_sharing::isa::Kernel {
    k.grid_blocks = 56;
    k
}

#[test]
fn simulations_are_deterministic() {
    let k = small(workloads::set1::hotspot());
    for cfg in [
        RunConfig::baseline_lrr(),
        RunConfig::baseline_gto(),
        RunConfig::paper_register_sharing(),
    ] {
        let a = Simulator::new(cfg.clone()).run(&k);
        let b = Simulator::new(cfg).run(&k);
        assert_eq!(a, b);
    }
}

#[test]
fn every_benchmark_completes_under_every_headline_config() {
    for (set, k) in workloads::all_benchmarks() {
        let k = small(k);
        let cfgs = [
            RunConfig::baseline_lrr(),
            RunConfig::baseline_gto(),
            RunConfig::baseline_two_level(),
            RunConfig::paper_register_sharing(),
            RunConfig::paper_scratchpad_sharing(),
        ];
        for cfg in cfgs {
            let stats = Simulator::new(cfg.clone()).run(&k);
            assert!(
                !stats.timed_out,
                "{:?} {} timed out under {:?}",
                set, k.name, cfg.scheduler
            );
            assert_eq!(
                stats.blocks_completed,
                u64::from(k.grid_blocks),
                "{:?} {} lost blocks",
                set,
                k.name
            );
            // Every dynamic instruction issues exactly once.
            assert_eq!(
                stats.thread_instrs,
                k.total_thread_instrs() - missing_threads_correction(&k),
                "{} instruction count mismatch",
                k.name
            );
        }
    }
}

/// `total_thread_instrs` assumes full warps; partial warps (e.g. b+tree's
/// 508-thread blocks) execute fewer thread-instructions.
fn missing_threads_correction(k: &gpu_resource_sharing::isa::Kernel) -> u64 {
    let full = k.warps_per_block() * 32;
    let missing = u64::from(full - k.threads_per_block);
    missing * k.dynamic_instrs_per_warp() * u64::from(k.grid_blocks)
}

#[test]
fn set3_sharing_is_bit_identical_to_baseline() {
    // Paper Sec. VI-B2: resource-unlimited kernels launch everything in
    // unsharing mode, so Shared-LRR == Unshared-LRR and Shared-GTO ==
    // Unshared-GTO exactly.
    for k in workloads::set3_benchmarks() {
        let k = small(k);
        for (base, shared_sched) in [
            (RunConfig::baseline_lrr(), SchedulerKind::Lrr),
            (RunConfig::baseline_gto(), SchedulerKind::Gto),
        ] {
            let unshared = Simulator::new(base).run(&k);
            let shared = Simulator::new(
                RunConfig::paper_register_sharing()
                    .with_scheduler(shared_sched)
                    .with_reorder_decls(false)
                    .with_dyn_throttle(false),
            )
            .run(&k);
            assert_eq!(unshared, shared, "{}", k.name);
        }
    }
}

#[test]
fn owf_degenerates_to_gto_without_sharing() {
    // Paper Sec. VI-B2: with every block unshared, OWF sorts by dynamic warp
    // id, matching GTO.
    for k in workloads::set3_benchmarks() {
        let k = small(k);
        let gto = Simulator::new(RunConfig::baseline_gto()).run(&k);
        let owf =
            Simulator::new(RunConfig::baseline_lrr().with_scheduler(SchedulerKind::Owf)).run(&k);
        assert_eq!(gto.cycles, owf.cycles, "{}", k.name);
        assert_eq!(gto.thread_instrs, owf.thread_instrs, "{}", k.name);
    }
}

#[test]
fn sharing_never_reduces_resident_blocks() {
    for (_, k) in workloads::all_benchmarks() {
        for cfg in [
            RunConfig::paper_register_sharing(),
            RunConfig::paper_scratchpad_sharing(),
        ] {
            let sim = Simulator::new(cfg);
            let plan = sim.plan_for(&k);
            assert!(
                plan.max_blocks >= plan.baseline_blocks,
                "{}: {plan:?}",
                k.name
            );
            assert!(
                plan.effective_blocks() >= plan.baseline_blocks,
                "{}: {plan:?}",
                k.name
            );
        }
    }
}

#[test]
fn register_sharing_lifts_resident_blocks_for_set1() {
    // Fig. 8(a): every Set-1 kernel gains resident blocks at t = 0.1.
    let expect = [6u32, 3, 6, 8, 6, 6, 8, 3];
    for (k, expected) in workloads::set1_benchmarks().iter().zip(expect) {
        let plan = Simulator::new(RunConfig::paper_register_sharing()).plan_for(k);
        assert_eq!(plan.max_blocks, expected, "{}", k.name);
    }
}

#[test]
fn scratchpad_sharing_lifts_resident_blocks_for_set2() {
    // Fig. 8(b): every Set-2 kernel gains resident blocks at t = 0.1.
    let expect = [8u32, 4, 4, 8, 8, 4, 5];
    for (k, expected) in workloads::set2_benchmarks().iter().zip(expect) {
        let plan = Simulator::new(RunConfig::paper_scratchpad_sharing()).plan_for(k);
        assert_eq!(plan.max_blocks, expected, "{}", k.name);
    }
}

#[test]
fn simulated_residency_matches_plan() {
    let mut k = workloads::set1::hotspot();
    k.grid_blocks = 168;
    let sim = Simulator::new(RunConfig::paper_register_sharing());
    let stats = sim.run(&k);
    assert_eq!(stats.max_resident_blocks, sim.plan_for(&k).max_blocks);
}
