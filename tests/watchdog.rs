//! The forward-progress watchdog's contract: a genuine livelock (here: a
//! per-warp MSHR quota of zero, which blocks every global-memory warp
//! forever) ends the run `window` cycles past the last provable progress —
//! **well** before `max_cycles` — with a populated `StallDiagnosis`; the
//! trip cycle and statistics are identical across the per-cycle,
//! fast-forward and sharded engines; and a healthy run with the watchdog
//! armed is completely unaffected.

use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{MemoryModel, RunOutcome, StallDiagnosis};

/// A couple of ALU issues (real progress, so the watermark is non-trivial)
/// and then a global load every warp blocks on forever once the per-warp
/// MSHR quota is zeroed.
fn livelock_kernel() -> gpu_resource_sharing::isa::Kernel {
    KernelBuilder::new("livelock")
        .threads_per_block(64)
        .regs_per_thread(16)
        .grid_blocks(8)
        .ialu(2)
        .ld_global(GP::Stream)
        .ffma(2)
        .st_global(GP::Stream)
        .build()
}

fn livelock_config(model: MemoryModel) -> RunConfig {
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(model);
    cfg.gpu.num_sms = 2;
    // No warp may ever have a global access in flight: every global-memory
    // warp is permanently hard-blocked the moment it reaches its load.
    cfg.gpu.mem.max_pending_per_warp = 0;
    cfg.max_cycles = 1_000_000;
    cfg
}

fn expect_stall(report: &gpu_resource_sharing::sim::RunReport) -> &StallDiagnosis {
    match &report.outcome {
        RunOutcome::Stalled(diag) => diag,
        other => panic!("expected a watchdog trip, got {other:?}"),
    }
}

#[test]
fn a_livelock_trips_the_watchdog_with_a_full_diagnosis() {
    let window = 500u64;
    let cfg = livelock_config(MemoryModel::Event).with_watchdog(Some(window));
    let report = Simulator::new(cfg.clone()).run_report(&livelock_kernel());
    let diag = expect_stall(&report);

    // The trip is exactly one window past the watermark, and far from the
    // cycle bound the run would otherwise have burned to.
    assert_eq!(diag.window, window);
    assert_eq!(diag.at_cycle, diag.last_progress + window);
    assert!(
        diag.at_cycle < cfg.max_cycles / 100,
        "tripped at {} of {} max cycles",
        diag.at_cycle,
        cfg.max_cycles
    );
    assert_eq!(report.stats.cycles, diag.at_cycle);
    assert!(report.stats.timed_out, "a stalled run did not complete");

    // The diagnosis names the culprits: every SM holds resident blocks with
    // live warps, nothing is scheduled to wake anyone, and the memory
    // system has nothing in flight (the warps never got to issue at all).
    assert_eq!(diag.sms.len(), 2);
    for sm in &diag.sms {
        assert!(sm.live_blocks > 0, "SM {} diagnosis is empty", sm.id);
        assert!(sm.live_warps);
        assert_eq!(sm.next_wake, None);
        assert!(!sm.sleeping);
    }
    assert_eq!(diag.mem.next_release, None);
    assert_eq!(diag.mem.mshr_in_flight, 0);
    assert_eq!(diag.mem.dram_queue_in_flight, 0);
}

#[test]
fn the_trip_is_identical_across_all_three_engines() {
    for model in [MemoryModel::Functional, MemoryModel::Event] {
        let base = livelock_config(model).with_watchdog(Some(750));
        let reference =
            Simulator::new(base.clone().with_fast_forward(false)).run_report(&livelock_kernel());
        expect_stall(&reference);
        for cfg in [
            base.clone(),                      // fast-forward
            base.clone().with_shards(Some(2)), // sharded
        ] {
            let report = Simulator::new(cfg).run_report(&livelock_kernel());
            assert_eq!(
                report.outcome, reference.outcome,
                "trip diagnosis diverges under {model:?}"
            );
            assert_eq!(
                report.stats, reference.stats,
                "stalled statistics diverge under {model:?}"
            );
        }
    }
}

#[test]
fn a_healthy_run_is_unaffected_by_an_armed_watchdog() {
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    let mut cfg = RunConfig::paper_register_sharing().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 4;
    let plain = Simulator::new(cfg.clone()).run(&conv1);
    for shards in [None, Some(2)] {
        let report = Simulator::new(
            cfg.clone()
                .with_shards(shards)
                // Far smaller than the run, far larger than any real gap
                // between events (DRAM latency bounds quiet spans).
                .with_watchdog(Some(10_000)),
        )
        .run_report(&conv1);
        assert_eq!(report.outcome, RunOutcome::Completed, "shards={shards:?}");
        assert_eq!(report.stats, plain, "shards={shards:?}");
    }
}

#[test]
fn without_the_watchdog_a_livelock_burns_to_the_cycle_bound() {
    // The failure mode the watchdog exists to prevent — pinned so the
    // livelock in these tests is provably a livelock and not a slow run.
    let cfg = livelock_config(MemoryModel::Event).with_max_cycles(20_000);
    let report = Simulator::new(cfg).run_report(&livelock_kernel());
    assert_eq!(report.outcome, RunOutcome::TimedOut);
    assert_eq!(report.stats.cycles, 20_000);
    assert_eq!(report.stats.blocks_completed, 0);
}
