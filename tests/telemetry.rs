//! The telemetry contract: tracing is pure observation. `SimStats` are
//! **bit-identical** with telemetry on or off across the scheduler ×
//! sharing × memory-model matrix and all three engines; the merged event
//! stream is invariant to shard count and to checkpoint/resume boundaries
//! (the engine track excepted — checkpoints and recoveries are real
//! engine-level occurrences); sampled timeline rows are exact across
//! fast-forward clock jumps; and ring overflow drops oldest-first with
//! exact accounting (property-tested with pinned seeds).

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{
    FaultPlan, MemoryModel, RunOutcome, SimStats, TelemetryEvent, TelemetryReport, TraceRecord,
    Track,
};
use proptest::prelude::*;

fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn config(sched: SchedulerKind, sharing: SharingMode, model: MemoryModel) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            // Throttle on, so tracing has to coexist with live RNG streams.
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched).with_memory_model(model);
    cfg.gpu.num_sms = 4;
    cfg
}

fn traced(cfg: &RunConfig, sample_every: u64) -> RunConfig {
    cfg.clone().with_telemetry(Some(
        TelemetryConfig::default().with_sample_every(sample_every),
    ))
}

/// The stall-breakdown accounting identities every run must satisfy:
/// every pipeline-stall cycle is a memory-gate cycle, and the idle cycles
/// partition exactly into scoreboard / barrier / no-ready.
fn assert_breakdown_invariants(s: &SimStats, label: &str) {
    assert_eq!(s.stall_mem_gate_cycles, s.stall_cycles, "{label}");
    assert_eq!(
        s.stall_scoreboard_cycles + s.stall_barrier_cycles + s.stall_no_ready_cycles,
        s.idle_cycles,
        "{label}"
    );
    for (i, sm) in s.per_sm.iter().enumerate() {
        assert_eq!(sm.stall_mem_gate_cycles, sm.stall_cycles, "{label} SM {i}");
        assert_eq!(
            sm.stall_scoreboard_cycles + sm.stall_barrier_cycles + sm.stall_no_ready_cycles,
            sm.idle_cycles,
            "{label} SM {i}"
        );
    }
}

/// Events on the SM and memory tracks — the machine-level stream that must
/// be invariant to checkpointing and recovery (the engine track records
/// the supervision history itself, which those features legitimately
/// change).
fn machine_events(t: &TelemetryReport) -> Vec<TraceRecord> {
    t.events
        .iter()
        .filter(|r| r.track != Track::Engine)
        .copied()
        .collect()
}

#[test]
fn tracing_is_invisible_across_the_full_matrix() {
    let schedulers = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ];
    let sharing_modes = [
        SharingMode::None,
        SharingMode::Registers,
        SharingMode::Scratchpad,
    ];
    let models = [MemoryModel::Functional, MemoryModel::Event];
    let kernels = kernels();
    let mut cell = 0usize;
    for sched in schedulers {
        for sharing in sharing_modes {
            for model in models {
                // Alternate the two kernels across cells: full coverage of
                // the matrix at half the wall clock.
                let kernel = &kernels[cell % 2];
                cell += 1;
                let cfg = config(sched, sharing, model);
                let label = format!("{} under {sched:?}×{sharing:?}×{model:?}", kernel.name);
                let untraced = Simulator::new(cfg.clone()).run(kernel);
                assert!(!untraced.timed_out, "{label}");
                assert_breakdown_invariants(&untraced, &label);
                // All three engines, telemetry on: stats must stay
                // bit-identical — which also pins the per-reason stall
                // breakdown (part of SimStats equality) across engines.
                for (engine, tcfg) in [
                    ("fast-forward", traced(&cfg, 256)),
                    ("reference", traced(&cfg, 256).with_fast_forward(false)),
                    ("sharded", traced(&cfg, 256).with_shards(Some(2))),
                ] {
                    let report = Simulator::new(tcfg).run_report(kernel);
                    assert_eq!(report.stats, untraced, "{label} traced on {engine}");
                    let t = report.telemetry.expect("telemetry was configured");
                    assert!(!t.events.is_empty(), "{label} {engine}: empty stream");
                    assert!(!t.sm_samples.is_empty(), "{label} {engine}: no rows");
                }
            }
        }
    }
}

#[test]
fn sampled_rows_and_machine_events_are_exact_across_fast_forward_jumps() {
    // The per-cycle reference loop is the definition of "exact": the
    // fast-forward engine's closed-form crediting must emit the very same
    // rows at the very same boundaries, and the same SM/MEM events — its
    // only addition is the SleepSpan record at each clock jump.
    let kernel = &kernels()[1];
    let cfg = config(SchedulerKind::Lrr, SharingMode::None, MemoryModel::Event);
    let fast = Simulator::new(traced(&cfg, 64)).run_report(kernel);
    let reference = Simulator::new(traced(&cfg, 64).with_fast_forward(false)).run_report(kernel);
    let (fast, reference) = (fast.telemetry.unwrap(), reference.telemetry.unwrap());
    assert_eq!(fast.sm_samples, reference.sm_samples);
    assert_eq!(fast.mem_samples, reference.mem_samples);
    assert!(!fast.mem_samples.is_empty(), "event model emits MEM rows");
    let strip_sleep = |t: &TelemetryReport| -> Vec<TraceRecord> {
        t.events
            .iter()
            .filter(|r| !matches!(r.event, TelemetryEvent::SleepSpan { .. }))
            .map(|r| TraceRecord { seq: 0, ..*r })
            .collect()
    };
    assert!(reference
        .events
        .iter()
        .all(|r| !matches!(r.event, TelemetryEvent::SleepSpan { .. })));
    assert_eq!(strip_sleep(&fast), strip_sleep(&reference));
}

#[test]
fn the_merged_stream_is_shard_count_invariant() {
    let kernel = &kernels()[1];
    let cfg = config(
        SchedulerKind::Owf,
        SharingMode::Scratchpad,
        MemoryModel::Event,
    );
    let two = Simulator::new(traced(&cfg, 128).with_shards(Some(2))).run_report(kernel);
    let four = Simulator::new(traced(&cfg, 128).with_shards(Some(4))).run_report(kernel);
    assert_eq!(two.stats, four.stats);
    let (two, four) = (two.telemetry.unwrap(), four.telemetry.unwrap());
    assert!(two
        .events
        .iter()
        .any(|r| r.event == TelemetryEvent::EpochCommit));
    // The whole report — events, samples, per-track accounting — is pinned,
    // not just the statistics.
    assert_eq!(two, four);
}

#[test]
fn checkpoint_cuts_do_not_perturb_the_machine_streams() {
    let kernel = &kernels()[0];
    for shards in [None, Some(2)] {
        let cfg = config(
            SchedulerKind::Gto,
            SharingMode::Registers,
            MemoryModel::Event,
        )
        .with_shards(shards);
        let plain = Simulator::new(traced(&cfg, 128)).run_report(kernel);
        let cut =
            Simulator::new(traced(&cfg, 128).with_checkpoint_every(Some(137))).run_report(kernel);
        assert_eq!(plain.stats, cut.stats, "shards={shards:?}");
        assert!(cut.checkpoints > 0);
        let (plain, cut_t) = (plain.telemetry.unwrap(), cut.telemetry.unwrap());
        assert_eq!(
            machine_events(&plain),
            machine_events(&cut_t),
            "shards={shards:?}"
        );
        assert_eq!(plain.sm_samples, cut_t.sm_samples, "shards={shards:?}");
        assert_eq!(plain.mem_samples, cut_t.mem_samples, "shards={shards:?}");
        // The engine track records each cut, surviving outside the machine.
        let cuts = cut_t
            .events
            .iter()
            .filter(|r| r.event == TelemetryEvent::CheckpointCut)
            .count() as u64;
        assert_eq!(cuts, cut.checkpoints, "shards={shards:?}");
    }
}

#[test]
fn fault_recovery_resumes_an_identical_machine_stream() {
    // A worker panic rolls the machine back to the last snapshot — which
    // carries the SM and MEM ring buffers with it — and replays with fewer
    // shards. The replayed machine stream must be indistinguishable from
    // an undisturbed run's; the recovery itself is recorded on the engine
    // track, where rollback cannot erase it.
    let kernel = &kernels()[1];
    let cfg = config(SchedulerKind::Lrr, SharingMode::None, MemoryModel::Event)
        .with_shards(Some(2))
        .with_checkpoint_every(Some(500));
    let clean = Simulator::new(traced(&cfg, 256)).run_report(kernel);
    let plan = FaultPlan::at(&[(10, 1)]);
    let faulted = Simulator::new(traced(&cfg, 256))
        .try_run_report_with_faults(kernel, &plan)
        .expect("valid kernel");
    assert_eq!(plan.fired(), 1, "the injected fault never fired");
    assert_eq!(faulted.recoveries.len(), 1);
    assert_eq!(faulted.stats, clean.stats);
    assert_eq!(faulted.outcome, RunOutcome::Completed);
    let (clean, faulted_t) = (clean.telemetry.unwrap(), faulted.telemetry.unwrap());
    assert_eq!(machine_events(&clean), machine_events(&faulted_t));
    assert_eq!(clean.sm_samples, faulted_t.sm_samples);
    assert_eq!(clean.mem_samples, faulted_t.mem_samples);
    let recovery = faulted_t
        .events
        .iter()
        .find(|r| matches!(r.event, TelemetryEvent::Recovery { .. }))
        .expect("the recovery is on the engine track");
    assert_eq!(recovery.track, Track::Engine);
    assert_eq!(
        recovery.event,
        TelemetryEvent::Recovery {
            from_shards: 2,
            to_shards: 1
        }
    );
}

#[test]
fn telemetry_off_and_sampling_off_edges() {
    let kernel = &kernels()[0];
    let cfg = config(
        SchedulerKind::Lrr,
        SharingMode::None,
        MemoryModel::Functional,
    );
    let report = Simulator::new(cfg.clone()).run_report(kernel);
    assert!(report.telemetry.is_none(), "no config, no report");
    // sample_every = 0: events still flow, the sampler stays silent.
    let t = Simulator::new(traced(&cfg, 0))
        .run_report(kernel)
        .telemetry
        .unwrap();
    assert!(!t.events.is_empty());
    assert!(t.sm_samples.is_empty() && t.mem_samples.is_empty());
    // The functional model has no MEM track.
    assert!(t.tracks.iter().all(|ts| ts.track != Track::Mem));
}

#[test]
fn stall_diagnosis_displays_and_the_report_summarizes() {
    // Satellite: Display for StallDiagnosis + RunReport::summary().
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 2;
    cfg.gpu.mem.max_pending_per_warp = 0; // every global-memory warp blocks forever
    cfg.max_cycles = 1_000_000;
    let kernel = KernelBuilder::new("livelock")
        .threads_per_block(64)
        .regs_per_thread(16)
        .grid_blocks(8)
        .ialu(2)
        .ld_global(GP::Stream)
        .ffma(2)
        .build();
    let report = Simulator::new(
        cfg.with_watchdog(Some(500))
            .with_telemetry(Some(TelemetryConfig::default())),
    )
    .run_report(&kernel);
    let diag = match &report.outcome {
        RunOutcome::Stalled(d) => d,
        other => panic!("expected a watchdog trip, got {other:?}"),
    };
    let shown = format!("{diag}");
    assert!(shown.contains("livelock proven at cycle"), "{shown}");
    assert!(shown.contains("SM 0:") && shown.contains("MEM:"), "{shown}");
    let summary = report.summary();
    assert!(summary.contains("outcome: stalled"), "{summary}");
    assert!(summary.contains("idle breakdown:"), "{summary}");
    assert!(summary.contains("telemetry:"), "{summary}");
    // The watchdog's watermark history lands on the engine track.
    let t = report.telemetry.as_ref().unwrap();
    assert!(t
        .events
        .iter()
        .any(|r| matches!(r.event, TelemetryEvent::WatermarkUpdate { .. })));
    // A completed run's summary leads with the completion line.
    let done = Simulator::new(RunConfig::baseline_lrr()).run_report(&kernels()[0]);
    assert!(done.summary().starts_with("outcome: completed"));
}

#[derive(Debug, Clone)]
struct Case {
    threads_log2: u32,
    regs: u32,
    grid: u32,
    alu: u32,
    trips: u16,
    capacity: usize,
    sample: u64,
}

fn case() -> impl Strategy<Value = Case> {
    (
        0u32..=2,
        4u32..=48,
        1u32..=16,
        1u32..=6,
        0u16..=10,
        1usize..=64, // small enough that real runs overflow the rings
        0u64..=512,
    )
        .prop_map(|(tl, regs, grid, alu, trips, capacity, sample)| Case {
            threads_log2: tl,
            regs,
            grid,
            alu,
            trips,
            capacity,
            sample,
        })
}

fn build(c: &Case) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("teleprop")
        .threads_per_block(32 << c.threads_log2)
        .regs_per_thread(c.regs)
        .grid_blocks(c.grid);
    let top = b.here();
    b = b
        .ld_global(GP::Stream)
        .ialu(c.alu)
        .ffma(2)
        .loop_back(top, c.trips)
        .st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ring_overflow_keeps_the_newest_suffix_with_exact_accounting(c in case()) {
        let k = build(&c);
        let mut cfg = RunConfig::paper_register_sharing().with_memory_model(MemoryModel::Event);
        cfg.gpu.num_sms = 2;
        cfg.max_cycles = 2_000_000;
        let small = TelemetryConfig { capacity: c.capacity, sample_every: c.sample };
        let huge = TelemetryConfig { capacity: 1 << 20, sample_every: c.sample };
        // Every drawn case fits the machine (≤ 48 regs × ≤ 128 threads).
        let a = Simulator::new(cfg.clone().with_telemetry(Some(small))).run_report(&k);
        let b = Simulator::new(cfg.with_telemetry(Some(huge))).run_report(&k);
        prop_assert_eq!(&a.stats, &b.stats, "capacity changed the statistics");
        let (a, b) = (a.telemetry.unwrap(), b.telemetry.unwrap());
        // Same rows regardless of event-ring pressure.
        prop_assert_eq!(&a.sm_samples, &b.sm_samples);
        prop_assert_eq!(&a.mem_samples, &b.mem_samples);
        prop_assert_eq!(a.tracks.len(), b.tracks.len());
        for (ta, tb) in a.tracks.iter().zip(&b.tracks) {
            prop_assert_eq!(ta.track, tb.track);
            prop_assert_eq!(ta.appended, tb.appended, "append counts diverge on {:?}", ta.track);
            let kept_a: Vec<TraceRecord> =
                a.events.iter().filter(|r| r.track == ta.track).copied().collect();
            let kept_b: Vec<TraceRecord> =
                b.events.iter().filter(|r| r.track == ta.track).copied().collect();
            prop_assert_eq!(ta.dropped, ta.appended - kept_a.len() as u64);
            prop_assert!(kept_a.len() <= c.capacity.max(1));
            // Oldest-first drops: what survives the small ring is exactly
            // the newest suffix of the unpressured stream, sequence
            // numbers included.
            let suffix = &kept_b[kept_b.len() - kept_a.len()..];
            prop_assert_eq!(kept_a.as_slice(), suffix, "track {:?}", ta.track);
        }
    }
}
