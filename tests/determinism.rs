//! Bit-for-bit reproducibility of the simulator, the property every other
//! result in this repository rests on: two [`Simulator::run`] calls with the
//! same [`RunConfig`] must produce **identical** [`SimStats`] — cycles,
//! per-SM counters, cache statistics, everything `PartialEq` compares — for
//! every scheduler kind crossed with every sharing mode.

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::prelude::*;

/// One register-limited and one scratchpad-limited kernel, with grids small
/// enough to keep the 24-config sweep fast in debug builds.
fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn schedulers() -> [SchedulerKind; 4] {
    [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ]
}

fn sharing_modes() -> [SharingMode; 3] {
    [
        SharingMode::None,
        SharingMode::Registers,
        SharingMode::Scratchpad,
    ]
}

/// Build the run configuration for one (scheduler, sharing) cell; sharing
/// runs enable the full optimization stack (reordering + dynamic throttle)
/// so the throttle's RNG and the transform pass are exercised too.
fn config(sched: SchedulerKind, sharing: SharingMode) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched);
    cfg.gpu.num_sms = 4;
    cfg
}

#[test]
fn identical_runs_for_every_scheduler_and_sharing_mode() {
    for kernel in kernels() {
        for sched in schedulers() {
            for sharing in sharing_modes() {
                let cfg = config(sched, sharing);
                let a = Simulator::new(cfg.clone()).run(&kernel);
                let b = Simulator::new(cfg).run(&kernel);
                assert_eq!(
                    a, b,
                    "{} under {sched:?} × {sharing:?} is not reproducible",
                    kernel.name
                );
                assert!(
                    !a.timed_out,
                    "{} under {sched:?} × {sharing:?} timed out",
                    kernel.name
                );
                assert_eq!(
                    a.blocks_completed,
                    u64::from(kernel.grid_blocks),
                    "{}",
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn fresh_simulator_equals_reused_simulator() {
    // A `Simulator` holds no mutable state across runs: re-running the same
    // instance must equal constructing a new one.
    let kernel = &kernels()[0];
    let cfg = config(SchedulerKind::Owf, SharingMode::Registers);
    let sim = Simulator::new(cfg.clone());
    let first = sim.run(kernel);
    let second = sim.run(kernel);
    let fresh = Simulator::new(cfg).run(kernel);
    assert_eq!(first, second);
    assert_eq!(first, fresh);
}

#[test]
fn stats_differ_across_schedulers() {
    // Guard against the determinism test passing vacuously (e.g. a stats
    // collector that ignores the schedule): different policies must actually
    // produce different cycle counts on a latency-sensitive kernel.
    let kernel = &kernels()[0];
    let lrr = Simulator::new(config(SchedulerKind::Lrr, SharingMode::None)).run(kernel);
    let gto = Simulator::new(config(SchedulerKind::Gto, SharingMode::None)).run(kernel);
    assert_ne!(
        lrr.cycles, gto.cycles,
        "LRR and GTO should schedule differently"
    );
}
