//! Contract of the event-driven memory model (`MemoryModel::Event`):
//!
//! 1. **Reduction to the functional model.** With its buffers idealized —
//!    one partition (so the bank topology collapses to the functional
//!    unified L2/DRAM servers), unlimited MSHR entries, an unbounded DRAM
//!    queue — the event model must reproduce `MemoryModel::Functional`
//!    **bit-identically**, over the full 4-scheduler × 3-sharing matrix.
//!    This is not vacuous: the event path still delivers one completion per
//!    line transaction through the per-warp pending groups (coalesced to a
//!    single wake-up), rather than one precomputed writeback per
//!    instruction.
//! 2. **Engine equivalence under back-pressure.** With *finite* buffers the
//!    fast-forward engine must credit gated sleep spans (stall cycles,
//!    MSHR-full / queue-full counters, throttle windows) in closed form:
//!    `fast_forward` on ≡ off, bit for bit.
//! 3. **Back-pressure exists.** On the latency-bound bench scenario
//!    (CONV1 at one wave, DRAM round-trip 1600) the default Event machine
//!    reports nonzero MSHR-full stalls and queue-occupancy integrals.
//! 4. **No deadlock.** Finite (even tiny) MSHR tables and DRAM queues never
//!    wedge a run — a property test over random kernels, seeds pinned in
//!    `proptest-regressions/`.

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use proptest::prelude::*;

fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn config(sched: SchedulerKind, sharing: SharingMode) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched);
    cfg.gpu.num_sms = 4;
    cfg
}

/// The idealization under which Event must equal Functional exactly.
fn idealize(mut cfg: RunConfig) -> RunConfig {
    cfg.gpu.mem.mem_partitions = 1;
    cfg.gpu.mem.mshr_entries = 0; // unlimited
    cfg.gpu.mem.dram_queue_entries = 0; // unbounded
    cfg.with_memory_model(MemoryModel::Event)
}

const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::Lrr,
    SchedulerKind::Gto,
    SchedulerKind::TwoLevel { group_size: 8 },
    SchedulerKind::Owf,
];
const SHARING: [SharingMode; 3] = [
    SharingMode::None,
    SharingMode::Registers,
    SharingMode::Scratchpad,
];

#[test]
fn idealized_event_model_reproduces_functional_bit_identically() {
    for kernel in kernels() {
        for sched in SCHEDULERS {
            for sharing in SHARING {
                let cfg = config(sched, sharing);
                let functional = Simulator::new(cfg.clone()).run(&kernel);
                let event = Simulator::new(idealize(cfg)).run(&kernel);
                assert_eq!(
                    event, functional,
                    "{} under {sched:?} × {sharing:?}: idealized Event diverges",
                    kernel.name
                );
                assert!(!event.timed_out, "{}", kernel.name);
            }
        }
    }
}

/// Finite-buffer Event configuration used by the engine-equivalence and
/// back-pressure tests: small enough tables that CONV1's streaming misses
/// saturate them.
fn constrained(mut cfg: RunConfig) -> RunConfig {
    cfg.gpu.mem.mem_partitions = 2;
    cfg.gpu.mem.mshr_entries = 4;
    cfg.gpu.mem.dram_queue_entries = 4;
    cfg.with_memory_model(MemoryModel::Event)
}

#[test]
fn finite_buffers_are_bit_identical_under_fast_forward() {
    for kernel in kernels() {
        for sched in SCHEDULERS {
            for sharing in SHARING {
                let cfg = constrained(config(sched, sharing));
                let fast = Simulator::new(cfg.clone().with_fast_forward(true)).run(&kernel);
                let reference = Simulator::new(cfg.with_fast_forward(false)).run(&kernel);
                assert_eq!(
                    fast, reference,
                    "{} under {sched:?} × {sharing:?}: gated sleep crediting diverges",
                    kernel.name
                );
                assert!(!fast.timed_out, "{}", kernel.name);
                assert_eq!(fast.blocks_completed, u64::from(kernel.grid_blocks));
            }
        }
    }
}

#[test]
fn latency_bound_scenario_builds_up_post_issue_contention() {
    // The bench scenario (conv1-28 at DRAM round-trip 1600) on the default
    // Event machine: in-flight misses pile up in the MSHR tables and DRAM
    // queues, back-pressure SM issue, and show up in the new counters — the
    // load-dependent latency the functional model cannot express.
    let mut kernel = workloads::set2::conv1();
    kernel.grid_blocks = 28;
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.mem.dram_latency = 1600;
    let stats = Simulator::new(cfg.clone()).run(&kernel);
    assert!(!stats.timed_out);
    assert_eq!(stats.blocks_completed, 28);
    assert!(stats.mshr_full_stalls > 0, "no MSHR back-pressure observed");
    assert!(
        stats.mem.mshr_occupancy_cycles > 0 && stats.mem.dram_queue_occupancy_cycles > 0,
        "occupancy integrals empty: mshr {} dramq {}",
        stats.mem.mshr_occupancy_cycles,
        stats.mem.dram_queue_occupancy_cycles
    );
    assert!(stats.mem.peak_mshr_occupancy > 0);
    // Back-pressure must also be *visible* in the paper's stall split.
    assert!(stats.stall_cycles > 0);
    // Determinism: the event machinery introduces no hidden state.
    let again = Simulator::new(cfg).run(&kernel);
    assert_eq!(stats, again);
}

#[test]
fn merges_save_dram_traffic_under_in_flight_sharing() {
    // Every block reads the same kernel-wide tile: the first warp to touch a
    // line starts its DRAM fill, and every other warp touching it inside the
    // fill window must merge into the in-flight MSHR entry (hit-under-miss)
    // instead of paying for — or re-issuing — the DRAM access.
    let kernel = KernelBuilder::new("shared-tile")
        .threads_per_block(256)
        .regs_per_thread(16)
        .grid_blocks(16)
        .ld_global(GP::KernelTile { tile_lines: 256 })
        .ialu(1)
        .build();
    let mut cfg = RunConfig::baseline_lrr().with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 4;
    cfg.gpu.mem.dram_latency = 800; // wide fill window
    let stats = Simulator::new(cfg).run(&kernel);
    assert!(!stats.timed_out);
    assert!(
        stats.mem.mshr_merges > 0,
        "no hit-under-miss merges observed"
    );
}

#[derive(Debug, Clone)]
struct KernelSpec {
    threads_log2: u32,
    regs: u32,
    grid: u32,
    alu: u32,
    mem_kind: u8,
    trips: u16,
    barrier: bool,
}

fn spec() -> impl Strategy<Value = KernelSpec> {
    (
        0u32..=2,  // threads = 32 << n
        4u32..=40, // regs/thread
        1u32..=16, // grid blocks
        1u32..=4,  // alu per iteration
        0u8..=3,   // memory pattern
        0u16..=8,  // loop trips
        proptest::bool::ANY,
    )
        .prop_map(
            |(tl, regs, grid, alu, mem_kind, trips, barrier)| KernelSpec {
                threads_log2: tl,
                regs,
                grid,
                alu,
                mem_kind,
                trips,
                barrier,
            },
        )
}

fn build(s: &KernelSpec) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("evprop")
        .threads_per_block(32 << s.threads_log2)
        .regs_per_thread(s.regs)
        .grid_blocks(s.grid);
    let top = b.here();
    b = match s.mem_kind {
        0 => b.ld_global(GP::Stream),
        1 => b.ld_global(GP::BlockTile { tile_lines: 16 }),
        2 => b.ld_global(GP::Scatter {
            span_lines: 64,
            txns: 8, // more transactions than one tiny MSHR table holds
        }),
        _ => b.ld_global(GP::KernelTile { tile_lines: 16 }),
    };
    b = b.ialu(s.alu).ffma(1);
    if s.barrier {
        b = b.barrier();
    }
    b = b.loop_back(top, s.trips).st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tiny finite tables (including instructions whose transaction count
    /// exceeds the whole MSHR limit, which the empty-table soft-limit rule
    /// must admit) never deadlock, with the engine on or off.
    #[test]
    fn finite_mshrs_never_deadlock(s in spec()) {
        let k = build(&s);
        for base in [RunConfig::baseline_lrr(), RunConfig::paper_register_sharing()] {
            let mut cfg = base;
            cfg.gpu.num_sms = 2;
            cfg.gpu.mem.mem_partitions = 2;
            cfg.gpu.mem.mshr_entries = 2;
            cfg.gpu.mem.dram_queue_entries = 2;
            cfg.max_cycles = 3_000_000;
            let cfg = cfg.with_memory_model(MemoryModel::Event);
            let fast = Simulator::new(cfg.clone().with_fast_forward(true)).try_run(&k);
            let reference = Simulator::new(cfg.with_fast_forward(false)).try_run(&k);
            prop_assert_eq!(&fast, &reference, "spec {:?}", s);
            if let Ok(stats) = fast {
                prop_assert!(!stats.timed_out, "spec {:?} wedged", s);
                prop_assert_eq!(stats.blocks_completed, u64::from(k.grid_blocks));
            }
        }
    }
}
