//! Correctness battery for the sweep service (`grs_bench::service`): exact
//! memoization, in-flight dedup, fault recovery through the service path,
//! key soundness/discrimination, and the `run_all` duplicate-suite fix.
//!
//! The battery leans on the repo's foundational invariant — the simulator
//! is a *pure function* of `(RunConfig, Kernel, FaultPlan)` — and checks
//! the service exploits it without ever violating it: a memo hit must be
//! **bit-identical** to a re-run, never merely close.

use std::collections::BTreeSet;
use std::sync::Arc;

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{FaultPlan, ServiceStats};
use grs_bench::service::{job_key, ServiceConfig};
use grs_bench::{Job, JobSource, SweepService};
use proptest::prelude::*;
use workloads::gen::{Family, GenSpec, SizeClass};

/// A small, fast kernel distinct from anything other suites submit.
fn tiny_kernel(tag: u32) -> Kernel {
    KernelBuilder::new(format!("svc-tiny-{tag}"))
        .threads_per_block(64)
        .regs_per_thread(12)
        .grid_blocks(4)
        .ld_global(GlobalPattern::Stream)
        .ialu(3)
        .st_global(GlobalPattern::Stream)
        .build()
}

fn tiny_cfg() -> RunConfig {
    let mut cfg = RunConfig::baseline_lrr();
    cfg.gpu.num_sms = 1;
    cfg
}

#[test]
fn a_memo_hit_returns_bit_identical_stats_without_rerunning() {
    let service = SweepService::new(ServiceConfig::default());
    let (cfg, k) = (tiny_cfg(), tiny_kernel(1));

    let first = service.submit(cfg.clone(), k.clone());
    assert_eq!(first.source(), JobSource::Queued);
    let cold = first.wait();
    let cold_report = cold.report.as_ref().expect("clean run");

    let second = service.submit(cfg, k);
    assert_eq!(
        second.source(),
        JobSource::MemoHit,
        "an identical resubmission must be answered from the memo store"
    );
    let warm = second.try_get().expect("memo hits are born resolved");
    let warm_report = warm.report.as_ref().expect("memoized clean run");
    assert!(
        Arc::ptr_eq(cold_report, warm_report),
        "the memo store hands back the same report, not a re-run"
    );
    assert_eq!(cold_report.stats, warm_report.stats, "bit-identical");

    let s = service.stats();
    assert_eq!(s.submitted, 2);
    assert_eq!(s.executed, 1, "exactly one simulation ran");
    assert_eq!(s.memo_hits, 1);
    assert_eq!(s.deduped, 0);
    assert_eq!(s.failed, 0);
}

#[test]
fn concurrent_submissions_of_one_job_simulate_exactly_once() {
    // workers: 0 — nothing executes until `drain`, so the counters after
    // the submission race are exact: one queued, N-1 attached.
    const N: usize = 8;
    let service = Arc::new(SweepService::new(ServiceConfig {
        workers: 0,
        memo_capacity: 64,
    }));
    let (cfg, k) = (tiny_cfg(), tiny_kernel(2));

    let handles: Vec<_> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..N)
            .map(|_| {
                let service = Arc::clone(&service);
                let (cfg, k) = (cfg.clone(), k.clone());
                scope.spawn(move || service.submit(cfg, k))
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let s = service.stats();
    assert_eq!(s.submitted, N as u64);
    assert_eq!(s.deduped, N as u64 - 1, "all but one submission attached");
    assert_eq!(s.executed, 0, "no workers: nothing has run yet");
    assert_eq!(
        handles
            .iter()
            .filter(|h| h.source() == JobSource::Queued)
            .count(),
        1,
        "exactly one submission won the enqueue race"
    );

    service.drain();
    assert_eq!(
        service.stats().executed,
        1,
        "one simulation for N submissions"
    );

    let outcomes: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    for o in &outcomes {
        assert!(
            Arc::ptr_eq(o, &outcomes[0]),
            "every subscriber shares the one outcome"
        );
    }
    assert!(outcomes[0].report.is_ok());
}

/// The fault-injection recipe `tests/fault_injection.rs` pins, routed
/// through the service instead of calling the simulator directly.
fn faulted_cfg() -> RunConfig {
    let mut cfg = RunConfig::paper_register_sharing()
        .with_scheduler(SchedulerKind::Owf)
        .with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 4;
    cfg.with_shards(Some(2))
}

fn faulted_kernel() -> Kernel {
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    conv1
}

#[test]
fn a_fault_injected_job_recovers_through_the_service_and_memoizes_its_trail() {
    let service = SweepService::new(ServiceConfig::default());
    let (cfg, k) = (faulted_cfg(), faulted_kernel());

    // Undisturbed twin: distinct key (no fault plan), same statistics.
    let clean = service.submit(cfg.clone(), k.clone()).wait();
    let clean_report = clean.report.as_ref().expect("clean run");
    assert!(clean_report.recoveries.is_empty());

    let faulted = service
        .submit_with_faults(cfg.clone(), k.clone(), FaultPlan::at(&[(0, 1)]))
        .wait();
    let report = faulted.report.as_ref().expect("recovered run");
    assert_eq!(report.recoveries.len(), 1, "one ladder hop");
    assert_eq!(report.recoveries[0].from_shards, 2);
    assert!(report.recoveries[0].reason.contains("injected fault"));
    assert_eq!(
        report.stats, clean_report.stats,
        "recovery is bit-identical to the undisturbed run"
    );

    // Resubmit with a *fresh* plan over the same points: same key, memo
    // hit, and the memoized report keeps its recovery trail.
    let resub = service.submit_with_faults(cfg.clone(), k.clone(), FaultPlan::at(&[(0, 1)]));
    assert_eq!(resub.source(), JobSource::MemoHit);
    let memoized = resub.wait();
    let memo_report = memoized.report.as_ref().expect("memoized run");
    assert_eq!(
        memo_report.recoveries.len(),
        1,
        "trail preserved in the memo"
    );
    assert!(Arc::ptr_eq(report, memo_report));

    let s = service.stats();
    assert_eq!(s.executed, 2, "clean twin + faulted run");
    assert_eq!(s.memo_hits, 1);
    assert_eq!(s.recovered, 1, "the faulted job counts as recovered");
    assert_ne!(
        job_key(&cfg, &k, None),
        job_key(&cfg, &k, Some(&FaultPlan::at(&[(0, 1)]))),
        "faulted and undisturbed twins memoize separately"
    );
}

#[test]
fn flipping_any_semantic_field_produces_a_distinct_key() {
    let base_cfg = RunConfig::baseline_lrr();
    let base_kernel = GenSpec::parse("gen:mixed:42:small").unwrap().build();
    let base = job_key(&base_cfg, &base_kernel, None);

    // Soundness: equal inputs, equal key.
    assert_eq!(base, job_key(&base_cfg, &base_kernel, None));

    // Discrimination: each single-field variant below must differ from the
    // base *and* from every other variant.
    let cfg_variants: Vec<(&str, RunConfig)> = vec![
        (
            "scheduler/gto",
            base_cfg.clone().with_scheduler(SchedulerKind::Gto),
        ),
        (
            "scheduler/two-level",
            base_cfg
                .clone()
                .with_scheduler(SchedulerKind::TwoLevel { group_size: 8 }),
        ),
        (
            "scheduler/owf",
            base_cfg.clone().with_scheduler(SchedulerKind::Owf),
        ),
        (
            "sharing/registers",
            base_cfg.clone().with_sharing(SharingMode::Registers),
        ),
        (
            "sharing/scratchpad",
            base_cfg.clone().with_sharing(SharingMode::Scratchpad),
        ),
        (
            "memory-model/event",
            base_cfg.clone().with_memory_model(MemoryModel::Event),
        ),
        ("shards/2", base_cfg.clone().with_shards(Some(2))),
        ("shards/4", base_cfg.clone().with_shards(Some(4))),
        (
            "checkpoint-every",
            base_cfg.clone().with_checkpoint_every(Some(10_000)),
        ),
        ("watchdog", {
            let mut c = base_cfg.clone();
            c.watchdog = Some(500_000);
            c
        }),
        ("threshold", {
            let mut c = base_cfg.clone();
            c.threshold = Threshold::new(0.3).unwrap();
            c
        }),
        ("dyn-throttle", {
            let mut c = base_cfg.clone();
            c.dyn_throttle = !c.dyn_throttle;
            c
        }),
        ("reorder-decls", {
            let mut c = base_cfg.clone();
            c.reorder_decls = !c.reorder_decls;
            c
        }),
        ("fast-forward", {
            let mut c = base_cfg.clone();
            c.fast_forward = !c.fast_forward;
            c
        }),
        ("telemetry", {
            let mut c = base_cfg.clone();
            c.telemetry = Some(TelemetryConfig::default());
            c
        }),
        ("max-cycles", {
            let mut c = base_cfg.clone();
            c.max_cycles += 1;
            c
        }),
        ("mem/l2-bytes", {
            let mut c = base_cfg.clone();
            c.gpu.mem.l2_bytes *= 2;
            c
        }),
        ("mem/mshr-entries", {
            let mut c = base_cfg.clone();
            c.gpu.mem.mshr_entries += 1;
            c
        }),
        ("sm/registers", {
            let mut c = base_cfg.clone();
            c.gpu.sm.registers *= 2;
            c
        }),
        ("num-sms", {
            let mut c = base_cfg.clone();
            c.gpu.num_sms += 1;
            c
        }),
    ];
    let kernel_variants: Vec<(&str, Kernel)> = vec![
        (
            "gen-seed",
            GenSpec::parse("gen:mixed:43:small").unwrap().build(),
        ),
        (
            "gen-size",
            GenSpec::parse("gen:mixed:42:medium").unwrap().build(),
        ),
        (
            "gen-family",
            GenSpec::parse("gen:bursty:42:small").unwrap().build(),
        ),
        ("grid-shrunk", {
            let mut k = base_kernel.clone();
            k.grid_blocks -= 1;
            k
        }),
    ];

    let mut seen = BTreeSet::new();
    seen.insert(base);
    for (label, cfg) in &cfg_variants {
        let key = job_key(cfg, &base_kernel, None);
        assert!(
            seen.insert(key),
            "variant `{label}` collided with another key"
        );
    }
    for (label, kernel) in &kernel_variants {
        let key = job_key(&base_cfg, kernel, None);
        assert!(
            seen.insert(key),
            "variant `{label}` collided with another key"
        );
    }
    assert_eq!(seen.len(), cfg_variants.len() + kernel_variants.len() + 1);
}

/// Any `(family, seed)` point at a small/medium size class.
fn spec() -> impl Strategy<Value = GenSpec> {
    (
        0usize..Family::ALL.len(),
        0u64..u64::MAX,
        proptest::bool::ANY,
    )
        .prop_map(|(fam, seed, medium)| GenSpec {
            family: Family::ALL[fam],
            seed,
            size: if medium {
                SizeClass::Medium
            } else {
                SizeClass::Small
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gen_spec_keys_are_sound_and_discriminating(a in spec(), b in spec()) {
        let cfg = RunConfig::baseline_lrr();
        let key_a = job_key(&cfg, &a.build(), None);
        // Soundness: rebuilding the same spec yields the same key.
        prop_assert_eq!(key_a, job_key(&cfg, &a.build(), None));
        // Discrimination: distinct specs yield distinct keys (the
        // generator embeds the spec in the kernel name, so this holds
        // even if two specs happened to emit identical instructions).
        let key_b = job_key(&cfg, &b.build(), None);
        prop_assert_eq!(a == b, key_a == key_b);
    }
}

#[test]
fn run_all_deduplicates_duplicate_suite_entries() {
    // Regression for the duplicate-suite fix: a sweep listing the same
    // (benchmark, config) pair under several labels used to simulate it
    // once per label; through the service every repeat after the first is
    // answered by dedup or the memo store. Uses a kernel unique to this
    // test so the global service's counter deltas are exactly ours.
    let cfg = tiny_cfg();
    let k = tiny_kernel(777);
    let jobs = vec![
        Job::new("suite-a/k", cfg.clone(), k.clone()),
        Job::new("suite-b/k", cfg.clone(), k.clone()),
        Job::new("suite-c/k", cfg.clone(), k.clone()),
        Job::new("suite-a/k-again", cfg, k),
    ];
    let before = SweepService::global().stats();
    let results = grs_bench::run_all(jobs);
    let after = SweepService::global().stats();

    assert_eq!(results.len(), 4, "one entry per label, as always");
    for (label, stats) in &results[1..] {
        assert_eq!(
            stats, &results[0].1,
            "duplicate entry `{label}` must report identical stats"
        );
    }
    assert_eq!(after.submitted - before.submitted, 4);
    assert_eq!(
        after.executed - before.executed,
        1,
        "four duplicate suite entries cost exactly one simulation"
    );
    assert_eq!(
        (after.deduped + after.memo_hits) - (before.deduped + before.memo_hits),
        3,
        "the other three were answered without running"
    );
}

#[test]
fn warm_resubmission_of_the_pinned_corpus_is_all_memo_hits() {
    // The acceptance criterion end-to-end: the full pinned generated
    // corpus (6 families x 3 seeds), resubmitted warm, completes with zero
    // simulations executed and bit-identical statistics.
    let service = SweepService::new(ServiceConfig::default());
    let jobs = || -> Vec<Job> {
        workloads::pinned_corpus()
            .into_iter()
            .map(|spec| {
                let mut cfg = RunConfig::baseline_lrr();
                cfg.gpu.num_sms = 2;
                Job::new(spec.scenario_name(), cfg, spec.build())
            })
            .collect()
    };

    let cold = service.sweep(jobs());
    let cold_stats = service.stats();
    assert_eq!(cold.len(), 18);
    assert_eq!(cold_stats.executed, 18, "cold pass simulates everything");
    assert!(cold.iter().all(|r| r.stats.is_some()));

    let warm = service.sweep(jobs());
    let warm_stats = service.stats();
    assert_eq!(
        warm_stats.executed, 18,
        "warm pass executes zero simulations"
    );
    assert_eq!(warm_stats.memo_hits, 18, "every warm job is a memo hit");
    assert_eq!(warm_stats.submitted, 36);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.label, w.label);
        assert_eq!(c.stats, w.stats, "bit-identical SimStats for `{}`", c.label);
    }
    assert!((warm_stats.hit_rate() - 0.5).abs() < 1e-12);
}

#[test]
fn service_stats_render_in_the_report_summary() {
    let service = SweepService::new(ServiceConfig::default());
    let outcome = service.submit(tiny_cfg(), tiny_kernel(9)).wait();
    let report = outcome.report.as_ref().expect("clean run");

    let plain = report.summary();
    assert!(!plain.contains("service:"), "no service line without stats");

    let s = service.stats();
    let with = report.summary_with(Some(&s));
    assert!(with.starts_with(&plain), "the service line is appended");
    assert!(with.contains("service: 1 submitted"), "{with}");
    assert!(with.contains("1 executed"), "{with}");

    // The Display form carries every counter.
    let line = format!("{}", ServiceStats::default());
    for field in [
        "submitted",
        "deduped",
        "memo hits",
        "executed",
        "recovered",
        "failed",
        "evicted",
    ] {
        assert!(line.contains(field), "`{field}` missing from `{line}`");
    }
}
