//! Property tests over randomly generated kernels: the simulator must
//! complete them deterministically, retire exactly the grid's dynamic
//! instruction count, and never deadlock under any sharing configuration.

use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct KernelSpec {
    threads_log2: u32, // 32..512 threads
    regs: u32,
    smem: u32,
    grid: u32,
    alu: u32,
    mem_kind: u8,
    trips: u16,
    barrier: bool,
    smem_bytes_touched: u32,
}

fn spec() -> impl Strategy<Value = KernelSpec> {
    (
        1u32..=4,    // threads = 32 << n
        4u32..=48,   // regs/thread
        0u32..=6000, // smem/block
        1u32..=40,   // grid blocks
        1u32..=8,    // alu per iteration
        0u8..=3,     // memory pattern
        0u16..=12,   // loop trips
        proptest::bool::ANY,
        0u32..=512,
    )
        .prop_map(
            |(tl, regs, smem, grid, alu, mem_kind, trips, barrier, touched)| KernelSpec {
                threads_log2: tl,
                regs,
                smem,
                grid,
                alu,
                mem_kind,
                trips,
                barrier,
                smem_bytes_touched: touched,
            },
        )
}

fn build(s: &KernelSpec) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("prop")
        .threads_per_block(32 << s.threads_log2)
        .regs_per_thread(s.regs)
        .smem_per_block(s.smem)
        .grid_blocks(s.grid);
    let top = b.here();
    b = match s.mem_kind {
        0 => b.ld_global(GP::Stream),
        1 => b.ld_global(GP::BlockTile { tile_lines: 16 }),
        2 => b.ld_global(GP::Scatter {
            span_lines: 64,
            txns: 2,
        }),
        _ => b.ld_global(GP::KernelTile { tile_lines: 16 }),
    };
    b = b.ialu(s.alu).ffma(2);
    if s.smem > 64 {
        let bytes = s.smem_bytes_touched.min(s.smem / 2).max(4);
        b = b
            .st_shared(0, bytes)
            .ld_shared(s.smem / 2, bytes.min(s.smem - s.smem / 2));
    }
    if s.barrier {
        b = b.barrier();
    }
    b = b.loop_back(top, s.trips).st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_complete_and_count_instructions(s in spec()) {
        let k = build(&s);
        prop_assert!(gpu_resource_sharing::isa::validate(&k).is_ok());
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 2;
        cfg.max_cycles = 5_000_000;
        let stats = Simulator::new(cfg).run(&k);
        prop_assert!(!stats.timed_out);
        prop_assert_eq!(stats.blocks_completed, u64::from(k.grid_blocks));
        let expected = k.dynamic_instrs_per_warp()
            * u64::from(k.warps_per_block())
            * u64::from(k.grid_blocks);
        prop_assert_eq!(stats.warp_instrs, expected);
    }

    #[test]
    fn random_kernels_never_deadlock_under_sharing(s in spec()) {
        let k = build(&s);
        for base in [RunConfig::paper_register_sharing(), RunConfig::paper_scratchpad_sharing()] {
            let mut cfg = base;
            cfg.gpu.num_sms = 2;
            cfg.max_cycles = 5_000_000;
            match Simulator::new(cfg).try_run(&k) {
                Ok(stats) => {
                    prop_assert!(!stats.timed_out, "deadlock/livelock: {s:?}");
                    prop_assert_eq!(stats.blocks_completed, u64::from(k.grid_blocks));
                }
                Err(e) => {
                    // Only legitimate rejection: the kernel does not fit.
                    prop_assert!(matches!(e, gpu_resource_sharing::sim::run::RunError::KernelDoesNotFit));
                }
            }
        }
    }

    #[test]
    fn launch_plan_invariants(regs in 1u32..=63, threads in 1u32..=1024, smem in 0u32..=16384, t in 0.01f64..=1.0) {
        let sm = GpuConfig::paper_baseline().sm;
        let fp = KernelFootprint { threads_per_block: threads, regs_per_thread: regs, smem_per_block: smem };
        let threshold = Threshold::new(t).unwrap();
        for res in [ResourceKind::Registers, ResourceKind::Scratchpad] {
            let plan = compute_launch_plan(&sm, &fp, threshold, res);
            // eq. (3): M = U + 2S
            prop_assert_eq!(plan.max_blocks, plan.unshared + 2 * plan.shared_pairs);
            // effective blocks never below baseline (paper Sec. III-C goal)
            prop_assert!(plan.effective_blocks() >= plan.baseline_blocks);
            // eq. (2): capacity bound
            let rtb = f64::from(fp.per_block(res));
            let cap = match res {
                ResourceKind::Registers => f64::from(sm.registers),
                ResourceKind::Scratchpad => f64::from(sm.scratchpad_bytes),
            };
            let used = f64::from(plan.unshared) * rtb
                + f64::from(plan.shared_pairs) * (1.0 + threshold.t()) * rtb;
            prop_assert!(used <= cap + 1e-6, "plan {plan:?} uses {used} of {cap}");
            // Sec. II clamps
            prop_assert!(plan.max_blocks <= sm.max_blocks);
            prop_assert!(plan.max_blocks * threads <= sm.max_threads || plan.max_blocks <= 1);
        }
    }
}
