//! Property tests over randomly generated kernels: the simulator must
//! complete them deterministically, retire exactly the grid's dynamic
//! instruction count, and never deadlock under any sharing configuration.
//!
//! Kernels are drawn from the seeded generator families
//! (`workloads::gen`) rather than an ad-hoc local spec: every stress
//! profile the differential harness exercises — pointer chasing, bursty
//! phases, barrier fences, divergent tiles, MSHR thrash, mixed — flows
//! through the end-to-end completion and no-deadlock properties too.

use gpu_resource_sharing::prelude::*;
use proptest::prelude::*;
use workloads::gen::{Family, GenSpec, SizeClass};

/// Any `(family, seed)` point at the small size class.
fn spec() -> impl Strategy<Value = GenSpec> {
    (0usize..Family::ALL.len(), 0u64..u64::MAX).prop_map(|(fam, seed)| GenSpec {
        family: Family::ALL[fam],
        seed,
        size: SizeClass::Small,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_complete_and_count_instructions(s in spec()) {
        let k = s.build();
        prop_assert!(gpu_resource_sharing::isa::validate(&k).is_ok());
        let mut cfg = RunConfig::baseline_lrr();
        cfg.gpu.num_sms = 2;
        cfg.max_cycles = 20_000_000;
        let stats = Simulator::new(cfg).run(&k);
        prop_assert!(!stats.timed_out, "{} timed out", s.scenario_name());
        prop_assert_eq!(stats.blocks_completed, u64::from(k.grid_blocks));
        let expected = k.dynamic_instrs_per_warp()
            * u64::from(k.warps_per_block())
            * u64::from(k.grid_blocks);
        prop_assert_eq!(stats.warp_instrs, expected);
    }

    #[test]
    fn random_kernels_never_deadlock_under_sharing(s in spec()) {
        let k = s.build();
        for base in [RunConfig::paper_register_sharing(), RunConfig::paper_scratchpad_sharing()] {
            let mut cfg = base;
            cfg.gpu.num_sms = 2;
            cfg.max_cycles = 20_000_000;
            match Simulator::new(cfg).try_run(&k) {
                Ok(stats) => {
                    prop_assert!(!stats.timed_out, "deadlock/livelock: {}", s.scenario_name());
                    prop_assert_eq!(stats.blocks_completed, u64::from(k.grid_blocks));
                }
                Err(e) => {
                    // Only legitimate rejection: the kernel does not fit.
                    prop_assert!(matches!(e, gpu_resource_sharing::sim::run::RunError::KernelDoesNotFit));
                }
            }
        }
    }

    #[test]
    fn launch_plan_invariants(regs in 1u32..=63, threads in 1u32..=1024, smem in 0u32..=16384, t in 0.01f64..=1.0) {
        let sm = GpuConfig::paper_baseline().sm;
        let fp = KernelFootprint { threads_per_block: threads, regs_per_thread: regs, smem_per_block: smem };
        let threshold = Threshold::new(t).unwrap();
        for res in [ResourceKind::Registers, ResourceKind::Scratchpad] {
            let plan = compute_launch_plan(&sm, &fp, threshold, res);
            // eq. (3): M = U + 2S
            prop_assert_eq!(plan.max_blocks, plan.unshared + 2 * plan.shared_pairs);
            // effective blocks never below baseline (paper Sec. III-C goal)
            prop_assert!(plan.effective_blocks() >= plan.baseline_blocks);
            // eq. (2): capacity bound
            let rtb = f64::from(fp.per_block(res));
            let cap = match res {
                ResourceKind::Registers => f64::from(sm.registers),
                ResourceKind::Scratchpad => f64::from(sm.scratchpad_bytes),
            };
            let used = f64::from(plan.unshared) * rtb
                + f64::from(plan.shared_pairs) * (1.0 + threshold.t()) * rtb;
            prop_assert!(used <= cap + 1e-6, "plan {plan:?} uses {used} of {cap}");
            // Sec. II clamps
            prop_assert!(plan.max_blocks <= sm.max_blocks);
            prop_assert!(plan.max_blocks * threads <= sm.max_threads || plan.max_blocks <= 1);
        }
    }
}
