//! The panic-recovery contract: a sharded worker that dies mid-span (here:
//! deterministically injected panics, `FaultPlan`) never corrupts or aborts
//! the run — the supervisor rolls back to its last snapshot, degrades the
//! shard count down the ladder `n → n/2 → … → 1 → sequential`, replays, and
//! the recovered statistics are **bit-identical** to an undisturbed run.
//! Exercised in both worker-thread and inline free-run modes.

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{FaultPlan, MemoryModel, RunOutcome};

fn kernel() -> gpu_resource_sharing::isa::Kernel {
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    conv1
}

fn config() -> RunConfig {
    let mut cfg = RunConfig::paper_register_sharing()
        .with_scheduler(SchedulerKind::Owf)
        .with_memory_model(MemoryModel::Event);
    cfg.gpu.num_sms = 4;
    cfg
}

#[test]
fn an_injected_worker_panic_recovers_bit_identically() {
    let k = kernel();
    let cfg = config().with_shards(Some(2));
    let undisturbed = Simulator::new(cfg.clone()).run_report(&k);
    assert!(undisturbed.completed());
    assert!(undisturbed.recoveries.is_empty());

    // Kill shard 1's very first parallel free-run phase.
    let plan = FaultPlan::at(&[(0, 1)]);
    let report = Simulator::new(cfg)
        .try_run_report_with_faults(&k, &plan)
        .expect("valid kernel");
    assert_eq!(plan.fired(), 1, "the fault must actually fire");
    assert_eq!(report.recoveries.len(), 1);
    let hop = &report.recoveries[0];
    assert_eq!(hop.from_shards, 2);
    assert_eq!(hop.to_shards, Some(1));
    assert!(
        hop.reason.contains("injected fault"),
        "unexpected reason: {}",
        hop.reason
    );
    assert_eq!(report.outcome, RunOutcome::Completed);
    assert_eq!(
        report.stats, undisturbed.stats,
        "recovery must be bit-identical"
    );
}

#[test]
fn repeated_faults_walk_the_ladder_to_sequential() {
    let k = kernel();
    let cfg = config().with_shards(Some(2));
    let undisturbed = Simulator::new(cfg.clone()).run(&k);

    // Epochs are globally monotone across rollbacks, so the second fault
    // lands in the first phase of the degraded (1-shard) replay.
    let plan = FaultPlan::at(&[(0, 0), (1, 0)]);
    let report = Simulator::new(cfg)
        .try_run_report_with_faults(&k, &plan)
        .expect("valid kernel");
    assert_eq!(plan.fired(), 2);
    assert_eq!(report.recoveries.len(), 2);
    assert_eq!(report.recoveries[0].from_shards, 2);
    assert_eq!(report.recoveries[0].to_shards, Some(1));
    assert_eq!(report.recoveries[1].from_shards, 1);
    assert_eq!(
        report.recoveries[1].to_shards, None,
        "one shard degrades to the sequential engine"
    );
    assert!(report.completed());
    assert_eq!(report.stats, undisturbed);
}

#[test]
fn recovery_rolls_back_to_the_latest_checkpoint() {
    // With checkpointing on, a late fault must roll back to a mid-run
    // snapshot — not to cycle 0 — and still finish bit-identically.
    let k = kernel();
    let cfg = config()
        .with_shards(Some(4))
        .with_checkpoint_every(Some(500));
    let undisturbed = Simulator::new(cfg.clone()).run_report(&k);
    assert!(undisturbed.checkpoints > 0, "the run must cross a boundary");

    // A mid-run epoch: by epoch 40 several checkpoints have been written.
    let plan = FaultPlan::at(&[(40, 2)]);
    let report = Simulator::new(cfg)
        .try_run_report_with_faults(&k, &plan)
        .expect("valid kernel");
    assert_eq!(plan.fired(), 1);
    assert_eq!(report.recoveries.len(), 1);
    assert!(
        report.recoveries[0].at_cycle > 0,
        "rolled back to cycle 0 despite checkpoints"
    );
    assert_eq!(report.recoveries[0].from_shards, 4);
    assert_eq!(report.recoveries[0].to_shards, Some(2));
    assert_eq!(report.stats, undisturbed.stats);
}

#[test]
fn recovery_is_identical_in_threaded_and_inline_modes() {
    // Fault epochs are numbered identically whether phases run on worker
    // threads or inline on the coordinator, so the whole recovery path —
    // events and statistics — must not depend on the mode. The env var is
    // process-global, but every value produces identical results, so
    // concurrent tests are unaffected.
    let k = kernel();
    let cfg = config().with_shards(Some(2));
    let undisturbed = Simulator::new(cfg.clone()).run(&k);
    for mode in ["always", "never"] {
        std::env::set_var("GRS_SHARD_THREADS", mode);
        let plan = FaultPlan::at(&[(0, 1)]);
        let report = Simulator::new(cfg.clone())
            .try_run_report_with_faults(&k, &plan)
            .expect("valid kernel");
        std::env::remove_var("GRS_SHARD_THREADS");
        assert_eq!(plan.fired(), 1, "GRS_SHARD_THREADS={mode}");
        assert_eq!(report.recoveries.len(), 1, "GRS_SHARD_THREADS={mode}");
        assert_eq!(report.stats, undisturbed, "GRS_SHARD_THREADS={mode}");
    }
}

#[test]
fn seeded_fault_plans_recover_deterministically() {
    // A seeded barrage of faults must (a) be survivable, (b) end
    // bit-identical to the undisturbed run, and (c) produce the exact same
    // recovery trace when replayed with the same seed.
    let k = kernel();
    let cfg = config()
        .with_shards(Some(4))
        .with_checkpoint_every(Some(1_000));
    let undisturbed = Simulator::new(cfg.clone()).run(&k);
    let mut traces = Vec::new();
    for _ in 0..2 {
        let plan = FaultPlan::seeded(0xF00D, 6, 30, 4);
        let report = Simulator::new(cfg.clone())
            .try_run_report_with_faults(&k, &plan)
            .expect("valid kernel");
        assert!(report.completed());
        assert_eq!(report.stats, undisturbed);
        traces.push(report.recoveries);
    }
    assert_eq!(traces[0], traces[1], "recovery trace must be deterministic");
}
