//! Exact-match checks against numbers printed in the paper (arithmetic
//! artifacts, not simulator-derived): Sec. I-A worked examples, Tables VI
//! and VIII, and the Sec. V hardware cost formulas.

use gpu_resource_sharing::core::hw_cost::{register_sharing_bits, scratchpad_sharing_bits};
use gpu_resource_sharing::prelude::*;

#[test]
fn section_1a_hotspot_and_lavamd_waste() {
    let sm = GpuConfig::paper_baseline().sm;
    let hotspot = KernelFootprint::of(&workloads::set1::hotspot());
    let occ = occupancy(&sm, &hotspot);
    assert_eq!(occ.blocks, 3);
    assert_eq!(occ.wasted_registers, 5120);

    let lavamd = KernelFootprint::of(&workloads::set2::lavamd());
    let occ = occupancy(&sm, &lavamd);
    assert_eq!(occ.blocks, 2);
    assert_eq!(occ.wasted_scratchpad, 1984);
}

#[test]
fn table_vi_all_thirty_points() {
    let sm = GpuConfig::paper_baseline().sm;
    let expect: &[(usize, [u32; 6])] = &[
        (0, [5, 5, 5, 5, 6, 6]),
        (1, [2, 2, 2, 3, 3, 3]),
        (2, [3, 3, 3, 4, 4, 6]),
        (3, [4, 4, 5, 5, 6, 8]),
        (4, [4, 4, 4, 5, 5, 6]),
        (5, [5, 5, 5, 5, 6, 6]),
        (6, [5, 5, 5, 5, 6, 8]),
        (7, [2, 2, 2, 2, 2, 3]),
    ];
    let kernels = workloads::set1_benchmarks();
    for &(i, row) in expect {
        for (pct, want) in [0.0, 10.0, 30.0, 50.0, 70.0, 90.0].iter().zip(row) {
            let plan = compute_launch_plan(
                &sm,
                &KernelFootprint::of(&kernels[i]),
                Threshold::from_sharing_pct(*pct).unwrap(),
                ResourceKind::Registers,
            );
            assert_eq!(plan.max_blocks, want, "{} at {pct}%", kernels[i].name);
        }
    }
}

#[test]
fn table_viii_all_thirty_points() {
    let sm = GpuConfig::paper_baseline().sm;
    let expect: &[(usize, [u32; 6])] = &[
        (0, [6, 6, 6, 6, 7, 8]),
        (1, [3, 3, 3, 3, 3, 4]),
        (2, [2, 2, 2, 2, 2, 4]),
        (3, [7, 7, 7, 8, 8, 8]),
        (4, [7, 7, 7, 8, 8, 8]),
        (5, [2, 2, 2, 3, 4, 4]),
        (6, [3, 3, 3, 3, 3, 5]),
    ];
    let kernels = workloads::set2_benchmarks();
    for &(i, row) in expect {
        for (pct, want) in [0.0, 10.0, 30.0, 50.0, 70.0, 90.0].iter().zip(row) {
            let plan = compute_launch_plan(
                &sm,
                &KernelFootprint::of(&kernels[i]),
                Threshold::from_sharing_pct(*pct).unwrap(),
                ResourceKind::Scratchpad,
            );
            assert_eq!(plan.max_blocks, want, "{} at {pct}%", kernels[i].name);
        }
    }
}

#[test]
fn section_v_storage_formulas() {
    // Table I machine: T = 8, W = 48, N = 14.
    assert_eq!(register_sharing_bits(8, 48, 14), 273 * 14);
    assert_eq!(scratchpad_sharing_bits(8, 48, 14), 93 * 14);
}
