//! The checkpoint/resume contract: running a simulation as a sequence of
//! snapshot-bounded spans (`RunConfig::checkpoint_every`) is **bit-identical**
//! to the straight run, for any checkpoint interval, across the scheduler ×
//! sharing × memory-model matrix and both the sequential and sharded
//! engines — plus a property test over random intervals and kernels (pinned
//! seeds in `proptest-regressions/`). The span boundary must be completely
//! unobservable in every `SimStats` field.

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::{MemoryModel, RunOutcome};
use proptest::prelude::*;

fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn config(sched: SchedulerKind, sharing: SharingMode, model: MemoryModel) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            // Throttle on, so snapshots carry live RNG streams and window
            // state across the boundary.
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched).with_memory_model(model);
    cfg.gpu.num_sms = 4;
    cfg
}

#[test]
fn checkpointed_runs_are_bit_identical_across_the_full_matrix() {
    let schedulers = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ];
    let sharing_modes = [
        SharingMode::None,
        SharingMode::Registers,
        SharingMode::Scratchpad,
    ];
    let models = [MemoryModel::Functional, MemoryModel::Event];
    for kernel in kernels() {
        for sched in schedulers {
            for sharing in sharing_modes {
                for model in models {
                    let cfg = config(sched, sharing, model);
                    let straight = Simulator::new(cfg.clone()).run(&kernel);
                    assert!(!straight.timed_out, "{}", kernel.name);
                    // A deliberately odd interval, so boundaries land at
                    // arbitrary cycles (never aligned with anything).
                    let report =
                        Simulator::new(cfg.with_checkpoint_every(Some(137))).run_report(&kernel);
                    assert!(report.completed());
                    assert!(
                        report.checkpoints > 0,
                        "{} finished in < 137 cycles?",
                        kernel.name
                    );
                    assert_eq!(
                        report.stats, straight,
                        "{} under {sched:?} × {sharing:?} × {model:?} diverges when checkpointed",
                        kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn checkpoint_intervals_do_not_interact_with_sharding() {
    // The sharded engine re-derives parked lanes and folds throttle clones
    // back at every span boundary; cutting its spans at checkpoint
    // boundaries must stay bit-identical to the unsharded, uncheckpointed
    // run at any interval.
    let kernel = &kernels()[1];
    let cfg = config(
        SchedulerKind::Owf,
        SharingMode::Scratchpad,
        MemoryModel::Event,
    );
    let straight = Simulator::new(cfg.clone()).run(kernel);
    for every in [1u64, 97, 1_000, 1_000_000] {
        for shards in [None, Some(2), Some(4)] {
            let report = Simulator::new(
                cfg.clone()
                    .with_shards(shards)
                    .with_checkpoint_every(Some(every)),
            )
            .run_report(kernel);
            assert_eq!(
                report.stats, straight,
                "checkpoint_every={every} shards={shards:?} diverges"
            );
            assert_eq!(report.outcome, RunOutcome::Completed);
            assert!(report.recoveries.is_empty(), "no faults were injected");
        }
    }
}

#[test]
fn a_checkpointed_timeout_matches_the_straight_timeout() {
    // max_cycles can cut a span short; the truncated statistics must match
    // the straight truncated run and report TimedOut.
    let kernel = &kernels()[1];
    let cfg =
        config(SchedulerKind::Lrr, SharingMode::None, MemoryModel::Event).with_max_cycles(5_000);
    let straight = Simulator::new(cfg.clone()).run(kernel);
    assert!(straight.timed_out);
    let report = Simulator::new(cfg.with_checkpoint_every(Some(333))).run_report(kernel);
    assert_eq!(report.stats, straight);
    assert_eq!(report.outcome, RunOutcome::TimedOut);
}

#[test]
fn a_zero_interval_is_treated_as_disabled() {
    let kernel = &kernels()[0];
    let cfg = config(
        SchedulerKind::Gto,
        SharingMode::Registers,
        MemoryModel::Event,
    );
    let straight = Simulator::new(cfg.clone()).run(kernel);
    let report = Simulator::new(cfg.with_checkpoint_every(Some(0))).run_report(kernel);
    assert_eq!(report.stats, straight);
    assert_eq!(report.checkpoints, 0);
}

#[derive(Debug, Clone)]
struct Case {
    threads_log2: u32,
    regs: u32,
    grid: u32,
    alu: u32,
    trips: u16,
    every: u64,
    shards: bool,
}

fn case() -> impl Strategy<Value = Case> {
    (
        0u32..=3,
        4u32..=48,
        1u32..=24,
        1u32..=6,
        0u16..=10,
        1u64..=5_000, // checkpoint interval: boundaries at random cycles
        proptest::bool::ANY,
    )
        .prop_map(|(tl, regs, grid, alu, trips, every, shards)| Case {
            threads_log2: tl,
            regs,
            grid,
            alu,
            trips,
            every,
            shards,
        })
}

fn build(c: &Case) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("ckptprop")
        .threads_per_block(32 << c.threads_log2)
        .regs_per_thread(c.regs)
        .grid_blocks(c.grid);
    let top = b.here();
    b = b
        .ld_global(GP::Stream)
        .ialu(c.alu)
        .ffma(2)
        .loop_back(top, c.trips)
        .st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resuming_at_a_random_cycle_is_bit_identical(c in case()) {
        let k = build(&c);
        let mut cfg = RunConfig::paper_register_sharing().with_memory_model(MemoryModel::Event);
        cfg.gpu.num_sms = 2;
        cfg.max_cycles = 2_000_000;
        if c.shards {
            cfg.shards = Some(2);
        }
        let straight = Simulator::new(cfg.clone()).try_run(&k);
        let spanned = Simulator::new(cfg.with_checkpoint_every(Some(c.every)))
            .try_run_report(&k)
            .map(|r| r.stats);
        prop_assert_eq!(spanned, straight, "case {:?}", c);
    }
}
