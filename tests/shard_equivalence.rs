//! The sharded engine's contract: `SimStats` — every field, including the
//! stall/idle/empty cycle split, per-SM breakdowns, throttle counters and
//! the event memory model's occupancy integrals — is **bit-identical**
//! between `RunConfig::shards` at any shard count and the sequential
//! engine. The matrix covers all four schedulers crossed with all three
//! sharing modes and both global-memory timing models, at 2 and 4 shards
//! (4 SMs, so 4 shards exercises one-lane shards), plus a property test
//! over random kernels (pinned seeds in `proptest-regressions/`).

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use gpu_resource_sharing::sim::MemoryModel;
use proptest::prelude::*;

/// hotspot: register-limited and compute-heavy. conv1: scratchpad-limited
/// with streaming global loads and a per-iteration barrier — dense
/// cross-SM memory interleaving, the hard case for commit ordering.
fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn config(sched: SchedulerKind, sharing: SharingMode, model: MemoryModel) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            // Enable the throttle so the sharded window-close protocol and
            // the per-SM RNG streams are exercised.
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched).with_memory_model(model);
    cfg.gpu.num_sms = 4;
    cfg
}

#[test]
fn sharded_runs_are_bit_identical_across_the_full_matrix() {
    let schedulers = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ];
    let sharing_modes = [
        SharingMode::None,
        SharingMode::Registers,
        SharingMode::Scratchpad,
    ];
    let models = [MemoryModel::Functional, MemoryModel::Event];
    for kernel in kernels() {
        for sched in schedulers {
            for sharing in sharing_modes {
                for model in models {
                    let cfg = config(sched, sharing, model);
                    let sequential = Simulator::new(cfg.clone()).run(&kernel);
                    assert!(!sequential.timed_out, "{}", kernel.name);
                    assert_eq!(sequential.blocks_completed, u64::from(kernel.grid_blocks));
                    for shards in [2usize, 4] {
                        let sharded =
                            Simulator::new(cfg.clone().with_shards(Some(shards))).run(&kernel);
                        assert_eq!(
                            sharded, sequential,
                            "{} under {sched:?} × {sharing:?} × {model:?} diverges at {shards} shards",
                            kernel.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn shard_counts_beyond_the_sm_count_degrade_gracefully() {
    // shards = 0, 1, and more-shards-than-SMs must all run (clamped) and
    // stay bit-identical.
    let kernel = &kernels()[1];
    let cfg = config(
        SchedulerKind::Gto,
        SharingMode::Scratchpad,
        MemoryModel::Event,
    );
    let sequential = Simulator::new(cfg.clone()).run(kernel);
    for shards in [0usize, 1, 16] {
        let sharded = Simulator::new(cfg.clone().with_shards(Some(shards))).run(kernel);
        assert_eq!(sharded, sequential, "diverges at {shards} shards");
    }
}

#[test]
fn the_worker_thread_path_matches_the_inline_path() {
    // On single-core machines the engine normally skips worker threads and
    // free-runs every shard inline; force both paths and pin them to the
    // sequential result so the barrier/handoff protocol is exercised
    // everywhere. The env var is process-global, but every value of it
    // produces bit-identical statistics, so concurrent tests are unaffected.
    let kernel = &kernels()[1];
    let cfg = config(
        SchedulerKind::Owf,
        SharingMode::Registers,
        MemoryModel::Event,
    );
    let sequential = Simulator::new(cfg.clone()).run(kernel);
    for mode in ["always", "never"] {
        std::env::set_var("GRS_SHARD_THREADS", mode);
        let sharded = Simulator::new(cfg.clone().with_shards(Some(2))).run(kernel);
        std::env::remove_var("GRS_SHARD_THREADS");
        assert_eq!(sharded, sequential, "GRS_SHARD_THREADS={mode} diverges");
    }
}

#[test]
fn sharded_timeout_reports_the_cycle_bound() {
    // A run cut off by max_cycles must report the same truncated statistics
    // (cycles == max_cycles, timed_out, partial counters) as the sequential
    // engine — the teardown crediting path.
    let kernel = &kernels()[1];
    let cfg =
        config(SchedulerKind::Lrr, SharingMode::None, MemoryModel::Event).with_max_cycles(5_000);
    let sequential = Simulator::new(cfg.clone()).run(kernel);
    assert!(sequential.timed_out);
    assert_eq!(sequential.cycles, 5_000);
    let sharded = Simulator::new(cfg.with_shards(Some(2))).run(kernel);
    assert_eq!(sharded, sequential);
}

#[derive(Debug, Clone)]
struct KernelSpec {
    threads_log2: u32,
    regs: u32,
    smem: u32,
    grid: u32,
    alu: u32,
    mem_kind: u8,
    trips: u16,
    barrier: bool,
}

fn spec() -> impl Strategy<Value = KernelSpec> {
    (
        0u32..=3,    // threads = 32 << n
        4u32..=48,   // regs/thread
        0u32..=6000, // smem/block
        1u32..=24,   // grid blocks
        1u32..=6,    // alu per iteration
        0u8..=3,     // memory pattern
        0u16..=10,   // loop trips
        proptest::bool::ANY,
    )
        .prop_map(
            |(tl, regs, smem, grid, alu, mem_kind, trips, barrier)| KernelSpec {
                threads_log2: tl,
                regs,
                smem,
                grid,
                alu,
                mem_kind,
                trips,
                barrier,
            },
        )
}

fn build(s: &KernelSpec) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("shardprop")
        .threads_per_block(32 << s.threads_log2)
        .regs_per_thread(s.regs)
        .smem_per_block(s.smem)
        .grid_blocks(s.grid);
    let top = b.here();
    b = match s.mem_kind {
        0 => b.ld_global(GP::Stream),
        1 => b.ld_global(GP::BlockTile { tile_lines: 16 }),
        2 => b.ld_global(GP::Scatter {
            span_lines: 64,
            txns: 2,
        }),
        _ => b.ld_global(GP::KernelTile { tile_lines: 16 }),
    };
    b = b.ialu(s.alu).ffma(2);
    if s.smem > 64 {
        b = b
            .st_shared(0, 64.min(s.smem / 2))
            .ld_shared(s.smem / 2, 64.min(s.smem - s.smem / 2));
    }
    if s.barrier {
        b = b.barrier();
    }
    b = b.loop_back(top, s.trips).st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_kernels_are_bit_identical_when_sharded(s in spec()) {
        let k = build(&s);
        for base in [
            RunConfig::baseline_lrr(),
            RunConfig::paper_register_sharing().with_memory_model(MemoryModel::Event),
            RunConfig::paper_scratchpad_sharing().with_dyn_throttle(true),
        ] {
            let mut cfg = base;
            cfg.gpu.num_sms = 2;
            cfg.max_cycles = 2_000_000;
            let sharded = Simulator::new(cfg.clone().with_shards(Some(2))).try_run(&k);
            let sequential = Simulator::new(cfg.clone().with_shards(None)).try_run(&k);
            prop_assert_eq!(sharded, sequential, "spec {:?} under {:?}", s, cfg.scheduler);
        }
    }
}
