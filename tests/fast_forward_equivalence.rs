//! The fast-forward engine's contract: `SimStats` — every field, including
//! the stall/idle/empty cycle split, per-SM breakdowns and memory counters —
//! is **bit-identical** with `RunConfig::fast_forward` on or off. The matrix
//! covers all four schedulers crossed with all three sharing modes on one
//! compute-bound and one memory-latency-bound kernel, plus a property test
//! over random kernels (pinned seeds in `proptest-regressions/`).

use gpu_resource_sharing::core::SchedulerKind;
use gpu_resource_sharing::isa::GlobalPattern as GP;
use gpu_resource_sharing::prelude::*;
use proptest::prelude::*;

/// hotspot: register-limited and compute-heavy. conv1: scratchpad-limited
/// with streaming global loads and a per-iteration barrier — the
/// memory-latency-bound shape whose dead cycles the engine skips.
fn kernels() -> Vec<gpu_resource_sharing::isa::Kernel> {
    let mut hotspot = workloads::set1::hotspot();
    hotspot.grid_blocks = 28;
    let mut conv1 = workloads::set2::conv1();
    conv1.grid_blocks = 28;
    vec![hotspot, conv1]
}

fn config(sched: SchedulerKind, sharing: SharingMode) -> RunConfig {
    let base = match sharing {
        SharingMode::None => RunConfig::baseline_lrr(),
        SharingMode::Registers => RunConfig::paper_register_sharing(),
        SharingMode::Scratchpad => {
            // Enable the throttle so its RNG stream and window arithmetic
            // are exercised across skipped spans too.
            let mut cfg = RunConfig::paper_scratchpad_sharing();
            cfg.dyn_throttle = true;
            cfg
        }
    };
    let mut cfg = base.with_scheduler(sched);
    cfg.gpu.num_sms = 4;
    cfg
}

#[test]
fn fast_forward_is_bit_identical_across_the_full_matrix() {
    let schedulers = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::TwoLevel { group_size: 8 },
        SchedulerKind::Owf,
    ];
    let sharing_modes = [
        SharingMode::None,
        SharingMode::Registers,
        SharingMode::Scratchpad,
    ];
    for kernel in kernels() {
        for sched in schedulers {
            for sharing in sharing_modes {
                let cfg = config(sched, sharing);
                let fast = Simulator::new(cfg.clone().with_fast_forward(true)).run(&kernel);
                let reference = Simulator::new(cfg.with_fast_forward(false)).run(&kernel);
                assert_eq!(
                    fast, reference,
                    "{} under {sched:?} × {sharing:?} diverges with fast-forward",
                    kernel.name
                );
                assert!(!fast.timed_out, "{}", kernel.name);
                assert_eq!(fast.blocks_completed, u64::from(kernel.grid_blocks));
            }
        }
    }
}

#[test]
fn fast_forward_actually_skips_on_a_latency_bound_kernel() {
    // Guard against the equivalence test passing vacuously because the
    // engine never engages: on the memory-latency-bound kernel the simulated
    // cycle count must dwarf the number of cycles the fast path physically
    // executes, which we bound from below via idle cycles per SM.
    let kernel = &kernels()[1];
    let cfg = config(SchedulerKind::Lrr, SharingMode::None);
    let stats = Simulator::new(cfg).run(kernel);
    let per_sm_cycles = stats.cycles * u64::from(4u32);
    let dead = stats.idle_cycles + stats.empty_cycles;
    assert!(
        dead * 2 > per_sm_cycles,
        "scenario is not latency-bound: {dead} dead of {per_sm_cycles} SM-cycles"
    );
}

#[derive(Debug, Clone)]
struct KernelSpec {
    threads_log2: u32,
    regs: u32,
    smem: u32,
    grid: u32,
    alu: u32,
    mem_kind: u8,
    trips: u16,
    barrier: bool,
}

fn spec() -> impl Strategy<Value = KernelSpec> {
    (
        0u32..=3,    // threads = 32 << n
        4u32..=48,   // regs/thread
        0u32..=6000, // smem/block
        1u32..=24,   // grid blocks
        1u32..=6,    // alu per iteration
        0u8..=3,     // memory pattern
        0u16..=10,   // loop trips
        proptest::bool::ANY,
    )
        .prop_map(
            |(tl, regs, smem, grid, alu, mem_kind, trips, barrier)| KernelSpec {
                threads_log2: tl,
                regs,
                smem,
                grid,
                alu,
                mem_kind,
                trips,
                barrier,
            },
        )
}

fn build(s: &KernelSpec) -> gpu_resource_sharing::isa::Kernel {
    let mut b = KernelBuilder::new("ffprop")
        .threads_per_block(32 << s.threads_log2)
        .regs_per_thread(s.regs)
        .smem_per_block(s.smem)
        .grid_blocks(s.grid);
    let top = b.here();
    b = match s.mem_kind {
        0 => b.ld_global(GP::Stream),
        1 => b.ld_global(GP::BlockTile { tile_lines: 16 }),
        2 => b.ld_global(GP::Scatter {
            span_lines: 64,
            txns: 2,
        }),
        _ => b.ld_global(GP::KernelTile { tile_lines: 16 }),
    };
    b = b.ialu(s.alu).ffma(2);
    if s.smem > 64 {
        b = b
            .st_shared(0, 64.min(s.smem / 2))
            .ld_shared(s.smem / 2, 64.min(s.smem - s.smem / 2));
    }
    if s.barrier {
        b = b.barrier();
    }
    b = b.loop_back(top, s.trips).st_global(GP::Stream);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_kernels_are_bit_identical_under_fast_forward(s in spec()) {
        let k = build(&s);
        for base in [
            RunConfig::baseline_lrr(),
            RunConfig::baseline_gto(),
            RunConfig::paper_register_sharing(),
            RunConfig::paper_scratchpad_sharing(),
        ] {
            let mut cfg = base;
            cfg.gpu.num_sms = 2;
            cfg.max_cycles = 2_000_000;
            let fast = Simulator::new(cfg.clone().with_fast_forward(true)).try_run(&k);
            let reference = Simulator::new(cfg.clone().with_fast_forward(false)).try_run(&k);
            prop_assert_eq!(fast, reference, "spec {:?} under {:?}", s, cfg.scheduler);
        }
    }
}
